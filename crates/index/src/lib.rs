//! # modb-index — 3-D time-space indexing of position attributes
//!
//! Implements §4 of Wolfson et al. (ICDE 1998): answering range queries on
//! continuously moving objects in sublinear time without continuously
//! updating a spatial index.
//!
//! - [`RStarTree`]: a from-scratch 3-D R\*-tree over (x, y, t) boxes, with
//!   STR bulk loading and instrumented searches.
//! - [`OPlane`]: the geometric body of one position-attribute value — the
//!   ruled surface between `l(t) = vt − BS(t)` and `u(t) = vt + BF(t)`
//!   along the route, decomposable into index boxes per time slab.
//! - [`QueryRegion`]: `R_G(t₀)` — polygon G lifted to time t₀ (Theorems
//!   5–6), plus a time-interval extension.
//! - [`MovingObjectIndex`]: o-plane maintenance (§4.2's delete-old /
//!   insert-new on every position update) and candidate filtering, over
//!   speed-banded per-band trees configured by a [`BandConfig`].
//!
//! Exact may/must refinement lives in `modb-core`, which can resolve
//! routes; the index layer guarantees no false negatives.

#![warn(missing_docs)]

mod error;
mod moving_index;
mod oplane;
mod rtree;
mod timespace;

pub use error::IndexError;
pub use moving_index::{
    BandConfig, BandSpec, BandStats, MovingObjectIndex, DEFAULT_SLAB_MINUTES, MAX_BANDS,
};
pub use oplane::OPlane;
pub use rtree::{RStarTree, SearchStats};
pub use timespace::{within_radius, QueryRegion};
