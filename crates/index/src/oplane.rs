//! O-planes: the geometric representation of a position attribute (§4.1.1).
//!
//! Given a position-attribute value, the object's possible positions form a
//! ruled surface in (x, y, t) time-space bounded below by
//! `l(t) = v·t − BS(t)` and above by `u(t) = v·t + BF(t)`, where `BS`/`BF`
//! are the slow/fast deviation bounds of §3.3 for the object's update
//! policy. The *uncertainty interval* at time `t` is the stretch of route
//! between `l(t)` and `u(t)`; the o-plane is the union of those intervals
//! over the plane's time span.
//!
//! For indexing, the o-plane is over-approximated by a set of 3-D boxes,
//! one per time slab (§4.2): each box covers the route sub-polyline spanned
//! by the uncertainty intervals of that slab. Over-approximation is safe —
//! false positives are filtered by exact refinement, false negatives are
//! impossible.

use modb_geom::{Aabb3, GeomError, Point};
use modb_policy::{fast_bound, fast_crossover_time, slow_bound, slow_crossover_time, BoundKind};
use modb_routes::{Direction, Route, RouteId};

use crate::error::IndexError;

/// The o-plane of one position-attribute value.
#[derive(Debug, Clone, PartialEq)]
pub struct OPlane {
    /// The route the object travels (`P.route`).
    pub route: RouteId,
    /// Arc position of the start point (`P.x/y.startposition`).
    pub start_arc: f64,
    /// Travel direction (`P.direction`).
    pub direction: Direction,
    /// Declared speed `v` (`P.speed`).
    pub speed: f64,
    /// Maximum trip speed `V` known to the DBMS.
    pub max_speed: f64,
    /// Update cost `C` of the object's policy.
    pub update_cost: f64,
    /// Bound family of the object's policy (`P.policy`).
    pub kind: BoundKind,
    /// Update timestamp (`P.starttime`), absolute minutes.
    pub start_time: f64,
    /// Cutoff `Z`: "if there is an upper limit Z on the time when o's trip
    /// will end, then [the planes] can be cut off at time Z" (§4.2).
    pub end_time: f64,
}

impl OPlane {
    /// Validates and constructs an o-plane.
    ///
    /// # Errors
    ///
    /// [`IndexError::InvalidParameter`] for bad numbers,
    /// [`IndexError::EmptyTimeSpan`] when `end_time ≤ start_time`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        route: RouteId,
        start_arc: f64,
        direction: Direction,
        speed: f64,
        max_speed: f64,
        update_cost: f64,
        kind: BoundKind,
        start_time: f64,
        end_time: f64,
    ) -> Result<Self, IndexError> {
        if !start_arc.is_finite() || start_arc < 0.0 {
            return Err(IndexError::InvalidParameter("start_arc", start_arc));
        }
        if !speed.is_finite() || speed < 0.0 {
            return Err(IndexError::InvalidParameter("speed", speed));
        }
        if !max_speed.is_finite() || max_speed < 0.0 {
            return Err(IndexError::InvalidParameter("max_speed", max_speed));
        }
        if !update_cost.is_finite() || update_cost <= 0.0 {
            return Err(IndexError::InvalidParameter("update_cost", update_cost));
        }
        if !start_time.is_finite() {
            return Err(IndexError::InvalidParameter("start_time", start_time));
        }
        if !end_time.is_finite() || end_time <= start_time {
            return Err(IndexError::EmptyTimeSpan {
                start: start_time,
                end: end_time,
            });
        }
        Ok(OPlane {
            route,
            start_arc,
            direction,
            speed,
            max_speed,
            update_cost,
            kind,
            start_time,
            end_time,
        })
    }

    /// The uncertainty interval at absolute time `t`, as (signed) distances
    /// from the start position along the travel direction:
    /// `(l(t), u(t))` with `0 ≤ l ≤ u`.
    pub fn lu(&self, t: f64) -> (f64, f64) {
        let tr = (t - self.start_time).max(0.0);
        let bs = slow_bound(self.kind, self.speed, self.update_cost, tr);
        let bf = fast_bound(self.kind, self.speed, self.max_speed, self.update_cost, tr);
        let nominal = self.speed * tr;
        ((nominal - bs).max(0.0), nominal + bf)
    }

    /// The uncertainty interval at absolute time `t` in arc coordinates on
    /// the route, clamped to `[0, route_len]`. Returns `(arc_lo, arc_hi)`
    /// with `arc_lo ≤ arc_hi`.
    pub fn arc_interval(&self, route_len: f64, t: f64) -> (f64, f64) {
        let (l, u) = self.lu(t);
        self.arcs_from_lu(route_len, l, u)
    }

    fn arcs_from_lu(&self, route_len: f64, l: f64, u: f64) -> (f64, f64) {
        match self.direction {
            Direction::Forward => (
                (self.start_arc + l).clamp(0.0, route_len),
                (self.start_arc + u).clamp(0.0, route_len),
            ),
            Direction::Backward => (
                (self.start_arc - u).clamp(0.0, route_len),
                (self.start_arc - l).clamp(0.0, route_len),
            ),
        }
    }

    /// Conservative `(l_min, u_max)` over the time slab `[t0, t1]`.
    ///
    /// `BS`/`BF` are unimodal in `t` (rise, then plateau or decay), so
    /// their slab maximum is attained at an endpoint or at the crossover;
    /// `l` is nondecreasing, so its minimum is at `t0`. The result covers
    /// every uncertainty interval in the slab.
    fn slab_lu(&self, t0: f64, t1: f64) -> (f64, f64) {
        let tr0 = (t0 - self.start_time).max(0.0);
        let tr1 = (t1 - self.start_time).max(0.0);
        let candidates = |cross: f64| -> [f64; 3] { [tr0, tr1, cross.clamp(tr0, tr1)] };
        let bs_cross = slow_crossover_time(self.speed, self.update_cost);
        let bf_cross = fast_crossover_time(self.speed, self.max_speed, self.update_cost);
        let bs_max = candidates(if bs_cross.is_finite() { bs_cross } else { tr1 })
            .iter()
            .map(|&t| slow_bound(self.kind, self.speed, self.update_cost, t))
            .fold(0.0, f64::max);
        let bf_max = candidates(if bf_cross.is_finite() { bf_cross } else { tr1 })
            .iter()
            .map(|&t| fast_bound(self.kind, self.speed, self.max_speed, self.update_cost, t))
            .fold(0.0, f64::max);
        let l_min = (self.speed * tr0 - bs_max).max(0.0);
        let u_max = self.speed * tr1 + bf_max;
        (l_min, u_max)
    }

    /// Decomposes the o-plane into 3-D boxes covering it, one per time slab
    /// of at most `slab_duration` minutes.
    ///
    /// # Errors
    ///
    /// [`IndexError::RouteMismatch`] when `route` is not the plane's route;
    /// [`IndexError::InvalidParameter`] for a bad slab duration; geometry
    /// errors propagate.
    pub fn to_boxes(&self, route: &Route, slab_duration: f64) -> Result<Vec<Aabb3>, IndexError> {
        self.to_boxes_with_horizon(route, slab_duration, f64::INFINITY)
    }

    /// Like [`OPlane::to_boxes`], but fine slabs stop `fine_horizon`
    /// minutes past `start_time`; the remainder of the plane's span (if
    /// any) is covered by **one** coarse tail slab. Coverage is identical
    /// to [`OPlane::to_boxes`] — every uncertainty interval stays inside
    /// some box, so filtering stays sound — only the granularity of the
    /// tail changes. A speed band with a short horizon uses this to keep
    /// the slab count of fast objects bounded: fine boxes where queries
    /// concentrate (near now), one conservative box for the far future.
    ///
    /// `fine_horizon = f64::INFINITY` (or anything at or past the plane's
    /// span) reproduces `to_boxes` exactly. A non-positive or NaN horizon
    /// is rejected.
    ///
    /// # Errors
    ///
    /// Same as [`OPlane::to_boxes`], plus
    /// [`IndexError::InvalidParameter`] for a bad `fine_horizon`.
    pub fn to_boxes_with_horizon(
        &self,
        route: &Route,
        slab_duration: f64,
        fine_horizon: f64,
    ) -> Result<Vec<Aabb3>, IndexError> {
        if route.id() != self.route {
            return Err(IndexError::RouteMismatch);
        }
        if !slab_duration.is_finite() || slab_duration <= 0.0 {
            return Err(IndexError::InvalidParameter("slab_duration", slab_duration));
        }
        if fine_horizon.is_nan() || fine_horizon <= 0.0 {
            return Err(IndexError::InvalidParameter("fine_horizon", fine_horizon));
        }
        let span = self.end_time - self.start_time;
        let fine_span = span.min(fine_horizon);
        let n_fine = ((fine_span / slab_duration).ceil() as usize).max(1);
        let tail = fine_span < span;
        let route_len = route.length();
        let mut boxes = Vec::with_capacity(n_fine + usize::from(tail));
        let mut slab = |t0: f64, t1: f64| -> Result<(), IndexError> {
            let (l, u) = self.slab_lu(t0, t1);
            let (arc_lo, arc_hi) = self.arcs_from_lu(route_len, l, u);
            let rect = route.polyline().interval_bbox(arc_lo, arc_hi)?;
            boxes.push(Aabb3::from_rect_time(&rect, t0, t1));
            Ok(())
        };
        let fine_end = self.start_time + fine_span;
        for i in 0..n_fine {
            let t0 = self.start_time + i as f64 * slab_duration;
            let t1 = (t0 + slab_duration).min(fine_end);
            slab(t0, t1)?;
        }
        if tail {
            slab(fine_end, self.end_time)?;
        }
        Ok(boxes)
    }

    /// The uncertainty interval at absolute time `t` as the route path
    /// between `l(t)` and `u(t)` — the geometry Theorems 5–6 test against
    /// polygons.
    ///
    /// # Errors
    ///
    /// [`IndexError::RouteMismatch`] for the wrong route; geometry errors
    /// propagate.
    pub fn interval_points(&self, route: &Route, t: f64) -> Result<Vec<Point>, IndexError> {
        if route.id() != self.route {
            return Err(IndexError::RouteMismatch);
        }
        let (lo, hi) = self.arc_interval(route.length(), t);
        route
            .polyline()
            .interval_points(lo, hi)
            .map_err(|e: GeomError| e.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_geom::Point;

    const C: f64 = 5.0;

    fn straight_route() -> Route {
        Route::from_vertices(
            RouteId(1),
            "straight",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap()
    }

    fn plane(kind: BoundKind, direction: Direction, start_arc: f64) -> OPlane {
        OPlane::new(
            RouteId(1),
            start_arc,
            direction,
            1.0,
            1.5,
            C,
            kind,
            0.0,
            20.0,
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        let mk = |speed: f64, end: f64| {
            OPlane::new(
                RouteId(1),
                0.0,
                Direction::Forward,
                speed,
                1.5,
                C,
                BoundKind::Delayed,
                0.0,
                end,
            )
        };
        assert!(mk(1.0, 20.0).is_ok());
        assert!(matches!(
            mk(-1.0, 20.0),
            Err(IndexError::InvalidParameter("speed", _))
        ));
        assert!(matches!(
            mk(1.0, 0.0),
            Err(IndexError::EmptyTimeSpan { .. })
        ));
    }

    #[test]
    fn lu_matches_bounds() {
        let p = plane(BoundKind::Delayed, Direction::Forward, 0.0);
        // At t = 2: nominal 2, BS = min(√10, 2) = 2 → l = 0;
        // BF = min(√5, 1) = 1 → u = 3.
        let (l, u) = p.lu(2.0);
        assert!((l - 0.0).abs() < 1e-12);
        assert!((u - 3.0).abs() < 1e-12);
        // At t = 10: BS = √10, BF = √5 (plateaus).
        let (l, u) = p.lu(10.0);
        assert!((l - (10.0 - 10.0_f64.sqrt())).abs() < 1e-12);
        assert!((u - (10.0 + 5.0_f64.sqrt())).abs() < 1e-12);
    }

    #[test]
    fn lu_immediate_shrinks() {
        let p = plane(BoundKind::Immediate, Direction::Forward, 0.0);
        // Far from the update the immediate bounds decay as 2C/t = 10/t.
        let (l, u) = p.lu(10.0);
        assert!((l - 9.0).abs() < 1e-12);
        assert!((u - 11.0).abs() < 1e-12);
        // Interval width shrinks as t grows past the crossovers.
        let w5 = {
            let (l, u) = p.lu(5.0);
            u - l
        };
        let w15 = {
            let (l, u) = p.lu(15.0);
            u - l
        };
        assert!(w15 < w5);
    }

    #[test]
    fn arc_interval_directions_and_clamping() {
        let route = straight_route();
        let fwd = plane(BoundKind::Delayed, Direction::Forward, 10.0);
        let (lo, hi) = fwd.arc_interval(route.length(), 2.0);
        assert!((lo - 10.0).abs() < 1e-12);
        assert!((hi - 13.0).abs() < 1e-12);
        let bwd = plane(BoundKind::Delayed, Direction::Backward, 10.0);
        let (lo, hi) = bwd.arc_interval(route.length(), 2.0);
        assert!((lo - 7.0).abs() < 1e-12);
        assert!((hi - 10.0).abs() < 1e-12);
        // Clamping at route ends.
        let near_end = OPlane::new(
            RouteId(1),
            99.0,
            Direction::Forward,
            1.0,
            1.5,
            C,
            BoundKind::Delayed,
            0.0,
            20.0,
        )
        .unwrap();
        let (lo, hi) = near_end.arc_interval(route.length(), 10.0);
        assert!(lo >= 0.0 && hi <= 100.0 && lo <= hi);
        assert_eq!(hi, 100.0);
    }

    /// Every box set covers the exact uncertainty interval at every sampled
    /// time — the safety property that makes index filtering sound.
    #[test]
    fn boxes_cover_plane() {
        let route = straight_route();
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            for dir in [Direction::Forward, Direction::Backward] {
                let p = plane(kind, dir, 50.0);
                let boxes = p.to_boxes(&route, 2.5).unwrap();
                assert!(!boxes.is_empty());
                let mut t = 0.0;
                while t <= 20.0 {
                    let (lo, hi) = p.arc_interval(route.length(), t);
                    for arc in [lo, 0.5 * (lo + hi), hi] {
                        let pt = route.point_at(arc);
                        let covered = boxes.iter().any(|b| b.contains_point([pt.x, pt.y, t]));
                        assert!(covered, "{kind:?} {dir:?}: arc {arc} at t={t} uncovered");
                    }
                    t += 0.25;
                }
            }
        }
    }

    #[test]
    fn boxes_respect_cutoff() {
        let route = straight_route();
        let p = plane(BoundKind::Delayed, Direction::Forward, 0.0);
        let boxes = p.to_boxes(&route, 4.0).unwrap();
        assert_eq!(boxes.len(), 5); // 20 minutes / 4-minute slabs
        let t_max = boxes.iter().map(|b| b.max[2]).fold(f64::MIN, f64::max);
        assert!((t_max - 20.0).abs() < 1e-12);
        let t_min = boxes.iter().map(|b| b.min[2]).fold(f64::MAX, f64::min);
        assert!((t_min - 0.0).abs() < 1e-12);
    }

    /// A finite fine-horizon keeps full coverage: fine slabs up to the
    /// horizon, then exactly one coarse tail box to the cutoff.
    #[test]
    fn horizon_decomposition_covers_with_one_tail_box() {
        let route = straight_route();
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            for dir in [Direction::Forward, Direction::Backward] {
                let p = plane(kind, dir, 50.0);
                let boxes = p.to_boxes_with_horizon(&route, 2.5, 10.0).unwrap();
                // 4 fine slabs over [0, 10], one tail over [10, 20].
                assert_eq!(boxes.len(), 5);
                let t_max = boxes.iter().map(|b| b.max[2]).fold(f64::MIN, f64::max);
                assert!((t_max - 20.0).abs() < 1e-12);
                let mut t = 0.0;
                while t <= 20.0 {
                    let (lo, hi) = p.arc_interval(route.length(), t);
                    for arc in [lo, 0.5 * (lo + hi), hi] {
                        let pt = route.point_at(arc);
                        let covered = boxes.iter().any(|b| b.contains_point([pt.x, pt.y, t]));
                        assert!(covered, "{kind:?} {dir:?}: arc {arc} at t={t} uncovered");
                    }
                    t += 0.25;
                }
            }
        }
        // An infinite (or span-covering) horizon reproduces to_boxes.
        let p = plane(BoundKind::Delayed, Direction::Forward, 0.0);
        assert_eq!(
            p.to_boxes_with_horizon(&route, 4.0, f64::INFINITY).unwrap(),
            p.to_boxes(&route, 4.0).unwrap()
        );
        assert_eq!(
            p.to_boxes_with_horizon(&route, 4.0, 20.0).unwrap(),
            p.to_boxes(&route, 4.0).unwrap()
        );
        // Bad horizons rejected.
        assert!(p.to_boxes_with_horizon(&route, 4.0, 0.0).is_err());
        assert!(p.to_boxes_with_horizon(&route, 4.0, f64::NAN).is_err());
    }

    #[test]
    fn to_boxes_rejects_wrong_route_and_bad_slab() {
        let wrong = Route::from_vertices(
            RouteId(9),
            "other",
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
        )
        .unwrap();
        let p = plane(BoundKind::Delayed, Direction::Forward, 0.0);
        assert!(matches!(
            p.to_boxes(&wrong, 1.0),
            Err(IndexError::RouteMismatch)
        ));
        let route = straight_route();
        assert!(p.to_boxes(&route, 0.0).is_err());
    }

    #[test]
    fn interval_points_are_on_route() {
        let route = straight_route();
        let p = plane(BoundKind::Delayed, Direction::Forward, 10.0);
        let pts = p.interval_points(&route, 2.0).unwrap();
        assert!(pts.len() >= 2);
        assert!(pts[0].approx_eq(Point::new(10.0, 0.0)));
        assert!(pts.last().unwrap().approx_eq(Point::new(13.0, 0.0)));
    }

    /// A zero-speed plane (stopped object, e.g. dl after declaring speed
    /// 0): l = u = 0 — only fast headroom widens it.
    #[test]
    fn stopped_object_plane() {
        let p = OPlane::new(
            RouteId(1),
            10.0,
            Direction::Forward,
            0.0,
            1.5,
            C,
            BoundKind::Delayed,
            0.0,
            20.0,
        )
        .unwrap();
        let (l, u) = p.lu(5.0);
        assert_eq!(l, 0.0);
        assert!(u > 0.0); // fast bound: it may have started moving
    }
}
