//! Errors for the time-space index layer.

use modb_geom::GeomError;
use std::fmt;

/// Errors raised when building o-planes or maintaining the index.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexError {
    /// An o-plane parameter (speed, cost, times) was invalid.
    InvalidParameter(&'static str, f64),
    /// The o-plane's time span is empty (`end_time ≤ start_time`).
    EmptyTimeSpan {
        /// Plane start time.
        start: f64,
        /// Plane end (cutoff) time.
        end: f64,
    },
    /// The route passed for geometry resolution is not the plane's route.
    RouteMismatch,
    /// Underlying geometry failure.
    Geom(GeomError),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::InvalidParameter(name, v) => {
                write!(f, "o-plane parameter `{name}` invalid: {v}")
            }
            IndexError::EmptyTimeSpan { start, end } => {
                write!(f, "o-plane time span empty: [{start}, {end}]")
            }
            IndexError::RouteMismatch => write!(f, "route does not match the o-plane's route id"),
            IndexError::Geom(e) => write!(f, "geometry error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Geom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GeomError> for IndexError {
    fn from(e: GeomError) -> Self {
        IndexError::Geom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = IndexError::InvalidParameter("speed", -1.0);
        assert!(e.to_string().contains("speed"));
        let g: IndexError = GeomError::ZeroLength.into();
        assert!(matches!(g, IndexError::Geom(_)));
        assert!(IndexError::EmptyTimeSpan {
            start: 2.0,
            end: 1.0
        }
        .to_string()
        .contains("[2, 1]"));
    }
}
