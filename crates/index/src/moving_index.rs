//! The moving-object index: o-plane maintenance over the R\*-tree (§4.2).
//!
//! "The index is updated whenever a position-update is received from a
//! moving object o. … the id of o is removed from the 3-dimensional
//! rectangles of the index that intersect [the old o-plane] p1, and it is
//! inserted in the 3-dimensional rectangles that intersect [the new
//! o-plane] p2."
//!
//! Here each object's current o-plane is materialised as its slab boxes.
//! The R\*-tree holds **one entry per object** — the union box of its
//! slabs — and the slab boxes themselves are kept aside and tested
//! per-candidate during filtering. The candidate set is identical to
//! indexing every slab box individually (an object qualifies iff some
//! slab box intersects the query box), but the §4.2 position-update
//! maintenance becomes a single delete+insert instead of one per slab:
//! with a 60-minute horizon and 5-minute slabs that is a 12× cut in tree
//! surgery, which is what keeps both live updates and delta-synced
//! shadow copies O(changes) with a small constant. Filtering a
//! [`QueryRegion`] returns candidate ids; exact may/must refinement
//! against uncertainty intervals happens in `modb-core`, where routes
//! are resolvable.

use std::collections::HashMap;
use std::hash::Hash;

use modb_geom::Aabb3;
use modb_routes::Route;

use crate::error::IndexError;
use crate::oplane::OPlane;
use crate::rtree::{RStarTree, SearchStats};
use crate::timespace::QueryRegion;

/// Default slab duration (minutes) for o-plane decomposition: fine enough
/// that slab over-approximation stays tight, coarse enough that a one-hour
/// plane is ~12 boxes.
pub const DEFAULT_SLAB_MINUTES: f64 = 5.0;

/// A 3-D time-space index over the o-planes of a fleet of moving objects.
#[derive(Debug, Clone)]
pub struct MovingObjectIndex<K> {
    /// One entry per object: the union box of its slab boxes.
    tree: RStarTree<K>,
    planes: HashMap<K, (OPlane, Vec<Aabb3>)>,
    slab_minutes: f64,
}

/// Union box of a slab decomposition (empty for no boxes).
fn union_of(boxes: &[Aabb3]) -> Aabb3 {
    boxes.iter().fold(Aabb3::empty(), |a, b| a.union(b))
}

impl<K: Copy + Eq + Hash> Default for MovingObjectIndex<K> {
    fn default() -> Self {
        MovingObjectIndex::new(DEFAULT_SLAB_MINUTES)
    }
}

impl<K: Copy + Eq + Hash> MovingObjectIndex<K> {
    /// Creates an empty index with the given slab duration (minutes);
    /// non-positive values fall back to [`DEFAULT_SLAB_MINUTES`].
    pub fn new(slab_minutes: f64) -> Self {
        MovingObjectIndex {
            tree: RStarTree::new(),
            planes: HashMap::new(),
            slab_minutes: if slab_minutes.is_finite() && slab_minutes > 0.0 {
                slab_minutes
            } else {
                DEFAULT_SLAB_MINUTES
            },
        }
    }

    /// Number of indexed objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// `true` when no objects are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// The stored o-plane for `key`, if any.
    pub fn plane(&self, key: &K) -> Option<&OPlane> {
        self.planes.get(key).map(|(p, _)| p)
    }

    /// Installs (or replaces) the o-plane of object `key` — the §4.2
    /// position-update maintenance step.
    ///
    /// # Errors
    ///
    /// Propagates o-plane decomposition errors; on error the old plane (if
    /// any) is left untouched.
    pub fn upsert(&mut self, key: K, plane: OPlane, route: &Route) -> Result<(), IndexError> {
        let boxes = plane.to_boxes(route, self.slab_minutes)?;
        // Touch the old entry only after the new plane decomposed cleanly.
        match self.planes.remove(&key) {
            Some((_, old_boxes)) => {
                let updated = self
                    .tree
                    .update(&union_of(&old_boxes), union_of(&boxes), &key);
                debug_assert!(updated, "index out of sync: missing old entry");
            }
            None => self.tree.insert(union_of(&boxes), key),
        }
        self.planes.insert(key, (plane, boxes));
        Ok(())
    }

    /// Mirrors `src`'s entry for `key` into this index: the old boxes are
    /// deleted and `src`'s current boxes inserted verbatim — the same
    /// §4.2 delete+insert maintenance as [`MovingObjectIndex::upsert`],
    /// but reusing `src`'s already-decomposed slab boxes instead of
    /// re-decomposing the o-plane. Used by delta-applied shadow copies.
    /// Returns `true` when `src` holds an entry for `key` (otherwise the
    /// local entry, if any, was removed).
    pub fn sync_entry_from(&mut self, src: &Self, key: &K) -> bool {
        let old = self.planes.get(key).map(|(_, boxes)| union_of(boxes));
        match src.planes.get(key) {
            Some((plane, boxes)) => {
                match old {
                    Some(old_box) => {
                        let updated = self.tree.update(&old_box, union_of(boxes), key);
                        debug_assert!(updated, "index out of sync: missing entry on sync");
                    }
                    None => self.tree.insert(union_of(boxes), *key),
                }
                // clone_from reuses the displaced entry's heap buffers on
                // the hot resync path.
                match self.planes.entry(*key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        let slot = e.get_mut();
                        slot.0.clone_from(plane);
                        slot.1.clone_from(boxes);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((plane.clone(), boxes.clone()));
                    }
                }
                true
            }
            None => {
                if let Some(old_box) = old {
                    let removed = self.tree.remove(&old_box, key);
                    debug_assert!(removed, "index out of sync: missing entry on sync");
                    self.planes.remove(key);
                }
                false
            }
        }
    }

    /// Removes an object entirely (trip ended). Returns `true` when it was
    /// present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.planes.remove(key) {
            Some((_, boxes)) => {
                let removed = self.tree.remove(&union_of(&boxes), key);
                debug_assert!(removed, "index out of sync: missing entry on remove");
                true
            }
            None => false,
        }
    }

    /// Candidate object ids whose o-plane boxes intersect the query
    /// region's box — the sublinear filtering step. Deduplicated.
    pub fn candidates(&self, region: &QueryRegion) -> Vec<K> {
        self.candidates_with_stats(region).0
    }

    /// Like [`MovingObjectIndex::candidates`], with R\*-tree search
    /// statistics for the sublinearity experiments.
    pub fn candidates_with_stats(&self, region: &QueryRegion) -> (Vec<K>, SearchStats) {
        let mut hits = Vec::new();
        let stats = self.candidates_into(region, &mut hits);
        (hits, stats)
    }

    /// Appends the candidates for `region` to `out` and returns the
    /// search statistics. The tree prefilters on per-object union boxes;
    /// an object only qualifies when one of its slab boxes intersects the
    /// query box, so the candidate set equals what per-slab indexing
    /// would produce (already deduplicated — one tree entry per object).
    /// The caller owns (and typically reuses) the buffer, so a hot query
    /// loop filters without allocating a fresh vector per query; `&self`
    /// only, so any number of threads may filter one immutable index
    /// concurrently.
    pub fn candidates_into(&self, region: &QueryRegion, out: &mut Vec<K>) -> SearchStats {
        let query = region.aabb();
        let planes = &self.planes;
        self.tree.for_each_with_stats(&query, |k| {
            if let Some((_, boxes)) = planes.get(k) {
                if boxes.iter().any(|b| b.intersects(&query)) {
                    out.push(*k);
                }
            }
        })
    }

    /// Candidates for a raw 3-D box (used by the benchmarks).
    pub fn candidates_for_box(&self, query: &Aabb3) -> Vec<K> {
        let mut hits = Vec::new();
        let planes = &self.planes;
        self.tree.for_each_intersecting(query, |k| {
            if let Some((_, boxes)) = planes.get(k) {
                if boxes.iter().any(|b| b.intersects(query)) {
                    hits.push(*k);
                }
            }
        });
        hits
    }

    /// Underlying tree statistics: `(entries, nodes, height)`.
    pub fn tree_stats(&self) -> (usize, usize, usize) {
        (self.tree.len(), self.tree.node_count(), self.tree.height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_geom::{Point, Polygon, Rect};
    use modb_policy::BoundKind;
    use modb_routes::{Direction, RouteId};

    const C: f64 = 5.0;

    fn route() -> Route {
        Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap()
    }

    fn plane(start_arc: f64, t0: f64) -> OPlane {
        OPlane::new(
            RouteId(1),
            start_arc,
            Direction::Forward,
            1.0,
            1.5,
            C,
            BoundKind::Immediate,
            t0,
            t0 + 60.0,
        )
        .unwrap()
    }

    fn region(x0: f64, x1: f64, t: f64) -> QueryRegion {
        let g = Polygon::rectangle(&Rect::new(Point::new(x0, -1.0), Point::new(x1, 1.0))).unwrap();
        QueryRegion::at_instant(g, t)
    }

    #[test]
    fn upsert_and_query() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        idx.upsert(2u64, plane(50.0, 0.0), &r).unwrap();
        assert_eq!(idx.len(), 2);
        // At t = 2 object 1 is near arc 2, object 2 near arc 52.
        let c = idx.candidates(&region(0.0, 10.0, 2.0));
        assert_eq!(c, vec![1]);
        let c = idx.candidates(&region(45.0, 60.0, 2.0));
        assert_eq!(c, vec![2]);
        let mut c = idx.candidates(&region(0.0, 100.0, 2.0));
        c.sort_unstable();
        assert_eq!(c, vec![1, 2]);
        assert!(idx.candidates(&region(90.0, 100.0, 0.5)).is_empty());
    }

    #[test]
    fn update_moves_object() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        assert_eq!(idx.candidates(&region(0.0, 5.0, 1.0)), vec![1]);
        // The object reports from arc 80 at t = 10: replace its plane.
        idx.upsert(1u64, plane(80.0, 10.0), &r).unwrap();
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates(&region(0.0, 5.0, 11.0)).is_empty());
        assert_eq!(idx.candidates(&region(78.0, 85.0, 11.0)), vec![1]);
        // One tree entry per object, covering only the new plane.
        let (entries, _, _) = idx.tree_stats();
        assert_eq!(entries, 1);
    }

    #[test]
    fn remove_object() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        idx.upsert(2u64, plane(50.0, 0.0), &r).unwrap();
        assert!(idx.remove(&1));
        assert!(!idx.remove(&1));
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates(&region(0.0, 10.0, 2.0)).is_empty());
        let (entries, _, _) = idx.tree_stats();
        assert_eq!(entries, 1); // object 2's entry remains
    }

    #[test]
    fn candidates_deduplicated() {
        let r = route();
        // Tiny slabs → many boxes per plane; a wide query catches several.
        let mut idx = MovingObjectIndex::new(0.5);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        let g =
            Polygon::rectangle(&Rect::new(Point::new(0.0, -1.0), Point::new(100.0, 1.0))).unwrap();
        let q = QueryRegion::during(g, 0.0, 30.0);
        let c = idx.candidates(&q);
        assert_eq!(c, vec![1], "one candidate even with many boxes hit");
    }

    #[test]
    fn candidates_into_reuses_buffer_and_matches_allocating_path() {
        let r = route();
        let mut idx = MovingObjectIndex::new(0.5);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        idx.upsert(2u64, plane(50.0, 0.0), &r).unwrap();
        let q = region(0.0, 100.0, 2.0);
        let (alloc, alloc_stats) = idx.candidates_with_stats(&q);
        let mut buf = Vec::new();
        for _ in 0..3 {
            buf.clear();
            let stats = idx.candidates_into(&q, &mut buf);
            assert_eq!(buf, alloc);
            assert_eq!(stats, alloc_stats);
        }
        // Appends after existing content, deduplicating only the tail.
        buf.clear();
        buf.push(999);
        idx.candidates_into(&q, &mut buf);
        assert_eq!(buf[0], 999);
        assert_eq!(&buf[1..], &alloc[..]);
    }

    #[test]
    fn future_time_query() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        // "Where will it be at t = 30?" Nominal arc 30.
        assert_eq!(idx.candidates(&region(25.0, 35.0, 30.0)), vec![1]);
        assert!(idx.candidates(&region(0.0, 3.0, 30.0)).is_empty());
    }

    #[test]
    fn sync_entry_mirrors_source() {
        let r = route();
        let mut src = MovingObjectIndex::new(5.0);
        src.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        src.upsert(2u64, plane(50.0, 0.0), &r).unwrap();
        let mut shadow = src.clone();
        // Source moves object 1 and drops object 2; the shadow mirrors
        // entry-by-entry without re-decomposing.
        src.upsert(1u64, plane(80.0, 10.0), &r).unwrap();
        src.remove(&2);
        assert!(shadow.sync_entry_from(&src, &1));
        assert!(!shadow.sync_entry_from(&src, &2));
        assert_eq!(shadow.len(), src.len());
        assert_eq!(shadow.tree_stats().0, src.tree_stats().0);
        for q in [
            region(78.0, 85.0, 11.0),
            region(0.0, 10.0, 2.0),
            region(45.0, 60.0, 2.0),
        ] {
            assert_eq!(shadow.candidates(&q), src.candidates(&q));
        }
        // Syncing an id neither side holds is a no-op.
        assert!(!shadow.sync_entry_from(&src, &99));
        assert_eq!(shadow.len(), 1);
    }

    #[test]
    fn default_slab_fallback() {
        let idx: MovingObjectIndex<u64> = MovingObjectIndex::new(-3.0);
        assert!(idx.is_empty());
        // No panic; slab fell back to default.
        let r = route();
        let mut idx = idx;
        idx.upsert(9u64, plane(0.0, 0.0), &r).unwrap();
        assert_eq!(idx.len(), 1);
    }
}
