//! The moving-object index: o-plane maintenance over speed-banded
//! R\*-trees (§4.2, extended with speed partitioning).
//!
//! "The index is updated whenever a position-update is received from a
//! moving object o. … the id of o is removed from the 3-dimensional
//! rectangles of the index that intersect [the old o-plane] p1, and it is
//! inserted in the 3-dimensional rectangles that intersect [the new
//! o-plane] p2."
//!
//! Here each object's current o-plane is materialised as its slab boxes.
//! Each tree holds **one entry per object** — the union box of its
//! slabs — and the slab boxes themselves are kept aside and tested
//! per-candidate during filtering. The candidate set is identical to
//! indexing every slab box individually (an object qualifies iff some
//! slab box intersects the query box), but the §4.2 position-update
//! maintenance becomes a single delete+insert instead of one per slab:
//! with a 60-minute horizon and 5-minute slabs that is a 12× cut in tree
//! surgery, which is what keeps both live updates and delta-synced
//! shadow copies O(changes) with a small constant.
//!
//! **Speed bands.** A fast object's o-plane sweeps a long stretch of
//! route, so its union box is enormous next to a slow neighbour's; in one
//! shared tree those boxes inflate every internal node they touch and
//! smother the slow objects filed under them ("Speed Partitioning for
//! Indexing Moving Objects", arXiv 1411.4940). The index is therefore a
//! *partition-aware facade*: a [`BandConfig`] cuts the fleet into speed
//! bands by the o-plane's `max_speed`, each band gets its own
//! [`RStarTree`] (with a band-specific slab duration and fine-horizon),
//! and an upsert that lands in a different band than the stored entry
//! *migrates* the object — delete from the old band's tree, insert into
//! the new band's. A query probes every band and merges; since an object
//! lives in exactly one band, the merged candidate set needs no
//! cross-band dedup. [`BandConfig::single`] (one all-speeds band) is
//! bit-identical to the pre-banding single-tree index.
//!
//! Filtering a [`QueryRegion`] returns candidate ids; exact may/must
//! refinement against uncertainty intervals happens in `modb-core`,
//! where routes are resolvable.

use std::collections::HashMap;
use std::hash::Hash;

use modb_geom::Aabb3;
use modb_routes::Route;

use crate::error::IndexError;
use crate::oplane::OPlane;
use crate::rtree::{RStarTree, SearchStats};
use crate::timespace::QueryRegion;

/// Default slab duration (minutes) for o-plane decomposition: fine enough
/// that slab over-approximation stays tight, coarse enough that a one-hour
/// plane is ~12 boxes.
pub const DEFAULT_SLAB_MINUTES: f64 = 5.0;

/// Hard cap on the number of speed bands. Keeps [`BandConfig`] `Copy`
/// (it rides inside `DatabaseConfig`, WAL snapshots, and the stats
/// frame) and matches practice — speed-partitioning studies use a
/// handful of partitions, not dozens.
pub const MAX_BANDS: usize = 8;

/// One speed band: the objects whose o-plane `max_speed` falls at or
/// below `max_speed` (and above the previous band's edge), indexed in
/// their own R\*-tree with this band's decomposition knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandSpec {
    /// Upper speed edge (inclusive); `f64::INFINITY` on the last band.
    pub max_speed: f64,
    /// Slab duration (minutes) for o-plane decomposition in this band.
    pub slab_minutes: f64,
    /// Fine-decomposition horizon (minutes past an o-plane's update):
    /// slabs beyond it collapse into one coarse tail box
    /// ([`OPlane::to_boxes_with_horizon`]). `f64::INFINITY` = fine slabs
    /// over the whole plane, exactly [`OPlane::to_boxes`].
    pub fine_horizon: f64,
}

/// Speed-band layout of a [`MovingObjectIndex`]: ascending upper speed
/// edges, each with a per-band slab duration and fine-horizon. The last
/// band always has an infinite edge, so every `max_speed` maps to
/// exactly one band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandConfig {
    bands: [BandSpec; MAX_BANDS],
    len: usize,
}

fn sane_slab(slab_minutes: f64) -> f64 {
    if slab_minutes.is_finite() && slab_minutes > 0.0 {
        slab_minutes
    } else {
        DEFAULT_SLAB_MINUTES
    }
}

impl Default for BandConfig {
    fn default() -> Self {
        BandConfig::single(DEFAULT_SLAB_MINUTES)
    }
}

impl BandConfig {
    /// One all-speeds band — the pre-banding behavior, bit-identical to
    /// the historical single-tree index. Non-positive or non-finite slab
    /// durations fall back to [`DEFAULT_SLAB_MINUTES`].
    pub fn single(slab_minutes: f64) -> Self {
        let mut bands = [BandSpec {
            max_speed: f64::INFINITY,
            slab_minutes: sane_slab(slab_minutes),
            fine_horizon: f64::INFINITY,
        }; MAX_BANDS];
        bands[0].max_speed = f64::INFINITY;
        BandConfig { bands, len: 1 }
    }

    /// Bands cut at `edges` (ascending upper speed edges; an implicit
    /// unbounded band is appended), every band using the same
    /// `slab_minutes` and no fine-horizon. Candidate sets are **equal**
    /// to [`BandConfig::single`]'s — only the tree partitioning changes —
    /// which is what the banded≡single proptest pins down.
    ///
    /// # Errors
    ///
    /// [`IndexError::InvalidParameter`] when an edge is non-finite,
    /// non-positive, or not strictly ascending, or when `edges` needs
    /// more than [`MAX_BANDS`] bands.
    pub fn uniform(edges: &[f64], slab_minutes: f64) -> Result<Self, IndexError> {
        if edges.len() + 1 > MAX_BANDS {
            return Err(IndexError::InvalidParameter(
                "band_edges",
                edges.len() as f64,
            ));
        }
        let mut config = BandConfig::single(slab_minutes);
        let mut prev = 0.0;
        for (i, &edge) in edges.iter().enumerate() {
            if !edge.is_finite() || edge <= prev {
                return Err(IndexError::InvalidParameter("band_edge", edge));
            }
            prev = edge;
            config.bands[i].max_speed = edge;
            config.bands[i].slab_minutes = config.bands[0].slab_minutes;
        }
        config.len = edges.len() + 1;
        config.bands[edges.len()] = BandSpec {
            max_speed: f64::INFINITY,
            slab_minutes: config.bands[0].slab_minutes,
            fine_horizon: f64::INFINITY,
        };
        Ok(config)
    }

    /// Like [`BandConfig::uniform`], but each band's slab duration is
    /// scaled so the route stretch swept per slab stays roughly constant:
    /// band `i` gets `base_slab · e₀ / eᵢ` where `eᵢ` is its upper edge
    /// (the unbounded last band uses twice its lower edge as a nominal
    /// top). Faster bands therefore get finer slabs — tighter slab boxes,
    /// fewer false-positive candidates — which is the banded index's
    /// candidate-ratio win in W8. Slabs are floored at `base_slab / 16`.
    ///
    /// # Errors
    ///
    /// Same as [`BandConfig::uniform`].
    pub fn speed_scaled(edges: &[f64], base_slab: f64) -> Result<Self, IndexError> {
        let mut config = BandConfig::uniform(edges, base_slab)?;
        if edges.is_empty() {
            return Ok(config);
        }
        let base = config.bands[0].slab_minutes;
        let e0 = edges[0];
        for i in 0..config.len {
            let top = if config.bands[i].max_speed.is_finite() {
                config.bands[i].max_speed
            } else {
                2.0 * edges[edges.len() - 1]
            };
            config.bands[i].slab_minutes = (base * e0 / top).max(base / 16.0);
        }
        Ok(config)
    }

    /// Reassembles a config from explicit band specs — the
    /// deserialization path (WAL snapshots, the stats frame). Accepts
    /// exactly what the builders produce: 1..=[`MAX_BANDS`] bands,
    /// strictly ascending positive edges with the last infinite,
    /// finite positive slab durations, positive (possibly infinite)
    /// fine-horizons.
    ///
    /// # Errors
    ///
    /// [`IndexError::InvalidParameter`] on any violation.
    pub fn from_bands(specs: &[BandSpec]) -> Result<Self, IndexError> {
        if specs.is_empty() || specs.len() > MAX_BANDS {
            return Err(IndexError::InvalidParameter(
                "band_count",
                specs.len() as f64,
            ));
        }
        let mut prev = 0.0;
        for (i, spec) in specs.iter().enumerate() {
            let last = i == specs.len() - 1;
            if last != spec.max_speed.is_infinite() || spec.max_speed <= prev {
                return Err(IndexError::InvalidParameter("band_edge", spec.max_speed));
            }
            prev = spec.max_speed;
            if !spec.slab_minutes.is_finite() || spec.slab_minutes <= 0.0 {
                return Err(IndexError::InvalidParameter(
                    "slab_minutes",
                    spec.slab_minutes,
                ));
            }
            if spec.fine_horizon.is_nan() || spec.fine_horizon <= 0.0 {
                return Err(IndexError::InvalidParameter(
                    "fine_horizon",
                    spec.fine_horizon,
                ));
            }
        }
        let mut config = BandConfig::single(specs[0].slab_minutes);
        config.bands[..specs.len()].copy_from_slice(specs);
        config.len = specs.len();
        Ok(config)
    }

    /// Returns `self` with band `band`'s slab duration replaced
    /// (out-of-range bands and bad durations are ignored).
    #[must_use]
    pub fn with_band_slab(mut self, band: usize, slab_minutes: f64) -> Self {
        if band < self.len && slab_minutes.is_finite() && slab_minutes > 0.0 {
            self.bands[band].slab_minutes = slab_minutes;
        }
        self
    }

    /// Returns `self` with band `band`'s fine-horizon replaced
    /// (out-of-range bands and non-positive/NaN horizons are ignored;
    /// `f64::INFINITY` restores full fine decomposition).
    #[must_use]
    pub fn with_band_horizon(mut self, band: usize, fine_horizon: f64) -> Self {
        if band < self.len && !fine_horizon.is_nan() && fine_horizon > 0.0 {
            self.bands[band].fine_horizon = fine_horizon;
        }
        self
    }

    /// The configured bands, slowest first.
    pub fn bands(&self) -> &[BandSpec] {
        &self.bands[..self.len]
    }

    /// Number of bands (≥ 1).
    pub fn band_count(&self) -> usize {
        self.len
    }

    /// The band index for an o-plane with this `max_speed`: the first
    /// band whose upper edge is at or above it. The last band's edge is
    /// infinite, so every finite speed (and, defensively, NaN) lands
    /// somewhere.
    pub fn band_for(&self, max_speed: f64) -> usize {
        self.bands[..self.len]
            .iter()
            .position(|b| max_speed <= b.max_speed)
            .unwrap_or(self.len - 1)
    }
}

/// Per-band tree statistics, for the stats frame and the W8 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandStats {
    /// Band index (0 = slowest).
    pub band: usize,
    /// Objects whose union box lives in this band's tree.
    pub entries: usize,
    /// Nodes in this band's tree.
    pub nodes: usize,
    /// Height of this band's tree.
    pub height: usize,
}

/// One object's stored state: its o-plane, the slab boxes it decomposed
/// into under its band's knobs, and the band its union box is filed in.
/// `boxes` empty means *no tree entry anywhere* (a degenerate
/// decomposition must not plant an `Aabb3::empty()` union box in a
/// tree — see `upsert`).
#[derive(Debug, Clone)]
struct Stored {
    plane: OPlane,
    boxes: Vec<Aabb3>,
    band: usize,
}

/// A 3-D time-space index over the o-planes of a fleet of moving
/// objects, partitioned into speed bands (one R\*-tree per band).
#[derive(Debug, Clone)]
pub struct MovingObjectIndex<K> {
    /// One tree per band; `trees[i]` holds the union boxes of the
    /// objects in band `i`.
    trees: Vec<RStarTree<K>>,
    planes: HashMap<K, Stored>,
    config: BandConfig,
    /// Upserts (and entry syncs) that moved an object between bands.
    migrations: u64,
}

/// Union box of a slab decomposition (empty for no boxes).
fn union_of(boxes: &[Aabb3]) -> Aabb3 {
    boxes.iter().fold(Aabb3::empty(), |a, b| a.union(b))
}

impl<K: Copy + Eq + Hash> Default for MovingObjectIndex<K> {
    fn default() -> Self {
        MovingObjectIndex::new(DEFAULT_SLAB_MINUTES)
    }
}

impl<K: Copy + Eq + Hash> MovingObjectIndex<K> {
    /// Creates an empty single-band index with the given slab duration
    /// (minutes); non-positive values fall back to
    /// [`DEFAULT_SLAB_MINUTES`]. Identical to the historical
    /// un-partitioned index.
    pub fn new(slab_minutes: f64) -> Self {
        MovingObjectIndex::with_config(BandConfig::single(slab_minutes))
    }

    /// Creates an empty index partitioned per `config`.
    pub fn with_config(config: BandConfig) -> Self {
        MovingObjectIndex {
            trees: (0..config.band_count()).map(|_| RStarTree::new()).collect(),
            planes: HashMap::new(),
            config,
            migrations: 0,
        }
    }

    /// The band layout.
    pub fn config(&self) -> &BandConfig {
        &self.config
    }

    /// Number of indexed objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.planes.len()
    }

    /// `true` when no objects are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.planes.is_empty()
    }

    /// The stored o-plane for `key`, if any.
    pub fn plane(&self, key: &K) -> Option<&OPlane> {
        self.planes.get(key).map(|s| &s.plane)
    }

    /// The band `key`'s entry is filed in, if indexed. `None` for
    /// unknown keys *and* for entries whose decomposition was empty
    /// (no tree holds them).
    pub fn band_of(&self, key: &K) -> Option<usize> {
        self.planes
            .get(key)
            .filter(|s| !s.boxes.is_empty())
            .map(|s| s.band)
    }

    /// Upserts (and entry syncs) that moved an object from one band's
    /// tree to another — the city↔highway regime-change counter
    /// surfaced as `modb_index_band_migrations_total`.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Deletes `key`'s union box from its band's tree, if it has one.
    fn detach(trees: &mut [RStarTree<K>], key: &K, stored: &Stored) {
        if !stored.boxes.is_empty() {
            let removed = trees[stored.band].remove(&union_of(&stored.boxes), key);
            debug_assert!(removed, "index out of sync: missing tree entry");
        }
    }

    /// Installs `key` with an already-decomposed plane: tree surgery
    /// (update in place within a band, delete+insert across bands,
    /// nothing for empty decompositions) plus the side-table write.
    fn install(&mut self, key: K, plane: OPlane, boxes: Vec<Aabb3>, band: usize) {
        match self.planes.get_mut(&key) {
            Some(stored) => {
                match (stored.boxes.is_empty(), boxes.is_empty()) {
                    (false, false) if stored.band == band => {
                        let updated = self.trees[band].update(
                            &union_of(&stored.boxes),
                            union_of(&boxes),
                            &key,
                        );
                        debug_assert!(updated, "index out of sync: missing old entry");
                    }
                    (false, false) => {
                        // Band migration: the object's speed regime
                        // changed, so its union box moves trees.
                        Self::detach(&mut self.trees, &key, stored);
                        self.trees[band].insert(union_of(&boxes), key);
                        self.migrations += 1;
                    }
                    (false, true) => Self::detach(&mut self.trees, &key, stored),
                    (true, false) => self.trees[band].insert(union_of(&boxes), key),
                    (true, true) => {}
                }
                stored.plane = plane;
                stored.boxes = boxes;
                stored.band = band;
            }
            None => {
                if !boxes.is_empty() {
                    self.trees[band].insert(union_of(&boxes), key);
                }
                self.planes.insert(key, Stored { plane, boxes, band });
            }
        }
    }

    /// Installs (or replaces) the o-plane of object `key` — the §4.2
    /// position-update maintenance step. The plane's `max_speed` selects
    /// the band; an entry whose band changed is migrated (delete from
    /// the old band's tree, insert into the new band's). A decomposition
    /// with no boxes installs **no** tree entry — a degenerate
    /// `Aabb3::empty()` union box must never pollute a tree.
    ///
    /// # Errors
    ///
    /// Propagates o-plane decomposition errors; on error the old plane (if
    /// any) is left untouched.
    pub fn upsert(&mut self, key: K, plane: OPlane, route: &Route) -> Result<(), IndexError> {
        let band = self.config.band_for(plane.max_speed);
        let spec = self.config.bands()[band];
        let boxes = plane.to_boxes_with_horizon(route, spec.slab_minutes, spec.fine_horizon)?;
        // Touch the old entry only after the new plane decomposed cleanly.
        self.install(key, plane, boxes, band);
        Ok(())
    }

    /// Mirrors `src`'s entry for `key` into this index: the old boxes are
    /// deleted and `src`'s current boxes inserted verbatim — the same
    /// §4.2 delete+insert maintenance as [`MovingObjectIndex::upsert`],
    /// but reusing `src`'s already-decomposed slab boxes instead of
    /// re-decomposing the o-plane. **Band membership is mirrored too**:
    /// the entry lands in the same band `src` filed it under, so a
    /// delta-synced shadow copy partitions identically to its source
    /// (the caller guarantees the configs match — shadows are clones).
    /// Returns `true` when `src` holds an entry for `key` (otherwise the
    /// local entry, if any, was removed).
    pub fn sync_entry_from(&mut self, src: &Self, key: &K) -> bool {
        debug_assert_eq!(
            self.config, src.config,
            "sync_entry_from across band configs"
        );
        match src.planes.get(key) {
            Some(entry) => {
                match self.planes.get_mut(key) {
                    Some(stored) => {
                        match (stored.boxes.is_empty(), entry.boxes.is_empty()) {
                            (false, false) if stored.band == entry.band => {
                                let updated = self.trees[entry.band].update(
                                    &union_of(&stored.boxes),
                                    union_of(&entry.boxes),
                                    key,
                                );
                                debug_assert!(updated, "index out of sync: missing entry on sync");
                            }
                            (false, false) => {
                                Self::detach(&mut self.trees, key, stored);
                                self.trees[entry.band].insert(union_of(&entry.boxes), *key);
                                self.migrations += 1;
                            }
                            (false, true) => Self::detach(&mut self.trees, key, stored),
                            (true, false) => {
                                self.trees[entry.band].insert(union_of(&entry.boxes), *key)
                            }
                            (true, true) => {}
                        }
                        // clone_from reuses the displaced entry's heap
                        // buffers on the hot resync path.
                        stored.plane.clone_from(&entry.plane);
                        stored.boxes.clone_from(&entry.boxes);
                        stored.band = entry.band;
                    }
                    None => {
                        if !entry.boxes.is_empty() {
                            self.trees[entry.band].insert(union_of(&entry.boxes), *key);
                        }
                        self.planes.insert(*key, entry.clone());
                    }
                }
                true
            }
            None => {
                if let Some(stored) = self.planes.remove(key) {
                    Self::detach(&mut self.trees, key, &stored);
                }
                false
            }
        }
    }

    /// Removes an object entirely (trip ended). Returns `true` when it was
    /// present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.planes.remove(key) {
            Some(stored) => {
                Self::detach(&mut self.trees, key, &stored);
                true
            }
            None => false,
        }
    }

    /// Candidate object ids whose o-plane boxes intersect the query
    /// region's box — the sublinear filtering step. Deduplicated.
    pub fn candidates(&self, region: &QueryRegion) -> Vec<K> {
        self.candidates_with_stats(region).0
    }

    /// Like [`MovingObjectIndex::candidates`], with R\*-tree search
    /// statistics (summed across bands) for the sublinearity experiments.
    pub fn candidates_with_stats(&self, region: &QueryRegion) -> (Vec<K>, SearchStats) {
        let mut hits = Vec::new();
        let stats = self.candidates_into(region, &mut hits);
        (hits, stats)
    }

    /// Appends the candidates for `region` to `out` and returns the
    /// search statistics (summed across the band trees). Each tree
    /// prefilters on per-object union boxes; an object only qualifies
    /// when one of its slab boxes intersects the query box, so the
    /// candidate set equals what per-slab indexing would produce
    /// (already deduplicated — one tree entry per object, each object in
    /// exactly one band). The caller owns (and typically reuses) the
    /// buffer, so a hot query loop filters without allocating a fresh
    /// vector per query; `&self` only, so any number of threads may
    /// filter one immutable index concurrently.
    pub fn candidates_into(&self, region: &QueryRegion, out: &mut Vec<K>) -> SearchStats {
        let query = region.aabb();
        let mut stats = SearchStats::default();
        for tree in &self.trees {
            let s = tree.for_each_with_stats(&query, Self::slab_filter(&self.planes, &query, out));
            stats.nodes_visited += s.nodes_visited;
            stats.entries_tested += s.entries_tested;
            stats.matches += s.matches;
        }
        stats
    }

    /// Candidates for a raw 3-D box (used by the benchmarks).
    pub fn candidates_for_box(&self, query: &Aabb3) -> Vec<K> {
        let mut hits = Vec::new();
        for tree in &self.trees {
            tree.for_each_intersecting(query, Self::slab_filter(&self.planes, query, &mut hits));
        }
        hits
    }

    /// The per-candidate slab filter shared by every probe path: a tree
    /// hit (union box intersects) only becomes a candidate when one of
    /// its *slab* boxes intersects the query box.
    fn slab_filter<'a>(
        planes: &'a HashMap<K, Stored>,
        query: &'a Aabb3,
        out: &'a mut Vec<K>,
    ) -> impl FnMut(&K) + 'a {
        move |k| {
            if let Some(stored) = planes.get(k) {
                if stored.boxes.iter().any(|b| b.intersects(query)) {
                    out.push(*k);
                }
            }
        }
    }

    /// Aggregate tree statistics across bands: `(entries, nodes,
    /// max height)`.
    pub fn tree_stats(&self) -> (usize, usize, usize) {
        self.trees.iter().fold((0, 0, 0), |(e, n, h), t| {
            (e + t.len(), n + t.node_count(), h.max(t.height()))
        })
    }

    /// Per-band tree statistics, slowest band first.
    pub fn band_stats(&self) -> Vec<BandStats> {
        self.trees
            .iter()
            .enumerate()
            .map(|(band, t)| BandStats {
                band,
                entries: t.len(),
                nodes: t.node_count(),
                height: t.height(),
            })
            .collect()
    }

    /// Test seam: installs a pre-decomposed entry directly, bypassing
    /// o-plane decomposition — lets tests exercise the empty-boxes
    /// degenerate path that `to_boxes` can never produce.
    #[cfg(test)]
    fn install_raw(&mut self, key: K, plane: OPlane, boxes: Vec<Aabb3>) {
        let band = self.config.band_for(plane.max_speed);
        self.install(key, plane, boxes, band);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_geom::{Point, Polygon, Rect};
    use modb_policy::BoundKind;
    use modb_routes::{Direction, RouteId};

    const C: f64 = 5.0;

    fn route() -> Route {
        Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap()
    }

    fn plane(start_arc: f64, t0: f64) -> OPlane {
        plane_v(start_arc, t0, 1.5)
    }

    fn plane_v(start_arc: f64, t0: f64, max_speed: f64) -> OPlane {
        OPlane::new(
            RouteId(1),
            start_arc,
            Direction::Forward,
            1.0_f64.min(max_speed),
            max_speed,
            C,
            BoundKind::Immediate,
            t0,
            t0 + 60.0,
        )
        .unwrap()
    }

    fn region(x0: f64, x1: f64, t: f64) -> QueryRegion {
        let g = Polygon::rectangle(&Rect::new(Point::new(x0, -1.0), Point::new(x1, 1.0))).unwrap();
        QueryRegion::at_instant(g, t)
    }

    #[test]
    fn upsert_and_query() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        idx.upsert(2u64, plane(50.0, 0.0), &r).unwrap();
        assert_eq!(idx.len(), 2);
        // At t = 2 object 1 is near arc 2, object 2 near arc 52.
        let c = idx.candidates(&region(0.0, 10.0, 2.0));
        assert_eq!(c, vec![1]);
        let c = idx.candidates(&region(45.0, 60.0, 2.0));
        assert_eq!(c, vec![2]);
        let mut c = idx.candidates(&region(0.0, 100.0, 2.0));
        c.sort_unstable();
        assert_eq!(c, vec![1, 2]);
        assert!(idx.candidates(&region(90.0, 100.0, 0.5)).is_empty());
    }

    #[test]
    fn update_moves_object() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        assert_eq!(idx.candidates(&region(0.0, 5.0, 1.0)), vec![1]);
        // The object reports from arc 80 at t = 10: replace its plane.
        idx.upsert(1u64, plane(80.0, 10.0), &r).unwrap();
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates(&region(0.0, 5.0, 11.0)).is_empty());
        assert_eq!(idx.candidates(&region(78.0, 85.0, 11.0)), vec![1]);
        // One tree entry per object, covering only the new plane.
        let (entries, _, _) = idx.tree_stats();
        assert_eq!(entries, 1);
        // Same band both times: no migration counted.
        assert_eq!(idx.migrations(), 0);
    }

    #[test]
    fn remove_object() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        idx.upsert(2u64, plane(50.0, 0.0), &r).unwrap();
        assert!(idx.remove(&1));
        assert!(!idx.remove(&1));
        assert_eq!(idx.len(), 1);
        assert!(idx.candidates(&region(0.0, 10.0, 2.0)).is_empty());
        let (entries, _, _) = idx.tree_stats();
        assert_eq!(entries, 1); // object 2's entry remains
    }

    #[test]
    fn candidates_deduplicated() {
        let r = route();
        // Tiny slabs → many boxes per plane; a wide query catches several.
        let mut idx = MovingObjectIndex::new(0.5);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        let g =
            Polygon::rectangle(&Rect::new(Point::new(0.0, -1.0), Point::new(100.0, 1.0))).unwrap();
        let q = QueryRegion::during(g, 0.0, 30.0);
        let c = idx.candidates(&q);
        assert_eq!(c, vec![1], "one candidate even with many boxes hit");
    }

    #[test]
    fn candidates_into_reuses_buffer_and_matches_allocating_path() {
        let r = route();
        let mut idx = MovingObjectIndex::new(0.5);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        idx.upsert(2u64, plane(50.0, 0.0), &r).unwrap();
        let q = region(0.0, 100.0, 2.0);
        let (alloc, alloc_stats) = idx.candidates_with_stats(&q);
        let mut buf = Vec::new();
        for _ in 0..3 {
            buf.clear();
            let stats = idx.candidates_into(&q, &mut buf);
            assert_eq!(buf, alloc);
            assert_eq!(stats, alloc_stats);
        }
        // Appends after existing content, deduplicating only the tail.
        buf.clear();
        buf.push(999);
        idx.candidates_into(&q, &mut buf);
        assert_eq!(buf[0], 999);
        assert_eq!(&buf[1..], &alloc[..]);
    }

    #[test]
    fn future_time_query() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        // "Where will it be at t = 30?" Nominal arc 30.
        assert_eq!(idx.candidates(&region(25.0, 35.0, 30.0)), vec![1]);
        assert!(idx.candidates(&region(0.0, 3.0, 30.0)).is_empty());
    }

    #[test]
    fn sync_entry_mirrors_source() {
        let r = route();
        let mut src = MovingObjectIndex::new(5.0);
        src.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        src.upsert(2u64, plane(50.0, 0.0), &r).unwrap();
        let mut shadow = src.clone();
        // Source moves object 1 and drops object 2; the shadow mirrors
        // entry-by-entry without re-decomposing.
        src.upsert(1u64, plane(80.0, 10.0), &r).unwrap();
        src.remove(&2);
        assert!(shadow.sync_entry_from(&src, &1));
        assert!(!shadow.sync_entry_from(&src, &2));
        assert_eq!(shadow.len(), src.len());
        assert_eq!(shadow.tree_stats().0, src.tree_stats().0);
        for q in [
            region(78.0, 85.0, 11.0),
            region(0.0, 10.0, 2.0),
            region(45.0, 60.0, 2.0),
        ] {
            assert_eq!(shadow.candidates(&q), src.candidates(&q));
        }
        // Syncing an id neither side holds is a no-op.
        assert!(!shadow.sync_entry_from(&src, &99));
        assert_eq!(shadow.len(), 1);
    }

    #[test]
    fn default_slab_fallback() {
        let idx: MovingObjectIndex<u64> = MovingObjectIndex::new(-3.0);
        assert!(idx.is_empty());
        // No panic; slab fell back to default.
        let r = route();
        let mut idx = idx;
        idx.upsert(9u64, plane(0.0, 0.0), &r).unwrap();
        assert_eq!(idx.len(), 1);
    }

    // --- band-specific behavior -------------------------------------

    #[test]
    fn band_config_layout_and_selection() {
        let c = BandConfig::single(5.0);
        assert_eq!(c.band_count(), 1);
        assert_eq!(c.band_for(0.0), 0);
        assert_eq!(c.band_for(1e9), 0);

        let c = BandConfig::uniform(&[0.5, 1.5], 5.0).unwrap();
        assert_eq!(c.band_count(), 3);
        assert_eq!(c.band_for(0.3), 0);
        assert_eq!(c.band_for(0.5), 0); // edge inclusive
        assert_eq!(c.band_for(1.0), 1);
        assert_eq!(c.band_for(7.0), 2);
        assert_eq!(c.band_for(f64::NAN), 2); // defensively: last band
        assert!(c.bands()[2].max_speed.is_infinite());

        // Bad edges rejected.
        assert!(BandConfig::uniform(&[1.0, 0.5], 5.0).is_err());
        assert!(BandConfig::uniform(&[0.0], 5.0).is_err());
        assert!(BandConfig::uniform(&[f64::NAN], 5.0).is_err());
        assert!(BandConfig::uniform(&[1., 2., 3., 4., 5., 6., 7., 8.], 5.0).is_err());

        // Scaled slabs shrink for faster bands; floored at base/16.
        let c = BandConfig::speed_scaled(&[0.5, 2.0], 4.0).unwrap();
        assert_eq!(c.bands()[0].slab_minutes, 4.0);
        assert_eq!(c.bands()[1].slab_minutes, 1.0); // 4 · 0.5/2.0
        assert_eq!(c.bands()[2].slab_minutes, 0.5); // 4 · 0.5/(2·2.0)
        let c = BandConfig::speed_scaled(&[0.1, 100.0], 4.0).unwrap();
        assert_eq!(c.bands()[2].slab_minutes, 0.25); // floored

        // Builder overrides.
        let c = BandConfig::uniform(&[1.0], 5.0)
            .unwrap()
            .with_band_slab(1, 2.5)
            .with_band_horizon(1, 30.0);
        assert_eq!(c.bands()[1].slab_minutes, 2.5);
        assert_eq!(c.bands()[1].fine_horizon, 30.0);
        // Out-of-range / bad values ignored.
        let same = c.with_band_slab(9, 1.0).with_band_horizon(0, f64::NAN);
        assert_eq!(same, c);
    }

    #[test]
    fn objects_partition_by_max_speed() {
        let r = route();
        let config = BandConfig::uniform(&[1.0], 5.0).unwrap();
        let mut idx = MovingObjectIndex::with_config(config);
        idx.upsert(1u64, plane_v(0.0, 0.0, 0.6), &r).unwrap(); // slow band
        idx.upsert(2u64, plane_v(50.0, 0.0, 2.5), &r).unwrap(); // fast band
        assert_eq!(idx.band_of(&1), Some(0));
        assert_eq!(idx.band_of(&2), Some(1));
        let stats = idx.band_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].entries, 1);
        assert_eq!(stats[1].entries, 1);
        assert_eq!(idx.tree_stats().0, 2);
        // Queries probe both bands and merge.
        let mut c = idx.candidates(&region(0.0, 100.0, 1.0));
        c.sort_unstable();
        assert_eq!(c, vec![1, 2]);
    }

    #[test]
    fn upsert_across_bands_migrates() {
        let r = route();
        let config = BandConfig::uniform(&[1.0], 5.0).unwrap();
        let mut idx = MovingObjectIndex::with_config(config);
        idx.upsert(1u64, plane_v(10.0, 0.0, 0.6), &r).unwrap();
        assert_eq!(idx.band_of(&1), Some(0));
        assert_eq!(idx.migrations(), 0);
        // The DBMS learns a highway-grade top speed: the entry migrates.
        idx.upsert(1u64, plane_v(12.0, 5.0, 2.0), &r).unwrap();
        assert_eq!(idx.band_of(&1), Some(1));
        assert_eq!(idx.migrations(), 1);
        let stats = idx.band_stats();
        assert_eq!((stats[0].entries, stats[1].entries), (0, 1));
        // Still exactly one entry overall, findable where it now is.
        assert_eq!(idx.tree_stats().0, 1);
        assert_eq!(idx.candidates(&region(10.0, 25.0, 6.0)), vec![1]);
        // And back: stop-and-go again.
        idx.upsert(1u64, plane_v(14.0, 10.0, 0.5), &r).unwrap();
        assert_eq!(idx.band_of(&1), Some(0));
        assert_eq!(idx.migrations(), 2);
    }

    #[test]
    fn sync_mirrors_band_membership_and_migrations() {
        let r = route();
        let config = BandConfig::uniform(&[1.0], 5.0).unwrap();
        let mut src = MovingObjectIndex::with_config(config);
        src.upsert(1u64, plane_v(0.0, 0.0, 0.6), &r).unwrap();
        src.upsert(2u64, plane_v(50.0, 0.0, 2.5), &r).unwrap();
        let mut shadow = src.clone();
        // Source migrates object 1 to the fast band.
        src.upsert(1u64, plane_v(5.0, 5.0, 3.0), &r).unwrap();
        assert!(shadow.sync_entry_from(&src, &1));
        assert_eq!(shadow.band_of(&1), src.band_of(&1));
        assert_eq!(shadow.band_of(&1), Some(1));
        // The shadow observed the band move as a migration of its own.
        assert_eq!(shadow.migrations(), 1);
        for (a, b) in shadow.band_stats().iter().zip(src.band_stats()) {
            assert_eq!(a.entries, b.entries);
        }
        for q in [region(0.0, 30.0, 6.0), region(40.0, 70.0, 2.0)] {
            let mut cs = shadow.candidates(&q);
            let mut ct = src.candidates(&q);
            cs.sort_unstable();
            ct.sort_unstable();
            assert_eq!(cs, ct);
        }
    }

    #[test]
    fn single_band_is_bit_identical_to_legacy_layout() {
        let r = route();
        let mut banded = MovingObjectIndex::with_config(BandConfig::single(5.0));
        let mut legacy = MovingObjectIndex::new(5.0);
        for (k, arc) in [(1u64, 0.0), (2, 30.0), (3, 60.0), (4, 90.0)] {
            banded.upsert(k, plane(arc, 0.0), &r).unwrap();
            legacy.upsert(k, plane(arc, 0.0), &r).unwrap();
        }
        assert_eq!(banded.tree_stats(), legacy.tree_stats());
        for q in [
            region(0.0, 10.0, 2.0),
            region(25.0, 65.0, 4.0),
            region(0.0, 100.0, 9.0),
        ] {
            let (ca, sa) = banded.candidates_with_stats(&q);
            let (cb, sb) = legacy.candidates_with_stats(&q);
            assert_eq!(ca, cb);
            assert_eq!(sa, sb);
        }
    }

    /// The empty-decomposition degenerate path: no `Aabb3::empty()` union
    /// box may reach a tree, and remove/sync must cope with entries that
    /// have no tree presence.
    #[test]
    fn empty_boxes_skip_tree_entry() {
        let r = route();
        let mut idx = MovingObjectIndex::new(5.0);
        idx.install_raw(1u64, plane(0.0, 0.0), Vec::new());
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.tree_stats().0, 0, "no tree entry for empty boxes");
        assert_eq!(idx.band_of(&1), None);
        assert!(idx.candidates(&region(0.0, 100.0, 1.0)).is_empty());
        // Upserting a real plane over the degenerate entry inserts.
        idx.upsert(1u64, plane(0.0, 0.0), &r).unwrap();
        assert_eq!(idx.tree_stats().0, 1);
        assert_eq!(idx.candidates(&region(0.0, 10.0, 1.0)), vec![1]);
        // And back to degenerate: the tree entry is deleted.
        idx.install_raw(1u64, plane(0.0, 0.0), Vec::new());
        assert_eq!(idx.tree_stats().0, 0);
        // Remove of a degenerate entry succeeds without tree surgery.
        assert!(idx.remove(&1));
        assert_eq!(idx.len(), 0);

        // Sync paths: a shadow mirrors degenerate entries as degenerate.
        let mut src = MovingObjectIndex::new(5.0);
        src.install_raw(7u64, plane(10.0, 0.0), Vec::new());
        let mut shadow = MovingObjectIndex::new(5.0);
        shadow.upsert(7u64, plane(10.0, 0.0), &r).unwrap();
        assert!(shadow.sync_entry_from(&src, &7));
        assert_eq!(shadow.tree_stats().0, 0, "sync dropped the tree entry");
        assert_eq!(shadow.len(), 1);
        // Degenerate → real on the source side re-inserts on sync.
        src.upsert(7u64, plane(10.0, 0.0), &r).unwrap();
        assert!(shadow.sync_entry_from(&src, &7));
        assert_eq!(shadow.tree_stats().0, 1);
    }

    #[test]
    fn per_band_horizon_bounds_fast_band_boxes() {
        let r = route();
        let config = BandConfig::uniform(&[1.0], 5.0)
            .unwrap()
            .with_band_horizon(1, 20.0);
        let mut idx = MovingObjectIndex::with_config(config);
        idx.upsert(1u64, plane_v(0.0, 0.0, 2.5), &r).unwrap();
        // 4 fine slabs + 1 coarse tail instead of 12 fine slabs —
        // but the far future is still covered (soundness).
        assert_eq!(idx.candidates(&region(30.0, 60.0, 50.0)), vec![1]);
    }
}
