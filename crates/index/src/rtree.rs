//! A 3-D R\*-tree built from scratch.
//!
//! The paper (§4.2) calls for "a 3-dimensional spatial index, e.g. an
//! R⁺-tree" over (x, y, t) time-space. This is an R\*-flavoured R-tree:
//! choose-subtree minimises overlap enlargement at the leaf level and
//! volume enlargement above it, and node splits use the R\* axis/
//! distribution heuristics (minimum margin axis, minimum overlap
//! distribution). Deletion condenses the tree and reinserts orphans.
//!
//! The tree is deliberately self-contained (no external spatial crates)
//! and instrumented: searches can report how many nodes they touched,
//! which powers the paper's sublinearity experiment (F5 in DESIGN.md).

use modb_geom::Aabb3;

/// Maximum entries per node (R\*-tree `M`).
const MAX_ENTRIES: usize = 16;
/// Minimum entries per node after a split (R\*-tree `m ≈ 40 % · M`).
const MIN_ENTRIES: usize = 6;

/// Statistics from a single search, for the sublinearity experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Internal + leaf nodes visited.
    pub nodes_visited: usize,
    /// Leaf entries whose boxes were tested.
    pub entries_tested: usize,
    /// Entries that matched the query box.
    pub matches: usize,
}

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<(Aabb3, T)>),
    Internal(Vec<(Aabb3, Box<Node<T>>)>),
}

impl<T> Node<T> {
    fn bbox(&self) -> Aabb3 {
        match self {
            Node::Leaf(es) => es.iter().fold(Aabb3::empty(), |a, (b, _)| a.union(b)),
            Node::Internal(cs) => cs.iter().fold(Aabb3::empty(), |a, (b, _)| a.union(b)),
        }
    }

    fn len(&self) -> usize {
        match self {
            Node::Leaf(es) => es.len(),
            Node::Internal(cs) => cs.len(),
        }
    }
}

/// An R\*-tree mapping 3-D boxes to values of type `T`.
///
/// `T` is typically a small id (`u64`); duplicate values under different
/// boxes are allowed (an o-plane is many boxes sharing one object id).
///
/// ```
/// use modb_geom::Aabb3;
/// use modb_index::RStarTree;
/// let mut tree = RStarTree::new();
/// tree.insert(Aabb3::new([0.0, 0.0, 0.0], [1.0, 1.0, 1.0]), 7u64);
/// tree.insert(Aabb3::new([5.0, 5.0, 5.0], [6.0, 6.0, 6.0]), 8u64);
/// let hits = tree.query_intersecting(&Aabb3::new([0.5; 3], [0.6; 3]));
/// assert_eq!(hits, vec![7]);
/// ```
#[derive(Debug, Clone)]
pub struct RStarTree<T> {
    root: Node<T>,
    size: usize,
}

impl<T: Clone + PartialEq> Default for RStarTree<T> {
    fn default() -> Self {
        RStarTree::new()
    }
}

impl<T: Clone + PartialEq> RStarTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RStarTree {
            root: Node::Leaf(Vec::new()),
            size: 0,
        }
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.size
    }

    /// `true` when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Bounding box of everything in the tree (empty box when empty).
    pub fn bbox(&self) -> Aabb3 {
        self.root.bbox()
    }

    /// Tree height (a single leaf level is height 1).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal(cs) = node {
            h += 1;
            node = &cs[0].1;
        }
        h
    }

    /// Total node count (for space accounting in experiments).
    pub fn node_count(&self) -> usize {
        fn count<T>(n: &Node<T>) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Internal(cs) => 1 + cs.iter().map(|(_, c)| count(c)).sum::<usize>(),
            }
        }
        count(&self.root)
    }

    /// Inserts a (box, value) entry. Degenerate (zero-volume) boxes are
    /// fine — a query region at a single time instant is one.
    pub fn insert(&mut self, bbox: Aabb3, value: T) {
        debug_assert!(!bbox.is_empty(), "cannot index an empty box");
        if let Some((left_box, right)) = Self::insert_rec(&mut self.root, bbox, value) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            self.root = Node::Internal(vec![
                (left_box, Box::new(old_root)),
                (right.bbox(), Box::new(right)),
            ]);
        }
        self.size += 1;
    }

    /// Recursive insert; returns `Some((this_node_new_bbox, sibling))`
    /// when this node split.
    fn insert_rec(node: &mut Node<T>, bbox: Aabb3, value: T) -> Option<(Aabb3, Node<T>)> {
        match node {
            Node::Leaf(entries) => {
                entries.push((bbox, value));
                if entries.len() > MAX_ENTRIES {
                    let (left, right) = split_leaf(std::mem::take(entries));
                    *entries = left;
                    let this_box = entries.iter().fold(Aabb3::empty(), |a, (b, _)| a.union(b));
                    return Some((this_box, Node::Leaf(right)));
                }
                None
            }
            Node::Internal(children) => {
                let at_leaf_level = matches!(&*children[0].1, Node::Leaf(_));
                let idx = choose_subtree(children, &bbox, at_leaf_level);
                let split = Self::insert_rec(&mut children[idx].1, bbox, value);
                match split {
                    None => {
                        children[idx].0 = children[idx].0.union(&bbox);
                        None
                    }
                    Some((new_child_box, sibling)) => {
                        children[idx].0 = new_child_box;
                        children.push((sibling.bbox(), Box::new(sibling)));
                        if children.len() > MAX_ENTRIES {
                            let (left, right) = split_internal(std::mem::take(children));
                            *children = left;
                            let this_box =
                                children.iter().fold(Aabb3::empty(), |a, (b, _)| a.union(b));
                            return Some((this_box, Node::Internal(right)));
                        }
                        None
                    }
                }
            }
        }
    }

    /// Removes one entry matching `(bbox, value)` exactly. Returns `true`
    /// when an entry was removed.
    pub fn remove(&mut self, bbox: &Aabb3, value: &T) -> bool {
        let mut orphans: Vec<(Aabb3, T)> = Vec::new();
        let removed = Self::remove_rec(&mut self.root, bbox, value, &mut orphans);
        if removed {
            self.size -= 1;
            // Collapse a root with a single internal child.
            loop {
                let replace = match &mut self.root {
                    Node::Internal(cs) if cs.len() == 1 => Some(*cs.pop().unwrap().1),
                    _ => None,
                };
                match replace {
                    Some(child) => self.root = child,
                    None => break,
                }
            }
            // Reinsert entries from condensed nodes.
            let n_orphans = orphans.len();
            for (b, v) in orphans {
                self.insert(b, v);
            }
            self.size -= n_orphans; // insert() counted them again
        }
        removed
    }

    /// Recursive delete with condensation: underfull nodes dissolve into
    /// `orphans`. Returns whether the entry was found.
    fn remove_rec(
        node: &mut Node<T>,
        bbox: &Aabb3,
        value: &T,
        orphans: &mut Vec<(Aabb3, T)>,
    ) -> bool {
        match node {
            Node::Leaf(entries) => {
                if let Some(pos) = entries.iter().position(|(b, v)| b == bbox && v == value) {
                    entries.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
            Node::Internal(children) => {
                let mut found_at = None;
                for (i, (cb, child)) in children.iter_mut().enumerate() {
                    // A node's box is the union of its descendants', so any
                    // ancestor of the exact entry *contains* its box —
                    // descending merely intersecting children would search
                    // every overlapping subtree.
                    if cb.contains(bbox) && Self::remove_rec(child, bbox, value, orphans) {
                        found_at = Some(i);
                        break;
                    }
                }
                let Some(i) = found_at else { return false };
                if children[i].1.len() < MIN_ENTRIES {
                    // Condense: dissolve the underfull child.
                    let (_, child) = children.swap_remove(i);
                    collect_entries(*child, orphans);
                } else {
                    children[i].0 = children[i].1.bbox();
                }
                true
            }
        }
    }

    /// Replaces the box of one `(old, value)` entry with `new`. When `new`
    /// fits inside every node box on the entry's path, the entry is
    /// rewritten in place — a single descent with no condensation, no
    /// split, and no ancestor-box updates, which is the common case for
    /// the §4.2 maintenance step (an object's refreshed o-plane largely
    /// overlaps its old one). Otherwise falls back to remove+insert.
    /// Returns `false` (and changes nothing) when no `(old, value)` entry
    /// exists.
    ///
    /// Node boxes are left as-is on the in-place path, so they may cover
    /// the removed `old` box a while longer — bounding boxes stay valid
    /// covers, queries just prune marginally less until the region is
    /// next restructured.
    pub fn update(&mut self, old: &Aabb3, new: Aabb3, value: &T) -> bool {
        if Self::update_rec(&mut self.root, old, &new, value) {
            return true;
        }
        if self.remove(old, value) {
            self.insert(new, value.clone());
            return true;
        }
        false
    }

    /// In-place box rewrite: succeeds only along paths whose node boxes
    /// contain both the old and the new box.
    fn update_rec(node: &mut Node<T>, old: &Aabb3, new: &Aabb3, value: &T) -> bool {
        match node {
            Node::Leaf(entries) => {
                if let Some(pos) = entries.iter().position(|(b, v)| b == old && v == value) {
                    entries[pos].0 = *new;
                    true
                } else {
                    false
                }
            }
            Node::Internal(children) => {
                for (cb, child) in children.iter_mut() {
                    if cb.contains(old)
                        && cb.contains(new)
                        && Self::update_rec(child, old, new, value)
                    {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// All values whose boxes intersect `query` (duplicates possible when
    /// one value was inserted under several intersecting boxes).
    pub fn query_intersecting(&self, query: &Aabb3) -> Vec<T> {
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        Self::search_rec(&self.root, query, &mut |v| out.push(v.clone()), &mut stats);
        out
    }

    /// Like [`RStarTree::query_intersecting`] but also reports search
    /// statistics.
    pub fn query_with_stats(&self, query: &Aabb3) -> (Vec<T>, SearchStats) {
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        Self::search_rec(&self.root, query, &mut |v| out.push(v.clone()), &mut stats);
        (out, stats)
    }

    /// Visits every value whose box intersects `query` without allocating
    /// a result vector.
    pub fn for_each_intersecting<F: FnMut(&T)>(&self, query: &Aabb3, mut f: F) {
        let mut stats = SearchStats::default();
        Self::search_rec(&self.root, query, &mut f, &mut stats);
    }

    /// Like [`RStarTree::for_each_intersecting`], returning the search
    /// statistics — the allocation-free analogue of
    /// [`RStarTree::query_with_stats`].
    pub fn for_each_with_stats<F: FnMut(&T)>(&self, query: &Aabb3, mut f: F) -> SearchStats {
        let mut stats = SearchStats::default();
        Self::search_rec(&self.root, query, &mut f, &mut stats);
        stats
    }

    fn search_rec<F: FnMut(&T)>(node: &Node<T>, query: &Aabb3, f: &mut F, stats: &mut SearchStats) {
        stats.nodes_visited += 1;
        match node {
            Node::Leaf(entries) => {
                for (b, v) in entries {
                    stats.entries_tested += 1;
                    if b.intersects(query) {
                        stats.matches += 1;
                        f(v);
                    }
                }
            }
            Node::Internal(children) => {
                for (b, child) in children {
                    if b.intersects(query) {
                        Self::search_rec(child, query, f, stats);
                    }
                }
            }
        }
    }

    /// Bulk-loads entries with the Sort-Tile-Recursive (STR) packing
    /// algorithm — much faster and better-packed than repeated inserts for
    /// an initial fleet load.
    pub fn bulk_load(mut entries: Vec<(Aabb3, T)>) -> Self {
        let size = entries.len();
        if size == 0 {
            return RStarTree::new();
        }
        // STR: sort by x-center, slice into vertical slabs; within each,
        // sort by y-center, slice; within each, sort by t-center and pack
        // leaves of MAX_ENTRIES.
        let n_leaves = size.div_ceil(MAX_ENTRIES);
        let s = (n_leaves as f64).powf(1.0 / 3.0).ceil() as usize;
        let slab_x = s * s * MAX_ENTRIES;
        let slab_y = s * MAX_ENTRIES;
        entries.sort_by(|a, b| {
            a.0.center()[0]
                .partial_cmp(&b.0.center()[0])
                .expect("finite centers")
        });
        let mut leaves: Vec<Node<T>> = Vec::with_capacity(n_leaves);
        for xs in entries.chunks_mut(slab_x.max(1)) {
            xs.sort_by(|a, b| {
                a.0.center()[1]
                    .partial_cmp(&b.0.center()[1])
                    .expect("finite centers")
            });
            for ys in xs.chunks_mut(slab_y.max(1)) {
                ys.sort_by(|a, b| {
                    a.0.center()[2]
                        .partial_cmp(&b.0.center()[2])
                        .expect("finite centers")
                });
                for chunk in ys.chunks(MAX_ENTRIES) {
                    leaves.push(Node::Leaf(chunk.to_vec()));
                }
            }
        }
        // Pack upper levels until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<Node<T>> = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            let mut batch: Vec<(Aabb3, Box<Node<T>>)> = Vec::with_capacity(MAX_ENTRIES);
            for node in level {
                batch.push((node.bbox(), Box::new(node)));
                if batch.len() == MAX_ENTRIES {
                    next.push(Node::Internal(std::mem::take(&mut batch)));
                }
            }
            if !batch.is_empty() {
                next.push(Node::Internal(batch));
            }
            level = next;
        }
        RStarTree {
            root: level.pop().expect("at least one node"),
            size,
        }
    }
}

fn collect_entries<T>(node: Node<T>, out: &mut Vec<(Aabb3, T)>) {
    match node {
        Node::Leaf(es) => out.extend(es),
        Node::Internal(cs) => {
            for (_, c) in cs {
                collect_entries(*c, out);
            }
        }
    }
}

/// R\* choose-subtree: at the level above leaves minimise overlap
/// enlargement (ties: volume enlargement, then volume); higher up minimise
/// volume enlargement (ties: volume).
fn choose_subtree<T>(
    children: &[(Aabb3, Box<Node<T>>)],
    bbox: &Aabb3,
    at_leaf_level: bool,
) -> usize {
    let mut best = 0;
    let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for (i, (cb, _)) in children.iter().enumerate() {
        let enlarged = cb.union(bbox);
        let vol_enl = enlarged.volume() - cb.volume();
        let key = if at_leaf_level {
            let overlap_before: f64 = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, (ob, _))| cb.intersection_volume(ob))
                .sum();
            let overlap_after: f64 = children
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, (ob, _))| enlarged.intersection_volume(ob))
                .sum();
            (overlap_after - overlap_before, vol_enl, cb.volume())
        } else {
            (vol_enl, cb.volume(), 0.0)
        };
        if key < best_key {
            best_key = key;
            best = i;
        }
    }
    best
}

/// R\* split over generic entries with a bbox accessor.
fn rstar_split<E>(mut entries: Vec<E>, bbox_of: impl Fn(&E) -> Aabb3) -> (Vec<E>, Vec<E>) {
    debug_assert!(entries.len() > MAX_ENTRIES);
    // 1. Choose the split axis: for each axis, sort by (min, max) and sum
    //    the margins of every legal distribution; pick the axis with the
    //    smallest total margin.
    let mut best_axis = 0;
    let mut best_margin = f64::INFINITY;
    for axis in 0..3 {
        entries.sort_by(|a, b| {
            let ba = bbox_of(a);
            let bb = bbox_of(b);
            (ba.min[axis], ba.max[axis])
                .partial_cmp(&(bb.min[axis], bb.max[axis]))
                .expect("finite boxes")
        });
        let mut margin_sum = 0.0;
        for k in MIN_ENTRIES..=(entries.len() - MIN_ENTRIES) {
            let left = entries[..k]
                .iter()
                .fold(Aabb3::empty(), |a, e| a.union(&bbox_of(e)));
            let right = entries[k..]
                .iter()
                .fold(Aabb3::empty(), |a, e| a.union(&bbox_of(e)));
            margin_sum += left.margin() + right.margin();
        }
        if margin_sum < best_margin {
            best_margin = margin_sum;
            best_axis = axis;
        }
    }
    // 2. Along the chosen axis, pick the distribution with minimum
    //    overlap (ties: minimum total volume).
    entries.sort_by(|a, b| {
        let ba = bbox_of(a);
        let bb = bbox_of(b);
        (ba.min[best_axis], ba.max[best_axis])
            .partial_cmp(&(bb.min[best_axis], bb.max[best_axis]))
            .expect("finite boxes")
    });
    let mut best_k = MIN_ENTRIES;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for k in MIN_ENTRIES..=(entries.len() - MIN_ENTRIES) {
        let left = entries[..k]
            .iter()
            .fold(Aabb3::empty(), |a, e| a.union(&bbox_of(e)));
        let right = entries[k..]
            .iter()
            .fold(Aabb3::empty(), |a, e| a.union(&bbox_of(e)));
        let key = (
            left.intersection_volume(&right),
            left.volume() + right.volume(),
        );
        if key < best_key {
            best_key = key;
            best_k = k;
        }
    }
    let right = entries.split_off(best_k);
    (entries, right)
}

/// A leaf's entry list, split in two.
type LeafSplit<T> = (Vec<(Aabb3, T)>, Vec<(Aabb3, T)>);
/// An internal node's child list, split in two.
type InternalSplit<T> = (Vec<(Aabb3, Box<Node<T>>)>, Vec<(Aabb3, Box<Node<T>>)>);

fn split_leaf<T>(entries: Vec<(Aabb3, T)>) -> LeafSplit<T> {
    rstar_split(entries, |e| e.0)
}

fn split_internal<T>(children: Vec<(Aabb3, Box<Node<T>>)>) -> InternalSplit<T> {
    rstar_split(children, |e| e.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(x: f64, y: f64, t: f64, s: f64) -> Aabb3 {
        Aabb3::new([x, y, t], [x + s, y + s, t + s])
    }

    #[test]
    fn empty_tree() {
        let t: RStarTree<u64> = RStarTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.height(), 1);
        assert!(t.query_intersecting(&cube(0.0, 0.0, 0.0, 1.0)).is_empty());
        assert!(t.bbox().is_empty());
    }

    #[test]
    fn insert_and_query_small() {
        let mut t = RStarTree::new();
        t.insert(cube(0.0, 0.0, 0.0, 1.0), 1u64);
        t.insert(cube(5.0, 5.0, 5.0, 1.0), 2);
        t.insert(cube(0.5, 0.5, 0.5, 1.0), 3);
        assert_eq!(t.len(), 3);
        let mut hits = t.query_intersecting(&cube(0.0, 0.0, 0.0, 2.0));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 3]);
        assert!(t
            .query_intersecting(&cube(100.0, 100.0, 100.0, 1.0))
            .is_empty());
    }

    #[test]
    fn grows_and_splits_correctly() {
        let mut t = RStarTree::new();
        let n = 500usize;
        for i in 0..n {
            let f = i as f64;
            t.insert(cube(f % 25.0, (f / 25.0) % 25.0, f / 625.0, 0.5), i as u64);
        }
        assert_eq!(t.len(), n);
        assert!(t.height() > 1, "tree should have split");
        // Every entry is findable through a query at its location.
        for i in 0..n {
            let f = i as f64;
            let q = cube(f % 25.0, (f / 25.0) % 25.0, f / 625.0, 0.5);
            assert!(
                t.query_intersecting(&q).contains(&(i as u64)),
                "entry {i} lost"
            );
        }
    }

    /// Brute-force cross-check on a pseudo-random workload.
    #[test]
    fn matches_brute_force() {
        let mut t = RStarTree::new();
        let mut reference: Vec<(Aabb3, u64)> = Vec::new();
        // Deterministic pseudo-random placement (LCG).
        let mut state: u64 = 0x2545F4914F6CDD1D;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 100.0
        };
        for i in 0..800u64 {
            let b = cube(next(), next(), next(), 1.0 + next() / 50.0);
            t.insert(b, i);
            reference.push((b, i));
        }
        for _ in 0..50 {
            let q = cube(next(), next(), next(), 10.0);
            let mut got = t.query_intersecting(&q);
            got.sort_unstable();
            let mut want: Vec<u64> = reference
                .iter()
                .filter(|(b, _)| b.intersects(&q))
                .map(|(_, v)| *v)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn remove_entries() {
        let mut t = RStarTree::new();
        let boxes: Vec<Aabb3> = (0..200)
            .map(|i| {
                let f = i as f64;
                cube(f % 20.0, f / 20.0, 0.0, 0.9)
            })
            .collect();
        for (i, b) in boxes.iter().enumerate() {
            t.insert(*b, i as u64);
        }
        // Remove every third entry.
        for (i, b) in boxes.iter().enumerate() {
            if i % 3 == 0 {
                assert!(t.remove(b, &(i as u64)), "remove {i}");
            }
        }
        assert_eq!(t.len(), 200 - 67);
        // Removed entries are gone; kept entries remain findable.
        for (i, b) in boxes.iter().enumerate() {
            let hits = t.query_intersecting(b);
            if i % 3 == 0 {
                assert!(!hits.contains(&(i as u64)), "entry {i} should be gone");
            } else {
                assert!(hits.contains(&(i as u64)), "entry {i} should remain");
            }
        }
        // Removing a non-existent entry is a no-op returning false.
        assert!(!t.remove(&boxes[0], &0));
    }

    #[test]
    fn remove_down_to_empty() {
        let mut t = RStarTree::new();
        let boxes: Vec<Aabb3> = (0..100).map(|i| cube(i as f64, 0.0, 0.0, 0.5)).collect();
        for (i, b) in boxes.iter().enumerate() {
            t.insert(*b, i as u64);
        }
        for (i, b) in boxes.iter().enumerate() {
            assert!(t.remove(b, &(i as u64)));
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn duplicate_values_under_different_boxes() {
        let mut t = RStarTree::new();
        t.insert(cube(0.0, 0.0, 0.0, 1.0), 7u64);
        t.insert(cube(10.0, 0.0, 0.0, 1.0), 7);
        let hits = t.query_intersecting(&Aabb3::new([-1.0, -1.0, -1.0], [12.0, 2.0, 2.0]));
        assert_eq!(hits, vec![7, 7]);
        // Remove only the first instance.
        assert!(t.remove(&cube(0.0, 0.0, 0.0, 1.0), &7));
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.query_intersecting(&Aabb3::new([-1.0, -1.0, -1.0], [12.0, 2.0, 2.0])),
            vec![7]
        );
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let entries: Vec<(Aabb3, u64)> = (0..1000)
            .map(|i| {
                let f = i as f64;
                (cube(f % 31.0, (f * 0.7) % 29.0, (f * 0.3) % 23.0, 1.0), i)
            })
            .collect();
        let bulk = RStarTree::bulk_load(entries.clone());
        let mut incr = RStarTree::new();
        for (b, v) in &entries {
            incr.insert(*b, *v);
        }
        assert_eq!(bulk.len(), incr.len());
        let q = cube(5.0, 5.0, 5.0, 8.0);
        let mut a = bulk.query_intersecting(&q);
        let mut b = incr.query_intersecting(&q);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // STR packing should be at least as shallow as incremental.
        assert!(bulk.height() <= incr.height());
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let t: RStarTree<u64> = RStarTree::bulk_load(Vec::new());
        assert!(t.is_empty());
        let t = RStarTree::bulk_load(vec![(cube(0.0, 0.0, 0.0, 1.0), 9u64)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query_intersecting(&cube(0.5, 0.5, 0.5, 0.1)), vec![9]);
    }

    /// Search touches far fewer nodes than the tree holds — the index is
    /// doing its job.
    #[test]
    fn search_is_selective() {
        let mut t = RStarTree::new();
        for i in 0..5000u64 {
            let f = i as f64;
            t.insert(cube(f % 71.0, (f * 0.61) % 67.0, (f * 0.37) % 59.0, 0.5), i);
        }
        let (hits, stats) = t.query_with_stats(&cube(10.0, 10.0, 10.0, 2.0));
        assert_eq!(stats.matches, hits.len());
        assert!(
            stats.nodes_visited < t.node_count() / 4,
            "visited {} of {} nodes",
            stats.nodes_visited,
            t.node_count()
        );
    }

    #[test]
    fn for_each_visits_all_matches() {
        let mut t = RStarTree::new();
        for i in 0..100u64 {
            t.insert(cube(i as f64, 0.0, 0.0, 0.5), i);
        }
        let mut n = 0;
        t.for_each_intersecting(&Aabb3::new([0.0, 0.0, 0.0], [9.9, 1.0, 1.0]), |_| n += 1);
        assert_eq!(n, 10);
    }
}
