//! Time-space query regions (§4.1.2).
//!
//! The query "retrieve the objects which are inside polygon G at time t₀"
//! is represented by `R_G(t₀)`: the polygon G lifted to the plane `t = t₀`
//! in (x, y, t) space. Theorem 5: an object *may* be in G at `t₀` iff
//! `R_G(t₀)` intersects its o-plane; Theorem 6 adds the *must* condition.
//! A time-interval extension (`R_G([t0, t1])`) supports "during" queries.

use modb_geom::{Aabb3, Point, Polygon};

/// The geometric form of a range query on position attributes.
#[derive(Debug, Clone)]
pub struct QueryRegion {
    polygon: Polygon,
    t0: f64,
    t1: f64,
}

impl QueryRegion {
    /// `R_G(t₀)`: polygon `G` at the single instant `t₀` — the paper's
    /// query form. `t₀` may be the current time or a future time.
    pub fn at_instant(polygon: Polygon, t0: f64) -> Self {
        QueryRegion {
            polygon,
            t0,
            t1: t0,
        }
    }

    /// Polygon `G` over the closed time interval `[t0, t1]` (an extension:
    /// "which objects are in G at any time during the interval"). The
    /// interval is normalised.
    pub fn during(polygon: Polygon, t0: f64, t1: f64) -> Self {
        QueryRegion {
            polygon,
            t0: t0.min(t1),
            t1: t0.max(t1),
        }
    }

    /// The query polygon `G`.
    #[inline]
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// Query start time.
    #[inline]
    pub fn t0(&self) -> f64 {
        self.t0
    }

    /// Query end time (equals [`QueryRegion::t0`] for instant queries).
    #[inline]
    pub fn t1(&self) -> f64 {
        self.t1
    }

    /// Returns `true` for a single-instant region.
    #[inline]
    pub fn is_instant(&self) -> bool {
        self.t0 == self.t1
    }

    /// The 3-D box enclosing the region — what is handed to the R\*-tree.
    pub fn aabb(&self) -> Aabb3 {
        Aabb3::from_rect_time(&self.polygon.bbox(), self.t0, self.t1)
    }

    /// Time instants at which exact refinement should evaluate uncertainty
    /// intervals: the endpoints plus interior samples every
    /// `sample_dt` minutes for interval queries.
    pub fn refinement_times(&self, sample_dt: f64) -> Vec<f64> {
        if self.is_instant() {
            return vec![self.t0];
        }
        let dt = if sample_dt.is_finite() && sample_dt > 0.0 {
            sample_dt
        } else {
            self.t1 - self.t0
        };
        let mut ts = Vec::new();
        let mut t = self.t0;
        while t < self.t1 {
            ts.push(t);
            t += dt;
        }
        ts.push(self.t1);
        ts
    }
}

/// Convenience: a "within `radius` miles of `center`" query region (the
/// paper's taxi-cab example), as a 32-gon at instant `t0`.
pub fn within_radius(center: Point, radius: f64, t0: f64) -> Option<QueryRegion> {
    if !radius.is_finite() || radius <= 0.0 {
        return None;
    }
    Polygon::regular(center, radius, 32)
        .ok()
        .map(|g| QueryRegion::at_instant(g, t0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_geom::Rect;

    fn square() -> Polygon {
        Polygon::rectangle(&Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0))).unwrap()
    }

    #[test]
    fn instant_region() {
        let q = QueryRegion::at_instant(square(), 5.0);
        assert!(q.is_instant());
        assert_eq!(q.t0(), 5.0);
        assert_eq!(q.t1(), 5.0);
        let b = q.aabb();
        assert_eq!(b.min, [0.0, 0.0, 5.0]);
        assert_eq!(b.max, [2.0, 2.0, 5.0]);
        assert_eq!(q.refinement_times(0.1), vec![5.0]);
    }

    #[test]
    fn during_region_normalises_and_samples() {
        let q = QueryRegion::during(square(), 8.0, 6.0);
        assert_eq!((q.t0(), q.t1()), (6.0, 8.0));
        assert!(!q.is_instant());
        let ts = q.refinement_times(1.0);
        assert_eq!(ts, vec![6.0, 7.0, 8.0]);
        // Degenerate sample step falls back to endpoints.
        let ts = q.refinement_times(0.0);
        assert_eq!(ts, vec![6.0, 8.0]);
    }

    #[test]
    fn within_radius_region() {
        let q = within_radius(Point::new(3.0, 3.0), 1.0, 2.0).unwrap();
        assert!(q.polygon().contains_point(Point::new(3.0, 3.0)));
        assert!(!q.polygon().contains_point(Point::new(4.5, 3.0)));
        assert_eq!(q.t0(), 2.0);
        assert!(within_radius(Point::new(0.0, 0.0), -1.0, 0.0).is_none());
    }
}
