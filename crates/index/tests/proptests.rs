//! Property-based tests: the R\*-tree against a brute-force oracle, and
//! o-plane coverage under random parameters.

use modb_geom::{Aabb3, Point};
use modb_index::{OPlane, RStarTree};
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId};
use proptest::prelude::*;

fn boxes(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(Aabb3, u64)>> {
    proptest::collection::vec(
        (
            0.0f64..100.0,
            0.0f64..100.0,
            0.0f64..100.0,
            0.1f64..8.0,
            0.1f64..8.0,
            0.1f64..8.0,
        ),
        n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, t, w, h, d))| (Aabb3::new([x, y, t], [x + w, y + h, t + d]), i as u64))
            .collect()
    })
}

fn query_box() -> impl Strategy<Value = Aabb3> {
    (
        0.0f64..100.0,
        0.0f64..100.0,
        0.0f64..100.0,
        1.0f64..30.0,
        1.0f64..30.0,
        1.0f64..30.0,
    )
        .prop_map(|(x, y, t, w, h, d)| Aabb3::new([x, y, t], [x + w, y + h, t + d]))
}

fn brute_force(entries: &[(Aabb3, u64)], q: &Aabb3) -> Vec<u64> {
    let mut v: Vec<u64> = entries
        .iter()
        .filter(|(b, _)| b.intersects(q))
        .map(|(_, id)| *id)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental inserts answer exactly like the brute-force oracle.
    #[test]
    fn rtree_matches_oracle(entries in boxes(1..300), q in query_box()) {
        let mut tree = RStarTree::new();
        for (b, id) in &entries {
            tree.insert(*b, *id);
        }
        prop_assert_eq!(tree.len(), entries.len());
        let mut got = tree.query_intersecting(&q);
        got.sort_unstable();
        prop_assert_eq!(got, brute_force(&entries, &q));
    }

    /// Bulk loading answers exactly like incremental insertion.
    #[test]
    fn bulk_load_matches_oracle(entries in boxes(1..300), q in query_box()) {
        let tree = RStarTree::bulk_load(entries.clone());
        prop_assert_eq!(tree.len(), entries.len());
        let mut got = tree.query_intersecting(&q);
        got.sort_unstable();
        prop_assert_eq!(got, brute_force(&entries, &q));
    }

    /// After deleting a random subset, queries see exactly the survivors.
    #[test]
    fn remove_keeps_oracle_in_sync(entries in boxes(2..200),
                                   removal_mask in proptest::collection::vec(any::<bool>(), 2..200),
                                   q in query_box()) {
        let mut tree = RStarTree::new();
        for (b, id) in &entries {
            tree.insert(*b, *id);
        }
        let mut survivors = Vec::new();
        for (i, (b, id)) in entries.iter().enumerate() {
            if removal_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(tree.remove(b, id), "entry {id} must be removable");
            } else {
                survivors.push((*b, *id));
            }
        }
        prop_assert_eq!(tree.len(), survivors.len());
        let mut got = tree.query_intersecting(&q);
        got.sort_unstable();
        prop_assert_eq!(got, brute_force(&survivors, &q));
    }

    /// O-plane slab boxes cover the exact uncertainty interval at every
    /// sampled time, for random speeds, costs, and directions.
    #[test]
    fn oplane_boxes_cover(speed in 0.0f64..2.0,
                          headroom in 0.0f64..1.0,
                          c in 0.5f64..20.0,
                          start_arc in 0.0f64..100.0,
                          backward in any::<bool>(),
                          immediate in any::<bool>(),
                          slab in 0.5f64..10.0) {
        let route = Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(60.0, 40.0), Point::new(120.0, 0.0)],
        ).unwrap();
        let plane = OPlane::new(
            RouteId(1),
            start_arc.min(route.length()),
            if backward { Direction::Backward } else { Direction::Forward },
            speed,
            speed + headroom,
            c,
            if immediate { BoundKind::Immediate } else { BoundKind::Delayed },
            0.0,
            30.0,
        ).unwrap();
        let bxs = plane.to_boxes(&route, slab).unwrap();
        prop_assert!(!bxs.is_empty());
        let mut t = 0.0;
        while t <= 30.0 {
            let (lo, hi) = plane.arc_interval(route.length(), t);
            for frac in [0.0, 0.5, 1.0] {
                let arc = lo + frac * (hi - lo);
                let p = route.point_at(arc);
                prop_assert!(
                    bxs.iter().any(|b| b.contains_point([p.x, p.y, t])),
                    "uncovered arc {arc} at t={t}"
                );
            }
            t += 1.37;
        }
    }
}
