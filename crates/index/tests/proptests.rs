//! Property-based tests: the R\*-tree against a brute-force oracle, and
//! o-plane coverage under random parameters.

use modb_geom::{Aabb3, Point, Polygon, Rect};
use modb_index::{BandConfig, MovingObjectIndex, OPlane, QueryRegion, RStarTree};
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId};
use proptest::prelude::*;

fn boxes(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<(Aabb3, u64)>> {
    proptest::collection::vec(
        (
            0.0f64..100.0,
            0.0f64..100.0,
            0.0f64..100.0,
            0.1f64..8.0,
            0.1f64..8.0,
            0.1f64..8.0,
        ),
        n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (x, y, t, w, h, d))| (Aabb3::new([x, y, t], [x + w, y + h, t + d]), i as u64))
            .collect()
    })
}

fn query_box() -> impl Strategy<Value = Aabb3> {
    (
        0.0f64..100.0,
        0.0f64..100.0,
        0.0f64..100.0,
        1.0f64..30.0,
        1.0f64..30.0,
        1.0f64..30.0,
    )
        .prop_map(|(x, y, t, w, h, d)| Aabb3::new([x, y, t], [x + w, y + h, t + d]))
}

/// One moving object's trip parameters, as drawn by the fleet strategy.
#[derive(Clone, Debug)]
struct Mover {
    start_arc: f64,
    t0: f64,
    speed: f64,
    max_speed: f64,
    backward: bool,
    immediate: bool,
}

const TRIP_MINUTES: f64 = 40.0;

fn band_route() -> Route {
    Route::from_vertices(
        RouteId(1),
        "r",
        vec![
            Point::new(0.0, 0.0),
            Point::new(60.0, 40.0),
            Point::new(120.0, 0.0),
        ],
    )
    .unwrap()
}

fn mover_plane(m: &Mover, route_len: f64) -> OPlane {
    OPlane::new(
        RouteId(1),
        m.start_arc.min(route_len),
        if m.backward {
            Direction::Backward
        } else {
            Direction::Forward
        },
        m.speed.min(m.max_speed),
        m.max_speed,
        5.0,
        if m.immediate {
            BoundKind::Immediate
        } else {
            BoundKind::Delayed
        },
        m.t0,
        m.t0 + TRIP_MINUTES,
    )
    .unwrap()
}

fn fleet(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Mover>> {
    proptest::collection::vec(
        (
            0.0f64..140.0,
            0.0f64..10.0,
            0.05f64..2.0,
            0.0f64..1.5,
            any::<bool>(),
            any::<bool>(),
        ),
        n,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(
                |(start_arc, t0, speed, headroom, backward, immediate)| Mover {
                    start_arc,
                    t0,
                    speed,
                    max_speed: speed + headroom,
                    backward,
                    immediate,
                },
            )
            .collect()
    })
}

/// 1–3 strictly ascending positive band edges drawn from speed gaps.
fn band_edges() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.1f64..1.2, 1..=3).prop_map(|gaps| {
        let mut acc = 0.0;
        gaps.into_iter()
            .map(|g| {
                acc += g;
                acc
            })
            .collect()
    })
}

fn rect_region() -> impl Strategy<Value = (QueryRegion, f64, f64)> {
    (
        -10.0f64..110.0,
        -10.0f64..50.0,
        2.0f64..60.0,
        2.0f64..40.0,
        0.0f64..40.0,
        0.0f64..15.0,
    )
        .prop_map(|(x0, y0, w, h, t0, dt)| {
            let g = Polygon::rectangle(&Rect::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h)))
                .unwrap();
            (QueryRegion::during(g, t0, t0 + dt), t0, t0 + dt)
        })
}

fn sorted_candidates(idx: &MovingObjectIndex<u64>, q: &QueryRegion) -> Vec<u64> {
    let mut c = idx.candidates(q);
    c.sort_unstable();
    c
}

fn brute_force(entries: &[(Aabb3, u64)], q: &Aabb3) -> Vec<u64> {
    let mut v: Vec<u64> = entries
        .iter()
        .filter(|(b, _)| b.intersects(q))
        .map(|(_, id)| *id)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental inserts answer exactly like the brute-force oracle.
    #[test]
    fn rtree_matches_oracle(entries in boxes(1..300), q in query_box()) {
        let mut tree = RStarTree::new();
        for (b, id) in &entries {
            tree.insert(*b, *id);
        }
        prop_assert_eq!(tree.len(), entries.len());
        let mut got = tree.query_intersecting(&q);
        got.sort_unstable();
        prop_assert_eq!(got, brute_force(&entries, &q));
    }

    /// Bulk loading answers exactly like incremental insertion.
    #[test]
    fn bulk_load_matches_oracle(entries in boxes(1..300), q in query_box()) {
        let tree = RStarTree::bulk_load(entries.clone());
        prop_assert_eq!(tree.len(), entries.len());
        let mut got = tree.query_intersecting(&q);
        got.sort_unstable();
        prop_assert_eq!(got, brute_force(&entries, &q));
    }

    /// After deleting a random subset, queries see exactly the survivors.
    #[test]
    fn remove_keeps_oracle_in_sync(entries in boxes(2..200),
                                   removal_mask in proptest::collection::vec(any::<bool>(), 2..200),
                                   q in query_box()) {
        let mut tree = RStarTree::new();
        for (b, id) in &entries {
            tree.insert(*b, *id);
        }
        let mut survivors = Vec::new();
        for (i, (b, id)) in entries.iter().enumerate() {
            if removal_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(tree.remove(b, id), "entry {id} must be removable");
            } else {
                survivors.push((*b, *id));
            }
        }
        prop_assert_eq!(tree.len(), survivors.len());
        let mut got = tree.query_intersecting(&q);
        got.sort_unstable();
        prop_assert_eq!(got, brute_force(&survivors, &q));
    }

    /// O-plane slab boxes cover the exact uncertainty interval at every
    /// sampled time, for random speeds, costs, and directions.
    #[test]
    fn oplane_boxes_cover(speed in 0.0f64..2.0,
                          headroom in 0.0f64..1.0,
                          c in 0.5f64..20.0,
                          start_arc in 0.0f64..100.0,
                          backward in any::<bool>(),
                          immediate in any::<bool>(),
                          slab in 0.5f64..10.0) {
        let route = Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(60.0, 40.0), Point::new(120.0, 0.0)],
        ).unwrap();
        let plane = OPlane::new(
            RouteId(1),
            start_arc.min(route.length()),
            if backward { Direction::Backward } else { Direction::Forward },
            speed,
            speed + headroom,
            c,
            if immediate { BoundKind::Immediate } else { BoundKind::Delayed },
            0.0,
            30.0,
        ).unwrap();
        let bxs = plane.to_boxes(&route, slab).unwrap();
        prop_assert!(!bxs.is_empty());
        let mut t = 0.0;
        while t <= 30.0 {
            let (lo, hi) = plane.arc_interval(route.length(), t);
            for frac in [0.0, 0.5, 1.0] {
                let arc = lo + frac * (hi - lo);
                let p = route.point_at(arc);
                prop_assert!(
                    bxs.iter().any(|b| b.contains_point([p.x, p.y, t])),
                    "uncovered arc {arc} at t={t}"
                );
            }
            t += 1.37;
        }
    }

    /// A banded index with uniform slab settings answers every query with
    /// exactly the single-tree candidate set — through initial upserts,
    /// max-speed revisions (band migrations), removals, and a shadow kept
    /// current via `sync_entry_from`.
    #[test]
    fn banded_uniform_matches_single_tree(
        movers in fleet(1..40),
        edges in band_edges(),
        (q, _, _) in rect_region(),
        slab in 1.0f64..8.0,
        revise_mask in proptest::collection::vec(any::<bool>(), 40),
        new_speeds in proptest::collection::vec(0.05f64..3.5, 40),
        remove_mask in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let route = band_route();
        let len = route.length();
        let cfg = BandConfig::uniform(&edges, slab).unwrap();
        let mut single: MovingObjectIndex<u64> =
            MovingObjectIndex::with_config(BandConfig::single(slab));
        let mut banded: MovingObjectIndex<u64> = MovingObjectIndex::with_config(cfg);

        for (i, m) in movers.iter().enumerate() {
            single.upsert(i as u64, mover_plane(m, len), &route).unwrap();
            banded.upsert(i as u64, mover_plane(m, len), &route).unwrap();
        }
        prop_assert_eq!(banded.len(), single.len());
        let partitioned: usize = banded.band_stats().iter().map(|b| b.entries).sum();
        prop_assert_eq!(partitioned, movers.len());
        prop_assert_eq!(sorted_candidates(&banded, &q), sorted_candidates(&single, &q));

        // The shadow starts as a clone and mirrors every later mutation
        // entry-by-entry, the way a replica applies a change log.
        let mut shadow = banded.clone();
        let mut touched: Vec<u64> = Vec::new();

        // Max-speed revisions: re-upsert with a new top speed, which may
        // move the object into a different band.
        let mut expect_migrations = 0u64;
        for (i, m) in movers.iter().enumerate() {
            if !revise_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let mut revised = m.clone();
            revised.max_speed = new_speeds[i];
            revised.speed = m.speed.min(revised.max_speed);
            if cfg.band_for(m.max_speed) != cfg.band_for(revised.max_speed) {
                expect_migrations += 1;
            }
            single.upsert(i as u64, mover_plane(&revised, len), &route).unwrap();
            banded.upsert(i as u64, mover_plane(&revised, len), &route).unwrap();
            touched.push(i as u64);
        }
        prop_assert_eq!(banded.migrations(), expect_migrations);
        prop_assert_eq!(sorted_candidates(&banded, &q), sorted_candidates(&single, &q));

        // Removals of a random subset.
        for (i, _) in movers.iter().enumerate() {
            if !remove_mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            prop_assert_eq!(banded.remove(&(i as u64)), single.remove(&(i as u64)));
            touched.push(i as u64);
        }
        prop_assert_eq!(banded.len(), single.len());
        prop_assert_eq!(sorted_candidates(&banded, &q), sorted_candidates(&single, &q));

        // Shadow catch-up must land every entry in the same band with the
        // same answers as its source.
        for key in &touched {
            shadow.sync_entry_from(&banded, key);
        }
        prop_assert_eq!(shadow.len(), banded.len());
        for key in &touched {
            prop_assert_eq!(shadow.band_of(key), banded.band_of(key));
        }
        let shadow_bands: Vec<usize> = shadow.band_stats().iter().map(|b| b.entries).collect();
        let banded_bands: Vec<usize> = banded.band_stats().iter().map(|b| b.entries).collect();
        prop_assert_eq!(shadow_bands, banded_bands);
        prop_assert_eq!(sorted_candidates(&shadow, &q), sorted_candidates(&banded, &q));
    }

    /// Speed-scaled bands (coarser slabs and bounded fine horizons per
    /// band) stay sound: every object whose true uncertainty region enters
    /// the query box is reported as a candidate.
    #[test]
    fn scaled_bands_stay_sound(
        movers in fleet(1..30),
        edges in band_edges(),
        (q, qt0, qt1) in rect_region(),
        slab in 1.0f64..8.0,
        horizon in 5.0f64..30.0,
    ) {
        let route = band_route();
        let len = route.length();
        let cfg = BandConfig::speed_scaled(&edges, slab)
            .unwrap()
            .with_band_horizon(edges.len(), horizon);
        let mut idx: MovingObjectIndex<u64> = MovingObjectIndex::with_config(cfg);
        for (i, m) in movers.iter().enumerate() {
            idx.upsert(i as u64, mover_plane(m, len), &route).unwrap();
        }
        let partitioned: usize = idx.band_stats().iter().map(|b| b.entries).sum();
        prop_assert_eq!(partitioned, movers.len());

        let cands = sorted_candidates(&idx, &q);
        let qbox = q.aabb();
        for (i, m) in movers.iter().enumerate() {
            if cands.binary_search(&(i as u64)).is_ok() {
                continue;
            }
            // Not a candidate: no sampled true position may fall in the box.
            let plane = mover_plane(m, len);
            let mut t = qt0.max(m.t0);
            let t_end = qt1.min(m.t0 + TRIP_MINUTES);
            while t <= t_end {
                let (lo, hi) = plane.arc_interval(len, t);
                for frac in [0.0, 0.5, 1.0] {
                    let p = route.point_at(lo + frac * (hi - lo));
                    prop_assert!(
                        !qbox.contains_point([p.x, p.y, t]),
                        "object {i} missed by banded index but inside query at t={t}"
                    );
                }
                t += 0.73;
            }
        }
    }
}
