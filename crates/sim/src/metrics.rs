//! Metrics collected from a simulation run (§3.4).
//!
//! The paper's evaluation computes, per (speed-curve, policy, update cost):
//! the total cost (a single number) and the average uncertainty (also a
//! single number), then averages over the speed curves. [`RunMetrics`] is
//! the per-run record; [`AggregateMetrics`] the average over a trip set.

/// Metrics from running one policy over one trip.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunMetrics {
    /// Position-update messages sent (excluding the trip-start write).
    pub messages: usize,
    /// Accumulated deviation cost `COST_d` (equation 1 for the uniform
    /// function).
    pub deviation_cost: f64,
    /// Total cost: `C · messages + deviation_cost` (equation 2 summed over
    /// the trip).
    pub total_cost: f64,
    /// Time-average of the DBMS-side uncertainty bound over the trip.
    pub avg_uncertainty: f64,
    /// Time-average of the *actual* deviation.
    pub avg_deviation: f64,
    /// Maximum actual deviation observed.
    pub max_deviation: f64,
    /// Ticks where the actual deviation exceeded the advertised bound by
    /// more than one tick of slack (soundness check; expected 0).
    pub bound_violations: usize,
    /// Trip duration simulated (minutes).
    pub duration: f64,
}

/// Averages of [`RunMetrics`] over a set of trips.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AggregateMetrics {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Mean messages per trip.
    pub messages: f64,
    /// Mean deviation cost per trip.
    pub deviation_cost: f64,
    /// Mean total cost per trip.
    pub total_cost: f64,
    /// Mean of per-trip average uncertainty.
    pub avg_uncertainty: f64,
    /// Mean of per-trip average deviation.
    pub avg_deviation: f64,
    /// Max of per-trip max deviation.
    pub max_deviation: f64,
    /// Total bound violations across runs.
    pub bound_violations: usize,
}

impl AggregateMetrics {
    /// Aggregates a slice of runs (empty slice → all-zero aggregate).
    pub fn from_runs(runs: &[RunMetrics]) -> Self {
        if runs.is_empty() {
            return AggregateMetrics::default();
        }
        let n = runs.len() as f64;
        AggregateMetrics {
            runs: runs.len(),
            messages: runs.iter().map(|r| r.messages as f64).sum::<f64>() / n,
            deviation_cost: runs.iter().map(|r| r.deviation_cost).sum::<f64>() / n,
            total_cost: runs.iter().map(|r| r.total_cost).sum::<f64>() / n,
            avg_uncertainty: runs.iter().map(|r| r.avg_uncertainty).sum::<f64>() / n,
            avg_deviation: runs.iter().map(|r| r.avg_deviation).sum::<f64>() / n,
            max_deviation: runs.iter().map(|r| r.max_deviation).fold(0.0, f64::max),
            bound_violations: runs.iter().map(|r| r.bound_violations).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_of_empty_is_zero() {
        let a = AggregateMetrics::from_runs(&[]);
        assert_eq!(a.runs, 0);
        assert_eq!(a.total_cost, 0.0);
    }

    #[test]
    fn aggregate_averages() {
        let r1 = RunMetrics {
            messages: 2,
            deviation_cost: 4.0,
            total_cost: 14.0,
            avg_uncertainty: 1.0,
            avg_deviation: 0.5,
            max_deviation: 2.0,
            bound_violations: 0,
            duration: 60.0,
        };
        let r2 = RunMetrics {
            messages: 4,
            deviation_cost: 8.0,
            total_cost: 28.0,
            avg_uncertainty: 3.0,
            avg_deviation: 1.5,
            max_deviation: 5.0,
            bound_violations: 1,
            duration: 60.0,
        };
        let a = AggregateMetrics::from_runs(&[r1, r2]);
        assert_eq!(a.runs, 2);
        assert_eq!(a.messages, 3.0);
        assert_eq!(a.deviation_cost, 6.0);
        assert_eq!(a.total_cost, 21.0);
        assert_eq!(a.avg_uncertainty, 2.0);
        assert_eq!(a.avg_deviation, 1.0);
        assert_eq!(a.max_deviation, 5.0);
        assert_eq!(a.bound_violations, 1);
    }
}
