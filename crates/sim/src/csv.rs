//! Plot-ready CSV export of experiment results.
//!
//! The paper presents its evaluation as plots; `render_table` prints the
//! human-readable form and these helpers write the same data as CSV so a
//! plotting tool can regenerate the figures. Plain `std::fs` — no
//! serialisation dependency needed for flat numeric tables.

use std::io::Write;
use std::path::Path;

use crate::experiments::ablations::AblationRow;
use crate::experiments::policy_sweep::{MetricKind, SweepResult};

/// Writes one sweep metric as CSV: header `c,<policy>,…`, one row per C.
///
/// # Errors
///
/// I/O failures propagate.
pub fn write_sweep_csv(result: &SweepResult, kind: MetricKind, path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "c")?;
    for p in &result.policies {
        write!(f, ",{p}")?;
    }
    writeln!(f)?;
    for &c in &result.c_values {
        write!(f, "{c}")?;
        for p in &result.policies {
            let v = result
                .get(p, c)
                .map(|m| kind_value(kind, m))
                .unwrap_or(f64::NAN);
            write!(f, ",{v}")?;
        }
        writeln!(f)?;
    }
    Ok(())
}

fn kind_value(kind: MetricKind, m: &crate::metrics::AggregateMetrics) -> f64 {
    match kind {
        MetricKind::Messages => m.messages,
        MetricKind::TotalCost => m.total_cost,
        MetricKind::AvgUncertainty => m.avg_uncertainty,
        MetricKind::AvgDeviation => m.avg_deviation,
    }
}

/// Writes ablation rows as CSV.
///
/// # Errors
///
/// I/O failures propagate.
pub fn write_ablation_csv(rows: &[AblationRow], path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "variant,messages,total_cost,avg_uncertainty,avg_deviation"
    )?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{},{}",
            r.variant,
            r.metrics.messages,
            r.metrics.total_cost,
            r.metrics.avg_uncertainty,
            r.metrics.avg_deviation
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::policy_sweep::{run_sweep, SweepConfig};
    use crate::WorkloadConfig;

    #[test]
    fn sweep_csv_round_trips() {
        let result = run_sweep(&SweepConfig {
            seed: 1,
            workload: WorkloadConfig {
                n_trips: 3,
                duration: 5.0,
                ..WorkloadConfig::default()
            },
            c_values: vec![1.0, 5.0],
            include_baselines: false,
            ..SweepConfig::default()
        });
        let dir = std::env::temp_dir().join("modb_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("messages.csv");
        write_sweep_csv(&result, MetricKind::Messages, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "c,dl,ail,cil");
        assert_eq!(lines.count(), 2);
        // First data row starts with the first C value.
        assert!(text.lines().nth(1).unwrap().starts_with("1,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ablation_csv_has_header_and_rows() {
        use crate::experiments::ablations::run_fitting_ablation;
        let rows = run_fitting_ablation(
            2,
            WorkloadConfig {
                n_trips: 2,
                duration: 5.0,
                ..WorkloadConfig::default()
            },
            5.0,
        );
        let dir = std::env::temp_dir().join("modb_csv_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ablation.csv");
        write_ablation_csv(&rows, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("variant,messages"));
        assert_eq!(text.lines().count(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
