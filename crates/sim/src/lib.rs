//! # modb-sim — the simulation testbed (§3.4)
//!
//! Reproduces the paper's evaluation: "for each speed-curve, update
//! policy, and update cost C we execute a simulation run that computes the
//! total cost and the average uncertainty … then, for each policy, we
//! average over all the speed curves."
//!
//! - [`runner::run_policy`]: one (trip, policy) simulation run.
//! - [`workload::Workload`]: seeded sets of one-hour trips.
//! - [`experiments`]: one module per table/figure — the policy sweep
//!   (F1–F3), the 85 %-savings comparison (T1), Example 1 (T2), the
//!   bound-shape curves (F4), and the indexing experiments (F5, T3, F6).
//! - Experiment binaries (`exp_*`) print the tables; see EXPERIMENTS.md.

#![warn(missing_docs)]

pub mod csv;
pub mod experiments;
mod metrics;
mod report;
mod runner;
mod workload;

pub use metrics::{AggregateMetrics, RunMetrics};
pub use report::{fmt, render_table};
pub use runner::{run_policy, DEFAULT_TICK};
pub use workload::{fleet_positions, Workload, WorkloadConfig};
