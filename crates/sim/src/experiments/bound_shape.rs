//! F4: the shape of the deviation bound over time since the last update.
//!
//! §3.3's qualitative contrast: the dl bound rises and then *plateaus*,
//! while the ail/cil bound rises and then *decreases* ("a surprising
//! positive result"). This experiment tabulates both curves for the
//! Example 1 parameters.

use modb_policy::{combined_bound, fast_bound, slow_bound, BoundKind};

use crate::report::{fmt, render_table};

/// One sampled time point of the bound curves.
#[derive(Debug, Clone, Copy)]
pub struct BoundShapeRow {
    /// Minutes since the last update.
    pub t: f64,
    /// dl slow bound.
    pub dl_slow: f64,
    /// dl fast bound.
    pub dl_fast: f64,
    /// dl combined bound.
    pub dl_combined: f64,
    /// ail/cil slow bound.
    pub imm_slow: f64,
    /// ail/cil fast bound.
    pub imm_fast: f64,
    /// ail/cil combined bound.
    pub imm_combined: f64,
}

/// Samples the bound curves on `[0, t_max]` at step `dt`, for declared
/// speed `v`, maximum speed `v_max`, update cost `c`.
pub fn run_bound_shape(v: f64, v_max: f64, c: f64, t_max: f64, dt: f64) -> Vec<BoundShapeRow> {
    let mut rows = Vec::new();
    let mut t = 0.0;
    while t <= t_max + 1e-9 {
        rows.push(BoundShapeRow {
            t,
            dl_slow: slow_bound(BoundKind::Delayed, v, c, t),
            dl_fast: fast_bound(BoundKind::Delayed, v, v_max, c, t),
            dl_combined: combined_bound(BoundKind::Delayed, v, v_max, c, t),
            imm_slow: slow_bound(BoundKind::Immediate, v, c, t),
            imm_fast: fast_bound(BoundKind::Immediate, v, v_max, c, t),
            imm_combined: combined_bound(BoundKind::Immediate, v, v_max, c, t),
        });
        t += dt;
    }
    rows
}

/// Renders the bound-shape table.
pub fn bound_shape_table(rows: &[BoundShapeRow], v: f64, v_max: f64, c: f64) -> String {
    let title = format!(
        "F4: deviation bound vs time since last update (v={v}, V={v_max}, C={c})\n\
         shape: dl plateaus; ail/cil rise then decay as 2C/t"
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.t),
                fmt(r.dl_slow),
                fmt(r.dl_fast),
                fmt(r.dl_combined),
                fmt(r.imm_slow),
                fmt(r.imm_fast),
                fmt(r.imm_combined),
            ]
        })
        .collect();
    render_table(
        &title,
        &[
            "t", "dl slow", "dl fast", "dl comb", "imm slow", "imm fast", "imm comb",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_narrative() {
        let rows = run_bound_shape(1.0, 1.5, 5.0, 15.0, 0.5);
        // dl combined bound is non-decreasing.
        for w in rows.windows(2) {
            assert!(w[1].dl_combined >= w[0].dl_combined - 1e-12);
        }
        // dl plateaus: last two samples equal.
        let n = rows.len();
        assert!((rows[n - 1].dl_combined - rows[n - 2].dl_combined).abs() < 1e-12);
        // Immediate bound decays at the tail.
        assert!(rows[n - 1].imm_combined < rows[n / 2].imm_combined);
        // Both start at zero.
        assert_eq!(rows[0].dl_combined, 0.0);
        assert_eq!(rows[0].imm_combined, 0.0);
        // Immediate ≤ delayed at large t (why ail is superior).
        assert!(rows[n - 1].imm_combined <= rows[n - 1].dl_combined);
    }

    #[test]
    fn table_renders() {
        let rows = run_bound_shape(1.0, 1.5, 5.0, 5.0, 1.0);
        let t = bound_shape_table(&rows, 1.0, 1.5, 5.0);
        assert!(t.contains("dl comb"));
        assert!(t.lines().count() >= rows.len());
    }
}
