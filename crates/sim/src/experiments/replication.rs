//! W4: follower lag vs update rate, and the lag-widened deviation bound.
//!
//! A warm standby answers queries from its applied watermark, so its
//! answers are stale by the replication lag. The paper's imprecision
//! argument (§3.3) prices that staleness the same way it prices update
//! policies: if every update is *truthful* (the reported position lies on
//! a trajectory with speed ≤ `v_max`) and predictions also move at
//! ≤ `v_max`, then a follower whose attribute for an object is `Δ`
//! seconds older than the leader's can deviate from the leader's answer
//! by at most `D·Δ` with `D = 2·v_max` — the leader's estimate and the
//! follower's estimate each drift at most `v_max` from the true
//! trajectory over the staleness window (DESIGN.md §10).
//!
//! This experiment drives a leader with truthful variable-speed updates
//! at several rates, with a live [`modb_server::StandbyReplica`]
//! attached. While the stream is hot it samples:
//!
//! - **lag** in records (leader WAL frontier − follower applied
//!   watermark), the steady-state shipping debt at that rate;
//! - **deviation**: for each object, the follower's attribute is read
//!   *first*, then the leader's (so the staleness `Δ` is never
//!   understated), both estimates are evaluated at the leader
//!   attribute's report time — the latest instant at which the leader's
//!   answer is exact — and the measured deviation is checked against
//!   `2·v_max·Δ`.
//!
//! The property reported in the `in bound` column is the per-sample
//! check — every measured deviation inside its own lag-widened bound.

use std::path::PathBuf;
use std::time::Duration;

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::{DurableDatabase, ReplicaConfig, ReplicationConfig, StandbyReplica};
use modb_wal::{FsyncPolicy, WalOptions};

use crate::report::{fmt, render_table};

/// One straight route long enough that no trajectory ever clamps.
const ROUTE_LEN: f64 = 1_000_000.0;
/// Simulated seconds between update batches.
const BATCH_DT: f64 = 0.5;

/// One update-rate phase of the W4 experiment.
#[derive(Debug, Clone)]
pub struct ReplicationLagRow {
    /// Updates per batch (the phase's offered load).
    pub rate: usize,
    /// Batches driven.
    pub batches: u64,
    /// Leader WAL frontier at the end of the phase (records written).
    pub records: u64,
    /// Mean of the per-batch lag samples, in records.
    pub mean_lag: f64,
    /// Largest lag sample, in records.
    pub max_lag: u64,
    /// Per-object deviation samples taken while the stream was hot.
    pub samples: u64,
    /// Largest attribute staleness `Δ` observed, in simulated seconds.
    pub max_delta_s: f64,
    /// Largest measured leader-vs-follower deviation, in arc units.
    pub max_dev: f64,
    /// Largest lag-widened bound `2·v_max·Δ` across the samples.
    pub max_bound: f64,
    /// `true` iff every sample satisfied `dev ≤ 2·v_max·Δ` (+ float
    /// tolerance).
    pub within_bound: bool,
}

fn fresh_db() -> Database {
    let route = Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .expect("straight route");
    Database::new(
        RouteNetwork::from_routes([route]).expect("singleton network"),
        DatabaseConfig::default(),
    )
}

fn vehicle(id: u64, arc: f64, v_max: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: v_max * 0.5,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: v_max,
        trip_end: None,
    }
}

/// Dead-reckoned arc of an attribute at query time `q` (forward travel
/// on the single long route; nothing ever clamps).
fn estimate(attr: &PositionAttribute, q: f64) -> f64 {
    attr.start_arc + attr.speed * (q - attr.start_time).max(0.0)
}

/// The simulated fleet: piecewise-constant-speed trajectories with all
/// speeds ≤ `v_max`. Every update reports the object's *true* position
/// at the report time (truthfulness), plus the speed for the next leg —
/// dead reckoning from a stale attribute then drifts, which is exactly
/// what the `2·v_max·Δ` bound prices.
struct Fleet {
    arcs: Vec<f64>,
    speeds: Vec<f64>,
    last_t: Vec<f64>,
    v_max: f64,
}

impl Fleet {
    fn new(n: usize, v_max: f64) -> Fleet {
        Fleet {
            arcs: (0..n).map(|i| 10.0 + i as f64 * 3.0).collect(),
            speeds: vec![v_max * 0.5; n],
            last_t: vec![0.0; n],
            v_max,
        }
    }

    /// Advances object `id` to time `t` — by its *actual* elapsed time
    /// since its previous update, so the trajectory's speed never
    /// exceeds `v_max` no matter how often (or rarely) the driver picks
    /// this object — and returns its truthful update: the integrated
    /// position and the (deterministically varying) speed for the next
    /// leg.
    fn truthful_update(&mut self, id: usize, t: f64) -> UpdateMessage {
        let dt = (t - self.last_t[id]).max(0.0);
        self.arcs[id] += self.speeds[id] * dt;
        self.last_t[id] = t;
        // Speeds swing between v_max/4 and v_max so stale predictions
        // genuinely drift, per-object phase-shifted so batches are not
        // lockstep.
        self.speeds[id] = if ((t / BATCH_DT) as usize + id).is_multiple_of(3) {
            self.v_max
        } else {
            self.v_max * 0.25
        };
        UpdateMessage::basic(t, UpdatePosition::Arc(self.arcs[id]), self.speeds[id])
    }
}

/// Samples per-object deviation: follower attribute first, leader
/// second (`Δ` is then never understated), both estimated at the
/// leader attribute's report time `τ_l` — the latest instant at which
/// the leader's answer is exact, so the gap there is pure replication
/// staleness. (Past `τ_l` both sides extrapolate and the difference of
/// their *predicted* speeds adds drift the `2·v_max·Δ` bound does not
/// price.) Returns `(samples, max_delta, max_dev, max_bound, ok)`.
fn sample_deviation(
    leader: &DurableDatabase,
    replica: &StandbyReplica,
    n_objects: usize,
    v_max: f64,
) -> (u64, f64, f64, f64, bool) {
    let mut samples = 0u64;
    let (mut max_delta, mut max_dev, mut max_bound) = (0.0f64, 0.0f64, 0.0f64);
    let mut ok = true;
    for id in 0..n_objects as u64 {
        let follower_attr = replica
            .database()
            .with_read(|db| db.moving(ObjectId(id)).map(|o| o.attr.clone()).ok());
        let Some(f) = follower_attr else {
            continue; // not shipped yet: bootstrap in progress
        };
        let leader_attr = leader
            .database()
            .with_read(|db| db.moving(ObjectId(id)).map(|o| o.attr.clone()).ok());
        let Some(l) = leader_attr else { continue };
        let delta = (l.start_time - f.start_time).max(0.0);
        let q = l.start_time;
        let dev = (estimate(&l, q) - estimate(&f, q)).abs();
        let bound = 2.0 * v_max * delta;
        samples += 1;
        max_delta = max_delta.max(delta);
        max_dev = max_dev.max(dev);
        max_bound = max_bound.max(bound);
        if dev > bound + 1e-9 {
            ok = false;
        }
    }
    (samples, max_delta, max_dev, max_bound, ok)
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-exp-w4-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one phase: a fresh leader + follower pair, `batches` update
/// batches of `rate` updates each, lag sampled per batch and deviation
/// sampled four times mid-stream.
fn run_phase(n_objects: usize, rate: usize, batches: u64, v_max: f64) -> ReplicationLagRow {
    let ldir = scratch_dir(&format!("leader-{rate}"));
    let fdir = scratch_dir(&format!("follower-{rate}"));
    let wal = WalOptions {
        fsync: FsyncPolicy::Never,
        max_segment_bytes: 64 * 1024,
        ..WalOptions::default()
    };
    let leader = DurableDatabase::create(&ldir, fresh_db(), wal).expect("leader");
    for i in 0..n_objects as u64 {
        leader
            .register_moving(vehicle(i, 10.0 + i as f64 * 3.0, v_max))
            .expect("register");
    }
    let server = leader
        .serve_replication(
            "127.0.0.1:0",
            ReplicationConfig {
                poll_interval: Duration::from_millis(1),
                heartbeat_interval: Duration::from_millis(20),
                ..ReplicationConfig::default()
            },
        )
        .expect("serve");
    let replica = StandbyReplica::open(
        &fdir,
        server.local_addr().to_string(),
        ReplicaConfig {
            wal,
            read_timeout: Duration::from_millis(2),
            ..ReplicaConfig::default()
        },
    )
    .expect("replica");
    // Let the bootstrap land before offering load, so every phase
    // measures steady-state shipping rather than initial copy time —
    // and so mid-stream deviation samples always find the fleet.
    assert!(
        replica.wait_for_lsn(leader.wal().next_lsn(), Duration::from_secs(120)),
        "rate {rate}: bootstrap never completed ({})",
        replica.stats()
    );

    let mut fleet = Fleet::new(n_objects, v_max);
    let (mut lag_sum, mut lag_n, mut max_lag) = (0u128, 0u64, 0u64);
    let (mut samples, mut max_delta, mut max_dev, mut max_bound) = (0u64, 0.0f64, 0.0f64, 0.0f64);
    let mut within = true;
    let measure_every = (batches / 4).max(1);
    for batch in 1..=batches {
        for u in 0..rate {
            let id = (batch as usize * rate + u) % n_objects;
            // Sub-batch timestamps: strictly increasing per object even
            // when the rate exceeds the fleet size (an object updated
            // twice in one batch must not report two positions at one
            // instant — that is an infinite-speed trajectory and the
            // truthfulness premise of the bound is gone).
            let t = (batch - 1) as f64 * BATCH_DT + (u as f64 + 1.0) / rate as f64 * BATCH_DT;
            let msg = fleet.truthful_update(id, t);
            leader
                .apply_update(ObjectId(id as u64), &msg)
                .expect("update");
        }
        let lag = leader
            .wal()
            .next_lsn()
            .saturating_sub(replica.applied_lsn());
        lag_sum += lag as u128;
        lag_n += 1;
        max_lag = max_lag.max(lag);
        if batch % measure_every == 0 {
            let (s, d, dev, b, ok) = sample_deviation(&leader, &replica, n_objects, v_max);
            samples += s;
            max_delta = max_delta.max(d);
            max_dev = max_dev.max(dev);
            max_bound = max_bound.max(b);
            within = within && ok;
        }
        // The 1-core case: give the shipper and the follower a slice.
        std::thread::yield_now();
    }
    // Drain, then check exact convergence as a sanity floor.
    let frontier = leader.wal().next_lsn();
    assert!(
        replica.wait_for_lsn(frontier, Duration::from_secs(120)),
        "rate {rate}: follower never drained ({})",
        replica.stats()
    );
    // One quiescent sample: Δ = 0 here, so any nonzero deviation now
    // would be a convergence bug, not lag.
    let (s, d, dev, b, ok) = sample_deviation(&leader, &replica, n_objects, v_max);
    samples += s;
    max_delta = max_delta.max(d);
    max_dev = max_dev.max(dev);
    max_bound = max_bound.max(b);
    within = within && ok;
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);
    let _ = std::fs::remove_dir_all(&fdir);
    ReplicationLagRow {
        rate,
        batches,
        records: frontier,
        mean_lag: lag_sum as f64 / lag_n.max(1) as f64,
        max_lag,
        samples,
        max_delta_s: max_delta,
        max_dev,
        max_bound,
        within_bound: within,
    }
}

/// Runs the experiment: one leader/follower phase per update rate.
pub fn run_replication_lag(
    n_objects: usize,
    rates: &[usize],
    batches: u64,
    v_max: f64,
) -> Vec<ReplicationLagRow> {
    rates
        .iter()
        .map(|&rate| run_phase(n_objects, rate.max(1), batches.max(4), v_max))
        .collect()
}

/// Renders the W4 report table.
pub fn replication_lag_table(n_objects: usize, v_max: f64, rows: &[ReplicationLagRow]) -> String {
    render_table(
        &format!(
            "W4: follower lag vs update rate at {n_objects} objects \
             (deviation vs the 2·v_max·Δ bound, v_max = {v_max})"
        ),
        &[
            "rate/batch",
            "batches",
            "records",
            "mean lag",
            "max lag",
            "samples",
            "max Δ s",
            "max dev",
            "max 2VΔ",
            "in bound",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.rate.to_string(),
                    r.batches.to_string(),
                    r.records.to_string(),
                    fmt(r.mean_lag),
                    r.max_lag.to_string(),
                    r.samples.to_string(),
                    fmt(r.max_delta_s),
                    fmt(r.max_dev),
                    fmt(r.max_bound),
                    if r.within_bound { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_stays_inside_the_lag_widened_bound() {
        let rows = run_replication_lag(20, &[5, 40], 12, 2.0);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.records > 0);
            assert!(r.samples > 0, "rate {}: no deviation samples", r.rate);
            assert!(
                r.within_bound,
                "rate {}: deviation {} exceeded bound {}",
                r.rate, r.max_dev, r.max_bound
            );
            assert!(r.max_dev <= r.max_bound + 1e-9);
        }
        let table = replication_lag_table(20, 2.0, &rows);
        assert!(table.contains("in bound"));
        assert!(table.contains("W4"));
    }
}
