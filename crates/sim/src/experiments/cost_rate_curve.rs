//! F7 (supplementary): the cost-rate curve behind Proposition 1.
//!
//! Proposition 1 is a minimisation claim; this experiment tabulates the
//! long-run cost per minute as a function of the update threshold `k` for
//! the Example 1 parameters, showing the minimum landing exactly at
//! `k_opt = √(a²b² + 2aC) − ab` — the "figure" a reader would sketch to
//! understand the proposition.

use modb_policy::{cost_rate, optimal_threshold};

use crate::report::{fmt, render_table};

/// One sampled threshold point.
#[derive(Debug, Clone, Copy)]
pub struct CostRateRow {
    /// Update threshold `k` (miles).
    pub k: f64,
    /// Long-run cost per minute at that threshold.
    pub rate: f64,
    /// Whether this row is the analytic optimum.
    pub is_optimum: bool,
}

/// Samples the cost-rate curve over `[k_opt/8, k_opt·8]` (log-spaced),
/// inserting the analytic optimum as its own row.
pub fn run_cost_rate_curve(a: f64, b: f64, c: f64, samples: usize) -> Vec<CostRateRow> {
    let k_opt = optimal_threshold(a, b, c);
    let lo = k_opt / 8.0;
    let hi = k_opt * 8.0;
    let mut rows: Vec<CostRateRow> = (0..samples)
        .map(|i| {
            let f = i as f64 / (samples - 1).max(1) as f64;
            let k = lo * (hi / lo).powf(f);
            CostRateRow {
                k,
                rate: cost_rate(k, a, b, c),
                is_optimum: false,
            }
        })
        .collect();
    rows.push(CostRateRow {
        k: k_opt,
        rate: cost_rate(k_opt, a, b, c),
        is_optimum: true,
    });
    rows.sort_by(|x, y| x.k.partial_cmp(&y.k).expect("finite"));
    rows
}

/// Renders the curve as a table with the optimum marked.
pub fn cost_rate_table(rows: &[CostRateRow], a: f64, b: f64, c: f64) -> String {
    let title = format!(
        "F7: long-run cost per minute vs update threshold k (a={a}, b={b}, C={c})\n\
         Proposition 1: minimum at k_opt = sqrt(a^2 b^2 + 2aC) - ab"
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                fmt(r.k),
                fmt(r.rate),
                if r.is_optimum {
                    "<- k_opt".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    render_table(&title, &["k (mi)", "cost/min", ""], &table_rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_is_the_minimum_row() {
        let rows = run_cost_rate_curve(1.0, 2.0, 5.0, 25);
        let opt = rows.iter().find(|r| r.is_optimum).expect("marked row");
        for r in &rows {
            assert!(opt.rate <= r.rate + 1e-12, "k={} beats k_opt", r.k);
        }
        // Example 1: k_opt ≈ 1.74.
        assert!((opt.k - 1.7417).abs() < 1e-3);
    }

    #[test]
    fn curve_is_unimodal_around_optimum() {
        let rows = run_cost_rate_curve(0.5, 1.0, 10.0, 41);
        let opt_idx = rows.iter().position(|r| r.is_optimum).unwrap();
        // Non-increasing before, non-decreasing after (within tolerance).
        for w in rows[..=opt_idx].windows(2) {
            assert!(w[1].rate <= w[0].rate + 1e-9);
        }
        for w in rows[opt_idx..].windows(2) {
            assert!(w[1].rate + 1e-9 >= w[0].rate);
        }
    }

    #[test]
    fn table_marks_optimum() {
        let rows = run_cost_rate_curve(1.0, 2.0, 5.0, 9);
        let t = cost_rate_table(&rows, 1.0, 2.0, 5.0);
        assert!(t.contains("<- k_opt"));
        assert!(t.contains("Proposition 1"));
    }
}
