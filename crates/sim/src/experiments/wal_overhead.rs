//! W1: ingest throughput with and without the write-ahead log.
//!
//! The paper prices imprecision in update messages; durability has a
//! price too. This experiment measures it: the same sharded ingest
//! workload is driven through [`modb_server::IngestService`] four times —
//! no WAL, then WAL-backed under each [`FsyncPolicy`] — and the wall
//! clock for the full drain (spawn → send → shutdown, which flushes
//! every per-worker batch and fsyncs) is compared against the no-WAL
//! baseline.
//!
//! `Always` fsyncs once per worker batch and is orders of magnitude
//! slower on real disks, so its round count is scaled down by
//! [`ALWAYS_ROUNDS_DIVISOR`]; throughput numbers stay comparable because
//! the metric is updates per second.

use std::time::Instant;

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_server::{IngestService, SharedDatabase, UpdateEnvelope};
use modb_wal::{FsyncPolicy, SharedWal, WalOptions, WalWriter};

use crate::experiments::indexing::build_city_db;
use crate::report::{fmt, render_table};

/// `Always` runs `rounds / ALWAYS_ROUNDS_DIVISOR` rounds (min 1): one
/// fsync per 32-record batch makes full-length runs needlessly slow
/// without changing the per-update cost being measured.
pub const ALWAYS_ROUNDS_DIVISOR: usize = 10;

/// The durability configurations compared by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalMode {
    /// Baseline: no logging.
    NoWal,
    /// WAL-backed with the given fsync policy.
    Wal(FsyncPolicy),
}

impl WalMode {
    /// Human-readable label for the report table.
    pub fn label(&self) -> &'static str {
        match self {
            WalMode::NoWal => "no-wal",
            WalMode::Wal(FsyncPolicy::Never) => "wal-never",
            WalMode::Wal(FsyncPolicy::EveryN(_)) => "wal-every-n",
            WalMode::Wal(FsyncPolicy::Always) => "wal-always",
        }
    }
}

/// One mode's measured row.
#[derive(Debug, Clone)]
pub struct WalOverheadRow {
    /// Mode label.
    pub label: &'static str,
    /// Updates sent and drained.
    pub updates: usize,
    /// Wall-clock seconds for the full drain.
    pub seconds: f64,
    /// Updates per second.
    pub per_sec: f64,
    /// Throughput overhead vs the no-WAL baseline, in percent (0 for the
    /// baseline itself).
    pub overhead_pct: f64,
    /// Bytes of log written (0 without a WAL).
    pub log_bytes: u64,
    /// Segment files produced.
    pub segments: usize,
}

fn drive(
    service: IngestService,
    n_objects: usize,
    rounds: usize,
    producers: usize,
) -> (usize, f64) {
    let handle = service.handle();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers {
            let handle = handle.clone();
            s.spawn(move || {
                for round in 1..=rounds {
                    for i in (p..n_objects).step_by(producers) {
                        handle
                            .send(UpdateEnvelope {
                                id: ObjectId(i as u64),
                                msg: UpdateMessage::basic(
                                    round as f64 * 0.01,
                                    UpdatePosition::Arc(0.5),
                                    0.7,
                                ),
                            })
                            .expect("service alive");
                    }
                }
            });
        }
    });
    drop(handle);
    let stats = service.shutdown();
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(stats.rejected(), 0, "monotone stamps must all apply");
    assert_eq!(stats.wal_errors, 0, "log writes must succeed");
    // Sanity: the drain really applied everything.
    assert_eq!(stats.accepted, rounds * n_objects);
    (stats.accepted, seconds)
}

fn log_footprint(dir: &std::path::Path) -> (u64, usize) {
    let segments = modb_wal::list_segments(dir).expect("listable");
    let bytes = segments
        .iter()
        .map(|(_, p)| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    (bytes, segments.len())
}

/// Runs the experiment: `rounds` monotone updates per object over a
/// `n_objects` fleet, for each durability mode. Log directories are
/// created under the system temp dir and removed afterwards.
pub fn run_wal_overhead(n_objects: usize, rounds: usize, workers: usize) -> Vec<WalOverheadRow> {
    let modes = [
        WalMode::NoWal,
        WalMode::Wal(FsyncPolicy::Never),
        WalMode::Wal(FsyncPolicy::EveryN(256)),
        WalMode::Wal(FsyncPolicy::Always),
    ];
    let mut rows: Vec<WalOverheadRow> = Vec::with_capacity(modes.len());
    for mode in modes {
        let rounds = match mode {
            WalMode::Wal(FsyncPolicy::Always) => (rounds / ALWAYS_ROUNDS_DIVISOR).max(1),
            _ => rounds,
        };
        // A fresh fleet per mode: every run applies the same update
        // sequence from the same initial state.
        let db = SharedDatabase::new(build_city_db(42, n_objects, 20));
        let dir = std::env::temp_dir().join(format!(
            "modb-exp-wal-{}-{}",
            std::process::id(),
            mode.label()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (service, wal_dir) = match mode {
            WalMode::NoWal => (IngestService::spawn(db.clone(), workers, 4_096), None),
            WalMode::Wal(fsync) => {
                let writer = WalWriter::create(
                    &dir,
                    WalOptions {
                        fsync,
                        ..WalOptions::default()
                    },
                )
                .expect("fresh log dir");
                (
                    IngestService::spawn_with_wal(
                        db.clone(),
                        SharedWal::new(writer),
                        workers,
                        4_096,
                    ),
                    Some(dir.clone()),
                )
            }
        };
        let (updates, seconds) = drive(service, n_objects, rounds, 4);
        let (log_bytes, segments) = match &wal_dir {
            Some(d) => log_footprint(d),
            None => (0, 0),
        };
        let per_sec = updates as f64 / seconds;
        let baseline = rows.first().map(|r: &WalOverheadRow| r.per_sec);
        rows.push(WalOverheadRow {
            label: mode.label(),
            updates,
            seconds,
            per_sec,
            overhead_pct: match baseline {
                Some(base) => (base / per_sec - 1.0) * 100.0,
                None => 0.0,
            },
            log_bytes,
            segments,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    rows
}

/// Renders the W1 report table.
pub fn wal_overhead_table(rows: &[WalOverheadRow]) -> String {
    render_table(
        "W1: ingest throughput vs durability (sharded ingest, monotone updates)",
        &[
            "mode",
            "updates",
            "seconds",
            "updates/s",
            "overhead %",
            "log MiB",
            "segments",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.updates.to_string(),
                    fmt(r.seconds),
                    fmt(r.per_sec),
                    fmt(r.overhead_pct),
                    fmt(r.log_bytes as f64 / (1024.0 * 1024.0)),
                    r.segments.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Serializes the rows as the CI perf artifact `BENCH_wal_overhead.json`.
pub fn wal_overhead_json(rows: &[WalOverheadRow]) -> String {
    let mut out = String::from("{\n  \"modes\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"updates\": {}, \"seconds\": {:.6}, \
             \"per_sec\": {:.1}, \"overhead_pct\": {:.2}, \"log_bytes\": {}, \
             \"segments\": {}}}{}\n",
            r.label,
            r.updates,
            r.seconds,
            r.per_sec,
            r.overhead_pct,
            r.log_bytes,
            r.segments,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let rows = run_wal_overhead(20, 2, 2);
        let json = wal_overhead_json(&rows);
        assert!(json.contains("\"modes\""));
        assert_eq!(json.matches("\"mode\"").count(), rows.len());
        assert!(json.contains("\"no-wal\""));
    }

    #[test]
    fn small_run_produces_consistent_rows() {
        let rows = run_wal_overhead(50, 4, 2);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label, "no-wal");
        assert_eq!(rows[0].overhead_pct, 0.0);
        assert_eq!(rows[0].log_bytes, 0);
        assert_eq!(rows[0].updates, 200);
        for r in &rows[1..] {
            assert!(r.log_bytes > 0, "{} wrote a log", r.label);
            assert!(r.segments >= 1);
            assert!(r.per_sec > 0.0);
        }
        assert_eq!(rows[3].label, "wal-always");
        assert_eq!(rows[3].updates, 50, "Always runs reduced rounds");
        let table = wal_overhead_table(&rows);
        assert!(table.contains("wal-every-n"));
        assert!(table.contains("updates/s"));
    }
}
