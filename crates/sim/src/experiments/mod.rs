//! The experiment suite: one module per paper table/figure (see DESIGN.md
//! §4 for the experiment index).

pub mod ablations;
pub mod bound_shape;
pub mod cost_rate_curve;
pub mod epoch_publish;
pub mod example1;
pub mod failover;
pub mod frontend;
pub mod indexing;
pub mod policy_sweep;
pub mod query_scaling;
pub mod read_fanout;
pub mod replication;
pub mod savings;
pub mod sharding;
pub mod speed_bands;
pub mod wal_overhead;
pub mod wal_throughput;
