//! W6: shard-key evaluation — which partitioning fits which workload.
//!
//! The cluster layer asks a design question the paper's single radio
//! link never had to: *who owns which vehicle?* A hash key places
//! uniformly but answers every range query with a full fan-out; a
//! spatial key keeps local queries local but inherits the fleet's
//! geography, good and bad. Following the database-design-advisor
//! tradition (mongodb-d4), the experiment scores candidate
//! [`modb_server::ShardMap`]s against *recorded workloads* with the
//! normalized [`modb_server::CostModel`] (network fan-out, WAL
//! imbalance, temporal skew) instead of decreeing a winner:
//!
//! - **corridor-dispatch**: a commuter fleet spread along lanes, with
//!   cross-corridor dispatch rectangles chasing the rush front — range
//!   locality is along x, so vertical strips prune the fan-out.
//! - **district-rush**: the whole fleet packed into one district with
//!   city-wide queries — any spatial key piles every update on one
//!   shard, and the hash key's uniformity wins.
//!
//! The two workloads rank the keys *differently* — that reversal is
//! the experiment's point. A second leg grounds the model in the real
//! thing: it spins an actual 3-shard cluster plus a single union node
//! and checks the scatter-gather router's verdicts match statement for
//! statement (the **parity** bit), under both key strategies.

use std::path::PathBuf;
use std::sync::Arc;

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::{Point, Rect};
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::{
    ClusterRouter, CostModel, DurableDatabase, QueryEngineConfig, QueryServerConfig,
    RecordedWorkload, ShardMap, WorkloadOp,
};
use modb_wal::{FsyncPolicy, WalOptions};

use crate::report::{fmt, render_table};

/// Frame the synthetic workloads live in.
const FRAME_W: f64 = 900.0;
const FRAME_H: f64 = 90.0;

fn frame() -> Rect {
    Rect::new(Point::new(0.0, 0.0), Point::new(FRAME_W, FRAME_H))
}

/// One scored (workload, shard map) cell.
#[derive(Debug, Clone)]
pub struct ShardingRow {
    /// Workload name.
    pub workload: &'static str,
    /// Shard-map label.
    pub map: String,
    /// Mean fan-out fraction.
    pub network: f64,
    /// WAL imbalance.
    pub disk: f64,
    /// Temporal load skew.
    pub skew: f64,
    /// Weighted total.
    pub total: f64,
}

/// Commuters on `lanes` horizontal lanes, spread along x; each tick the
/// whole fleet reports, a few are position-polled, and dispatch
/// rectangles (narrow in x, full height) chase the rush front across
/// the corridor.
fn corridor_dispatch(n_objects: usize, lanes: usize, ticks: usize) -> RecordedWorkload {
    let mut w = RecordedWorkload::new();
    let lanes = lanes.max(1);
    for i in 0..n_objects {
        let lane = i % lanes;
        let y = (lane as f64 + 0.5) * FRAME_H / lanes as f64;
        let x = (i / lanes) as f64 * 17.0 % FRAME_W;
        w.register(ObjectId(i as u64), Point::new(x, y));
    }
    for t in 0..ticks {
        let at = t as f64;
        for i in 0..n_objects {
            w.push(
                at,
                WorkloadOp::Update {
                    id: ObjectId(i as u64),
                },
            );
        }
        for poll in 0..(n_objects / 10).max(1) {
            w.push(
                at,
                WorkloadOp::Position {
                    id: ObjectId(((poll * 7 + t) % n_objects) as u64),
                },
            );
        }
        // The dispatch window follows the commute front.
        let front = FRAME_W * (t as f64 + 0.5) / ticks as f64;
        for _ in 0..4 {
            w.push(
                at,
                WorkloadOp::Range {
                    rect: Rect::new(
                        Point::new((front - 40.0).max(0.0), 0.0),
                        Point::new((front + 40.0).min(FRAME_W), FRAME_H),
                    ),
                },
            );
        }
    }
    w
}

/// The whole fleet packed into one district, with city-wide query
/// rectangles: geography is exactly what a spatial key should not
/// inherit here.
fn district_rush(n_objects: usize, ticks: usize) -> RecordedWorkload {
    let mut w = RecordedWorkload::new();
    for i in 0..n_objects {
        // A tight cluster in the south-west district.
        let x = 10.0 + (i as f64 * 13.0) % (FRAME_W / 6.0);
        let y = 5.0 + (i as f64 * 7.0) % (FRAME_H / 6.0);
        w.register(ObjectId(i as u64), Point::new(x, y));
    }
    for t in 0..ticks {
        let at = t as f64;
        for i in 0..n_objects {
            w.push(
                at,
                WorkloadOp::Update {
                    id: ObjectId(i as u64),
                },
            );
        }
        for q in 0..3 {
            let x0 = (q as f64) * FRAME_W / 4.0;
            w.push(
                at,
                WorkloadOp::Range {
                    rect: Rect::new(Point::new(x0, 0.0), Point::new(x0 + FRAME_W / 2.0, FRAME_H)),
                },
            );
        }
    }
    w
}

/// Scores the three candidate maps against both workloads.
pub fn score_shard_keys(n_objects: usize, n_shards: usize, ticks: usize) -> Vec<ShardingRow> {
    let model = CostModel::default();
    let maps: Vec<(String, ShardMap)> = vec![
        (format!("hash({n_shards})"), ShardMap::hash(n_shards)),
        (
            format!("vertical({n_shards})"),
            ShardMap::vertical_strips(frame(), n_shards),
        ),
        (
            format!("horizontal({n_shards})"),
            ShardMap::horizontal_strips(frame(), n_shards),
        ),
    ];
    let workloads: Vec<(&'static str, RecordedWorkload)> = vec![
        (
            "corridor-dispatch",
            corridor_dispatch(n_objects, n_shards, ticks),
        ),
        ("district-rush", district_rush(n_objects, ticks)),
    ];
    let mut rows = Vec::new();
    for (wname, w) in &workloads {
        for (mname, map) in &maps {
            let b = model.score(map, w);
            rows.push(ShardingRow {
                workload: wname,
                map: mname.clone(),
                network: b.network,
                disk: b.disk,
                skew: b.skew,
                total: b.total,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// Parity leg: a real 3-shard cluster vs the union node.
// ---------------------------------------------------------------------

const ROUTE_LEN: f64 = 1000.0;

fn fresh_db() -> Database {
    let route = Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .expect("straight route");
    Database::new(
        RouteNetwork::from_routes([route]).expect("singleton network"),
        DatabaseConfig::default(),
    )
}

fn vehicle(id: u64, arc: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: 2.0,
        trip_end: None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-exp-w6-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_options() -> WalOptions {
    WalOptions {
        fsync: FsyncPolicy::Never,
        max_segment_bytes: 1024 * 1024,
        ..WalOptions::default()
    }
}

/// Spins `n_shards` real servers plus a union node, pushes the fleet's
/// updates through the scatter-gather router, and checks the routed
/// verdicts match the union node statement for statement.
pub fn cluster_parity(n_objects: usize, n_shards: usize, spatial: bool) -> bool {
    let map = if spatial {
        ShardMap::vertical_strips(
            Rect::new(Point::new(0.0, -5.0), Point::new(ROUTE_LEN, 5.0)),
            n_shards,
        )
    } else {
        ShardMap::hash(n_shards)
    };
    let tag = if spatial { "spatial" } else { "hash" };

    struct Node {
        durable: DurableDatabase,
        engine: Arc<modb_server::QueryEngine>,
        service: Option<modb_server::IngestService>,
        server: Option<modb_server::QueryServer>,
        dir: PathBuf,
    }
    let node = |name: &str, serve: bool| {
        let dir = scratch_dir(name);
        let durable = DurableDatabase::create(&dir, fresh_db(), wal_options()).expect("create");
        let engine = Arc::new(durable.query_engine(QueryEngineConfig {
            epoch_interval: None,
            report_interval: None,
            ..QueryEngineConfig::default()
        }));
        let (service, server) = if serve {
            let service = durable.ingest_service(2, 64);
            let server = durable
                .serve_queries(
                    Arc::clone(&engine),
                    Some(service.frontend()),
                    "127.0.0.1:0",
                    QueryServerConfig::default(),
                )
                .expect("serve");
            (Some(service), Some(server))
        } else {
            (None, None)
        };
        Node {
            durable,
            engine,
            service,
            server,
            dir,
        }
    };

    let shards: Vec<Node> = (0..n_shards)
        .map(|i| node(&format!("{tag}-s{i}"), true))
        .collect();
    let union = node(&format!("{tag}-union"), false);
    let addrs: Vec<_> = shards
        .iter()
        .map(|n| n.server.as_ref().unwrap().local_addr())
        .collect();
    let mut router = ClusterRouter::connect(&addrs, map).expect("connect");

    for i in 0..n_objects as u64 {
        let arc = 5.0 + (i as f64 * 37.0) % (ROUTE_LEN - 10.0);
        let v = vehicle(i, arc);
        let home = router.route_registration(v.id, &v.name, Point::new(arc, 0.0));
        shards[home]
            .durable
            .register_moving(v.clone())
            .expect("register");
        union.durable.register_moving(v).expect("register");
    }
    for n in shards.iter().chain(std::iter::once(&union)) {
        n.engine.publish_now();
    }
    // Move a third of the fleet over the remote-ingest path.
    for i in (0..n_objects as u64).step_by(3) {
        let arc = 8.0 + (i as f64 * 37.0) % (ROUTE_LEN - 10.0);
        let msg = UpdateMessage::basic(4.0, UpdatePosition::Arc(arc), 1.0);
        let v = router.update(ObjectId(i), &msg).expect("routed update");
        assert!(v.is_accepted(), "{v:?}");
        union
            .durable
            .apply_update(ObjectId(i), &msg)
            .expect("union update");
    }
    union.engine.publish_now();

    let script = (0..n_objects.min(8))
        .map(|i| {
            let x0 = (i as f64) * ROUTE_LEN / 9.0;
            format!(
                "RETRIEVE POSITION OF OBJECT {i} AT TIME 6; \
                 RETRIEVE OBJECTS INSIDE RECT ({x0}, -1, {}, 1) AT TIME 6; \
                 RETRIEVE OBJECTS WITHIN 90 OF OBJECT {i} AT TIME 6; \
                 RETRIEVE 4 NEAREST OBJECTS TO POINT ({x0}, 0) AT TIME 6",
                x0 + 150.0
            )
        })
        .collect::<Vec<_>>()
        .join("; ");

    let remote = router.run_batch(&script).expect("routed batch");
    let local = union.engine.run_batch(&script);
    let mut parity = remote.len() == local.len();
    for (r, l) in remote.iter().zip(&local) {
        let same = match (r, l) {
            // Traversal diagnostics are additive across shards; the
            // answer is the may/must sets.
            (Ok(modb_query::QueryResult::Range(r)), Ok(modb_query::QueryResult::Range(l))) => {
                r.must == l.must && r.may == l.may
            }
            (Ok(r), Ok(l)) => r == l,
            (Err(r), Err(l)) => r == &l.to_string(),
            _ => false,
        };
        parity = parity && same;
    }

    router.close();
    for n in shards.into_iter().chain(std::iter::once(union)) {
        if let Some(server) = n.server {
            server.shutdown();
        }
        if let Some(service) = n.service {
            service.shutdown();
        }
        drop(n.durable);
        let _ = std::fs::remove_dir_all(&n.dir);
    }
    parity
}

/// Renders the W6 score table.
pub fn sharding_table(n_objects: usize, n_shards: usize, rows: &[ShardingRow]) -> String {
    render_table(
        &format!(
            "W6: shard-key cost scores, {n_objects} objects over {n_shards} shards \
             (lower is better; α=β=γ=1)"
        ),
        &["workload", "shard key", "network", "disk", "skew", "total"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.map.clone(),
                    fmt(r.network),
                    fmt(r.disk),
                    fmt(r.skew),
                    fmt(r.total),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Serializes the scores and parity bits as a small JSON document (the
/// CI perf artifact `BENCH_sharding.json`).
pub fn sharding_json(rows: &[ShardingRow], parity_hash: bool, parity_spatial: bool) -> String {
    let mut out = String::from("{\n  \"scores\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"map\": \"{}\", \"network\": {:.6}, \
             \"disk\": {:.6}, \"skew\": {:.6}, \"total\": {:.6}}}{}\n",
            r.workload,
            r.map,
            r.network,
            r.disk,
            r.skew,
            r.total,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"parity\": {{\"hash\": {parity_hash}, \"spatial\": {parity_spatial}}}\n}}\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_rank_differently_across_workloads() {
        let rows = score_shard_keys(120, 3, 12);
        assert_eq!(rows.len(), 6);
        let total = |w: &str, m: &str| {
            rows.iter()
                .find(|r| r.workload == w && r.map.starts_with(m))
                .unwrap()
                .total
        };
        // Cross-corridor dispatch: vertical strips prune the fan-out
        // that hash pays in full.
        assert!(
            total("corridor-dispatch", "vertical") < total("corridor-dispatch", "hash"),
            "{rows:?}"
        );
        // A clustered fleet: the hash key beats any strip key that
        // inherits the cluster.
        assert!(
            total("district-rush", "hash") < total("district-rush", "vertical"),
            "{rows:?}"
        );
        for r in &rows {
            for v in [r.network, r.disk, r.skew, r.total] {
                assert!((0.0..=1.0).contains(&v), "{r:?}");
            }
        }
    }

    #[test]
    fn smoke_cluster_parity_both_keys() {
        assert!(cluster_parity(12, 3, false), "hash cluster diverged");
        assert!(cluster_parity(12, 3, true), "spatial cluster diverged");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let rows = score_shard_keys(30, 3, 4);
        let json = sharding_json(&rows, true, true);
        assert!(json.contains("\"scores\""));
        assert!(json.contains("\"parity\""));
        assert_eq!(json.matches("\"workload\"").count(), rows.len());
    }
}
