//! The §3.4 evaluation: dl / ail / cil (plus baselines) swept over the
//! update cost `C`. One sweep produces the data behind all three of the
//! paper's plots — messages (F1), total cost (F2), and average uncertainty
//! (F3) as functions of the message cost.

use modb_policy::baselines::{FixedThresholdPolicy, PeriodicPolicy};
use modb_policy::{DeviationCost, Policy, PolicyEngine, PositionUpdate, Quintuple};

use crate::metrics::{AggregateMetrics, RunMetrics};
use crate::report::{fmt, render_table};
use crate::runner::{run_policy, DEFAULT_TICK};
use crate::workload::{Workload, WorkloadConfig};

/// The update costs the sweep evaluates — spanning two orders of
/// magnitude around the paper's C = 5 example.
pub const DEFAULT_C_VALUES: [f64; 7] = [0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0];

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Workload seed.
    pub seed: u64,
    /// Trip-set shape.
    pub workload: WorkloadConfig,
    /// Update costs to sweep.
    pub c_values: Vec<f64>,
    /// Also run the dead-reckoning baselines (fixed threshold B = 1 mile,
    /// periodic 2-minute timer) for the ablation columns.
    pub include_baselines: bool,
    /// Simulation tick (minutes).
    pub dt: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            seed: 42,
            workload: WorkloadConfig::default(),
            c_values: DEFAULT_C_VALUES.to_vec(),
            include_baselines: false,
            dt: DEFAULT_TICK,
        }
    }
}

/// One (policy, C) cell of the sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Update cost.
    pub c: f64,
    /// Policy label.
    pub policy: String,
    /// Metrics averaged over the workload's trips.
    pub metrics: AggregateMetrics,
}

/// Full sweep result.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// All cells, grouped by C then policy.
    pub cells: Vec<SweepCell>,
    /// Policy labels in display order.
    pub policies: Vec<String>,
    /// The swept C values.
    pub c_values: Vec<f64>,
}

/// Which metric a table should display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Mean update messages per trip (plot F1).
    Messages,
    /// Mean total cost per trip (plot F2).
    TotalCost,
    /// Mean average uncertainty (plot F3).
    AvgUncertainty,
    /// Mean average actual deviation (diagnostic).
    AvgDeviation,
}

impl MetricKind {
    fn extract(self, m: &AggregateMetrics) -> f64 {
        match self {
            MetricKind::Messages => m.messages,
            MetricKind::TotalCost => m.total_cost,
            MetricKind::AvgUncertainty => m.avg_uncertainty,
            MetricKind::AvgDeviation => m.avg_deviation,
        }
    }

    fn title(self) -> &'static str {
        match self {
            MetricKind::Messages => "F1: position-update messages per trip vs message cost C",
            MetricKind::TotalCost => "F2: total cost per trip vs message cost C",
            MetricKind::AvgUncertainty => "F3: average uncertainty (miles) vs message cost C",
            MetricKind::AvgDeviation => "average actual deviation (miles) vs message cost C",
        }
    }
}

impl SweepResult {
    /// Looks up the aggregate for (policy, C).
    pub fn get(&self, policy: &str, c: f64) -> Option<&AggregateMetrics> {
        self.cells
            .iter()
            .find(|cell| cell.policy == policy && cell.c == c)
            .map(|cell| &cell.metrics)
    }

    /// Renders one metric as a C-by-policy table.
    pub fn table(&self, kind: MetricKind) -> String {
        let mut headers: Vec<&str> = vec!["C"];
        headers.extend(self.policies.iter().map(|s| s.as_str()));
        let rows: Vec<Vec<String>> = self
            .c_values
            .iter()
            .map(|&c| {
                let mut row = vec![fmt(c)];
                for p in &self.policies {
                    row.push(
                        self.get(p, c)
                            .map(|m| fmt(kind.extract(m)))
                            .unwrap_or_else(|| "-".into()),
                    );
                }
                row
            })
            .collect();
        render_table(kind.title(), &headers, &rows)
    }

    /// Total bound violations across every cell — must be zero for the
    /// §3.3 bounds to be sound.
    pub fn total_bound_violations(&self) -> usize {
        self.cells.iter().map(|c| c.metrics.bound_violations).sum()
    }
}

/// Runs the sweep.
pub fn run_sweep(config: &SweepConfig) -> SweepResult {
    let workload = Workload::generate(config.seed, config.workload);
    let cost = DeviationCost::UNIT_UNIFORM;
    let mut policies: Vec<String> = vec!["dl".into(), "ail".into(), "cil".into()];
    if config.include_baselines {
        policies.push("fixed-threshold".into());
        policies.push("periodic".into());
    }
    let mut cells = Vec::with_capacity(policies.len() * config.c_values.len());
    for &c in &config.c_values {
        let mut runs: Vec<Vec<RunMetrics>> = vec![Vec::new(); policies.len()];
        for (route, trip) in workload.iter() {
            let initial = PositionUpdate {
                time: trip.start_time(),
                arc: trip.start_arc(),
                speed: trip.speed_at(trip.start_time() + config.dt),
            };
            let v_max = trip.max_speed().max(1e-6);
            for (pi, label) in policies.iter().enumerate() {
                let mut policy: Box<dyn Policy> = match label.as_str() {
                    "dl" => Box::new(
                        PolicyEngine::new(Quintuple::dl(c), route.length(), 1.0, initial)
                            .expect("valid quintuple"),
                    ),
                    "ail" => Box::new(
                        PolicyEngine::new(Quintuple::ail(c), route.length(), 1.0, initial)
                            .expect("valid quintuple"),
                    ),
                    "cil" => Box::new(
                        PolicyEngine::new(Quintuple::cil(c), route.length(), 1.0, initial)
                            .expect("valid quintuple"),
                    ),
                    "fixed-threshold" => Box::new(
                        FixedThresholdPolicy::new(1.0, c, route.length(), 1.0, initial)
                            .expect("valid baseline"),
                    ),
                    "periodic" => Box::new(
                        PeriodicPolicy::new(2.0, c, route.length(), 1.0, initial)
                            .expect("valid baseline"),
                    ),
                    other => unreachable!("unknown policy {other}"),
                };
                let m = run_policy(trip, route, policy.as_mut(), &cost, config.dt, v_max)
                    .expect("simulation observations are well-formed");
                runs[pi].push(m);
            }
        }
        for (pi, label) in policies.iter().enumerate() {
            cells.push(SweepCell {
                c,
                policy: label.clone(),
                metrics: AggregateMetrics::from_runs(&runs[pi]),
            });
        }
    }
    SweepResult {
        cells,
        policies,
        c_values: config.c_values.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sweep(include_baselines: bool) -> SweepResult {
        run_sweep(&SweepConfig {
            seed: 11,
            workload: WorkloadConfig {
                n_trips: 6,
                duration: 20.0,
                ..WorkloadConfig::default()
            },
            c_values: vec![1.0, 10.0],
            include_baselines,
            dt: DEFAULT_TICK,
        })
    }

    #[test]
    fn sweep_shapes_hold() {
        let r = small_sweep(false);
        assert_eq!(r.cells.len(), 6);
        // Messages decrease in C for every paper policy.
        for p in ["dl", "ail", "cil"] {
            let cheap = r.get(p, 1.0).unwrap().messages;
            let dear = r.get(p, 10.0).unwrap().messages;
            assert!(cheap >= dear, "{p}: {cheap} < {dear}");
        }
        // Uncertainty increases in C.
        for p in ["dl", "ail", "cil"] {
            let cheap = r.get(p, 1.0).unwrap().avg_uncertainty;
            let dear = r.get(p, 10.0).unwrap().avg_uncertainty;
            assert!(dear >= cheap, "{p}: uncertainty {dear} < {cheap}");
        }
        // Bounds never violated.
        assert_eq!(r.total_bound_violations(), 0);
    }

    #[test]
    fn tables_render() {
        let r = small_sweep(true);
        assert_eq!(r.policies.len(), 5);
        for kind in [
            MetricKind::Messages,
            MetricKind::TotalCost,
            MetricKind::AvgUncertainty,
            MetricKind::AvgDeviation,
        ] {
            let t = r.table(kind);
            assert!(t.contains("ail"));
            assert!(t.lines().count() >= 4, "{t}");
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = small_sweep(false);
        let b = small_sweep(false);
        for (ca, cb) in a.cells.iter().zip(b.cells.iter()) {
            assert_eq!(ca.metrics, cb.metrics);
        }
    }
}
