//! Ablation studies for the quintuple's design choices (DESIGN.md §6).
//!
//! The paper fixes the simple fitting method and studies three predictor
//! choices; the quintuple makes every slot swappable. These experiments
//! vary one slot at a time on the same workload:
//!
//! - **A1 fitting**: simple vs least-squares fitting.
//! - **A2 predictor**: current vs average-since-update vs trip-average.
//! - **A3 adaptive**: the §3.1 regime-switching meta-policy vs its fixed
//!   components, per driving profile.
//! - **A4 gps noise**: policy robustness to positioning error (the paper
//!   assumes exact GPS; this quantifies the sensitivity).
//! - **A5 tick**: simulation-resolution sensitivity (a methodology check:
//!   results should be stable as the tick shrinks).

use modb_motion::{GpsSampler, TripProfile};
use modb_policy::{
    AdaptivePolicy, DeviationCost, EstimatorKind, FittingMethod, Policy, PolicyEngine,
    PositionUpdate, Quintuple, SpeedPredictor,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{AggregateMetrics, RunMetrics};
use crate::report::{fmt, render_table};
use crate::runner::{run_policy, DEFAULT_TICK};
use crate::workload::{Workload, WorkloadConfig};

/// One labelled variant's aggregate on a workload.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Aggregated metrics.
    pub metrics: AggregateMetrics,
}

fn aggregate_over<F>(workload: &Workload, mut make: F) -> AggregateMetrics
where
    F: FnMut(f64, PositionUpdate) -> Box<dyn Policy>,
{
    let cost = DeviationCost::UNIT_UNIFORM;
    let runs: Vec<RunMetrics> = workload
        .iter()
        .map(|(route, trip)| {
            let initial = PositionUpdate {
                time: trip.start_time(),
                arc: trip.start_arc(),
                speed: trip.speed_at(trip.start_time() + DEFAULT_TICK),
            };
            let mut p = make(route.length(), initial);
            run_policy(
                trip,
                route,
                p.as_mut(),
                &cost,
                DEFAULT_TICK,
                trip.max_speed().max(1e-6),
            )
            .expect("well-formed observations")
        })
        .collect();
    AggregateMetrics::from_runs(&runs)
}

/// A1: fitting-method ablation at update cost `c`.
pub fn run_fitting_ablation(seed: u64, cfg: WorkloadConfig, c: f64) -> Vec<AblationRow> {
    let workload = Workload::generate(seed, cfg);
    [FittingMethod::Simple, FittingMethod::LeastSquares]
        .into_iter()
        .map(|fitting| {
            let q = Quintuple {
                fitting,
                ..Quintuple::ail(c)
            };
            AblationRow {
                variant: format!("{fitting:?}"),
                metrics: aggregate_over(&workload, |len, init| {
                    Box::new(PolicyEngine::new(q, len, 1.0, init).expect("valid"))
                }),
            }
        })
        .collect()
}

/// A2: predictor ablation (immediate-linear estimator, all predictors).
pub fn run_predictor_ablation(seed: u64, cfg: WorkloadConfig, c: f64) -> Vec<AblationRow> {
    let workload = Workload::generate(seed, cfg);
    [
        SpeedPredictor::Current,
        SpeedPredictor::AverageSinceUpdate,
        SpeedPredictor::TripAverage,
    ]
    .into_iter()
    .map(|predictor| {
        let q = Quintuple {
            predictor,
            estimator: EstimatorKind::ImmediateLinear,
            ..Quintuple::ail(c)
        };
        AblationRow {
            variant: predictor.label().to_string(),
            metrics: aggregate_over(&workload, |len, init| {
                Box::new(PolicyEngine::new(q, len, 1.0, init).expect("valid"))
            }),
        }
    })
    .collect()
}

/// A3: adaptive meta-policy vs fixed ail and cil, per driving profile.
pub fn run_adaptive_ablation(seed: u64, n_trips: usize, duration: f64, c: f64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for profile in [TripProfile::Highway, TripProfile::City, TripProfile::Mixed] {
        let workload = Workload::generate(
            seed,
            WorkloadConfig {
                n_trips,
                duration,
                profile: Some(profile),
                ..WorkloadConfig::default()
            },
        );
        for variant in ["ail", "cil", "adaptive"] {
            let metrics = aggregate_over(&workload, |len, init| match variant {
                "ail" => {
                    Box::new(PolicyEngine::new(Quintuple::ail(c), len, 1.0, init).expect("valid"))
                }
                "cil" => {
                    Box::new(PolicyEngine::new(Quintuple::cil(c), len, 1.0, init).expect("valid"))
                }
                _ => Box::new(AdaptivePolicy::new(c, len, 1.0, init).expect("valid")),
            });
            rows.push(AblationRow {
                variant: format!("{profile:?}/{variant}"),
                metrics,
            });
        }
    }
    rows
}

/// A4: GPS-noise robustness — the onboard computer observes a noisy arc.
///
/// Implemented by perturbing the observation stream fed to the engine;
/// the *metrics* are still computed against the true position, so the
/// reported deviation cost reflects reality, not the corrupted belief.
pub fn run_noise_ablation(seed: u64, cfg: WorkloadConfig, c: f64, sds: &[f64]) -> Vec<AblationRow> {
    let workload = Workload::generate(seed, cfg);
    let cost = DeviationCost::UNIT_UNIFORM;
    sds.iter()
        .map(|&sd| {
            let sampler = if sd > 0.0 {
                GpsSampler::noisy(sd)
            } else {
                GpsSampler::exact()
            };
            let runs: Vec<RunMetrics> = workload
                .iter()
                .enumerate()
                .map(|(i, (route, trip))| {
                    let mut rng = StdRng::seed_from_u64(seed ^ (i as u64) << 17);
                    let initial = PositionUpdate {
                        time: trip.start_time(),
                        arc: trip.start_arc(),
                        speed: trip.speed_at(trip.start_time() + DEFAULT_TICK),
                    };
                    let mut engine =
                        PolicyEngine::new(Quintuple::ail(c), route.length(), 1.0, initial)
                            .expect("valid");
                    // Bespoke loop: feed noisy observations, measure truth.
                    let mut m = RunMetrics::default();
                    let n_ticks = (trip.curve().duration() / DEFAULT_TICK).round() as usize;
                    let mut dev_acc = 0.0;
                    let mut unc_acc = 0.0;
                    for k in 1..=n_ticks {
                        let t = trip.start_time() + k as f64 * DEFAULT_TICK;
                        let true_arc = trip.arc_at(route, t);
                        let observed = sampler.sample_arc(&mut rng, true_arc, route.length());
                        let true_dev = (true_arc - engine.database_arc(t)).abs();
                        m.deviation_cost += cost.tick_cost(true_dev, DEFAULT_TICK);
                        dev_acc += true_dev * DEFAULT_TICK;
                        unc_acc += engine.uncertainty(t, trip.max_speed().max(1e-6)) * DEFAULT_TICK;
                        m.max_deviation = m.max_deviation.max(true_dev);
                        if engine
                            .tick(t, observed, trip.speed_at(t))
                            .expect("well-formed")
                            .is_some()
                        {
                            m.messages += 1;
                        }
                    }
                    m.duration = n_ticks as f64 * DEFAULT_TICK;
                    m.avg_deviation = dev_acc / m.duration;
                    m.avg_uncertainty = unc_acc / m.duration;
                    m.total_cost = c * m.messages as f64 + m.deviation_cost;
                    m
                })
                .collect();
            AblationRow {
                variant: format!("sd={sd}"),
                metrics: AggregateMetrics::from_runs(&runs),
            }
        })
        .collect()
}

/// A5: tick-resolution sensitivity for the ail policy.
pub fn run_tick_ablation(
    seed: u64,
    cfg: WorkloadConfig,
    c: f64,
    ticks: &[f64],
) -> Vec<AblationRow> {
    let workload = Workload::generate(seed, cfg);
    let cost = DeviationCost::UNIT_UNIFORM;
    ticks
        .iter()
        .map(|&dt| {
            let runs: Vec<RunMetrics> = workload
                .iter()
                .map(|(route, trip)| {
                    let initial = PositionUpdate {
                        time: trip.start_time(),
                        arc: trip.start_arc(),
                        speed: trip.speed_at(trip.start_time() + dt),
                    };
                    let mut engine =
                        PolicyEngine::new(Quintuple::ail(c), route.length(), 1.0, initial)
                            .expect("valid");
                    run_policy(
                        trip,
                        route,
                        &mut engine,
                        &cost,
                        dt,
                        trip.max_speed().max(1e-6),
                    )
                    .expect("well-formed")
                })
                .collect();
            AblationRow {
                variant: format!("dt={dt:.4}"),
                metrics: AggregateMetrics::from_runs(&runs),
            }
        })
        .collect()
}

/// Renders an ablation table.
pub fn ablation_table(title: &str, rows: &[AblationRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.variant.clone(),
                fmt(r.metrics.messages),
                fmt(r.metrics.total_cost),
                fmt(r.metrics.avg_uncertainty),
                fmt(r.metrics.avg_deviation),
            ]
        })
        .collect();
    render_table(
        title,
        &["variant", "msgs/trip", "total cost", "avg unc", "avg dev"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            n_trips: 6,
            duration: 15.0,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn fitting_ablation_runs_both_variants() {
        let rows = run_fitting_ablation(3, cfg(), 5.0);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.metrics.total_cost > 0.0, "{}", r.variant);
            assert_eq!(r.metrics.bound_violations, 0);
        }
    }

    #[test]
    fn predictor_ablation_has_three_variants() {
        let rows = run_predictor_ablation(4, cfg(), 5.0);
        assert_eq!(rows.len(), 3);
        let labels: Vec<&str> = rows.iter().map(|r| r.variant.as_str()).collect();
        assert!(labels.contains(&"current"));
        assert!(labels.contains(&"avg-since-update"));
        assert!(labels.contains(&"trip-avg"));
    }

    #[test]
    fn adaptive_ablation_covers_profiles() {
        let rows = run_adaptive_ablation(5, 4, 15.0, 5.0);
        assert_eq!(rows.len(), 9);
        // The adaptive policy should never be much worse than the worse of
        // its two components on any profile.
        for profile in ["Highway", "City", "Mixed"] {
            let get = |v: &str| {
                rows.iter()
                    .find(|r| r.variant == format!("{profile}/{v}"))
                    .unwrap()
                    .metrics
                    .total_cost
            };
            let worst_fixed = get("ail").max(get("cil"));
            assert!(
                get("adaptive") <= worst_fixed * 1.25,
                "{profile}: adaptive {} vs worst fixed {worst_fixed}",
                get("adaptive")
            );
        }
    }

    #[test]
    fn noise_ablation_degrades_gracefully() {
        let rows = run_noise_ablation(6, cfg(), 5.0, &[0.0, 0.05, 0.2]);
        assert_eq!(rows.len(), 3);
        // More noise cannot *reduce* the achieved deviation much; costs
        // should be weakly increasing (allow 10 % wiggle for stochastic
        // effects).
        assert!(
            rows[2].metrics.avg_deviation + 1e-9 >= rows[0].metrics.avg_deviation * 0.9,
            "noise should not magically improve accuracy"
        );
    }

    #[test]
    fn tick_ablation_is_stable() {
        let rows = run_tick_ablation(7, cfg(), 5.0, &[1.0 / 30.0, 1.0 / 60.0, 1.0 / 120.0]);
        assert_eq!(rows.len(), 3);
        // Message counts at 2 s vs 0.5 s ticks should agree within 25 %.
        let m0 = rows[0].metrics.messages.max(1e-9);
        let m2 = rows[2].metrics.messages.max(1e-9);
        assert!(
            (m0 / m2 - 1.0).abs() < 0.25,
            "tick sensitivity too high: {m0} vs {m2}"
        );
    }

    #[test]
    fn table_renders() {
        let rows = run_fitting_ablation(8, cfg(), 5.0);
        let t = ablation_table("A1", &rows);
        assert!(t.contains("msgs/trip"));
    }
}
