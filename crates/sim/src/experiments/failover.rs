//! W10: leader failover — the write-availability gap across kill →
//! detect → elect → promote → repoint, with a zero-acked-loss contract.
//!
//! The paper's cost model prices the update stream; a deployment also
//! has to price the moments the update stream has nowhere to go. This
//! experiment builds the replication chain from DESIGN.md §16 — leader,
//! two chained standbys, a deadman coordinator probing the leader's
//! query front-end — then kills the leader and clocks every leg of the
//! recovery:
//!
//! - **detect**: kill → the probe streak crosses the threshold and the
//!   coordinator declares death;
//! - **elect + promote**: death declared → the freshest standby has
//!   sealed a new epoch and the survivor is repointed at it;
//! - **first ack**: kill → the first post-failover position update is
//!   acknowledged by the new leader. This is the write-availability gap
//!   a vehicle fleet actually experiences.
//!
//! The correctness columns are the contract and must hold everywhere:
//! **acked loss** is the count of leader-acknowledged WAL records
//! missing from the promotee's applied prefix (must be 0 — the election
//! picked a standby that had every shipped write), **parity** means the
//! promotee's object state equals the leader's state at the kill point
//! bit for bit, and **survivor** means the repointed standby converged
//! on the new epoch without re-bootstrapping. The millisecond columns
//! are the headline; CI asserts only the contract.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::{
    DurableDatabase, FailoverConfig, FailoverCoordinator, QueryClientConfig, QueryEngineConfig,
    QueryServerConfig, ReplicaConfig, ReplicationConfig, StandbyReplica,
};
use modb_wal::{FsyncPolicy, WalOptions};

use crate::report::{fmt, render_table};

/// One straight route long enough that no trajectory ever clamps.
const ROUTE_LEN: f64 = 1_000_000.0;
/// Simulated seconds between update batches.
const BATCH_DT: f64 = 0.5;
/// Chain-drain deadline; generous for loaded CI runners.
const DRAIN: Duration = Duration::from_secs(120);

/// One kill-and-recover trial of the W10 experiment.
#[derive(Debug, Clone)]
pub struct FailoverRow {
    /// Trial index (fresh cluster each time).
    pub trial: usize,
    /// Leader WAL frontier at the kill (acked records).
    pub records: u64,
    /// Kill → the deadman coordinator declares the leader dead.
    pub detect_ms: f64,
    /// Death declared → freshest standby promoted + survivor repointed.
    pub promote_ms: f64,
    /// Kill → first acked write on the new leader (the availability gap).
    pub first_ack_ms: f64,
    /// Acked records missing from the promotee's applied prefix (MUST be 0).
    pub acked_loss: u64,
    /// Promotee state equals the leader's state at the kill point.
    pub parity: bool,
    /// Repointed survivor converged on the new epoch, no re-bootstrap.
    pub survivor_ok: bool,
}

fn fresh_db() -> Database {
    let route = Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .expect("straight route");
    Database::new(
        RouteNetwork::from_routes([route]).expect("singleton network"),
        DatabaseConfig::default(),
    )
}

fn vehicle(id: u64, arc: f64, v_max: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: v_max * 0.5,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: v_max,
        trip_end: None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-exp-w10-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Full logical equality as a verdict (the experiment counterpart of the
/// test suite's `assert_converged`): same objects, same attributes, same
/// transaction-time history.
fn same_state(a: &Database, b: &Database) -> bool {
    if a.moving_count() != b.moving_count() || a.stationary_count() != b.stationary_count() {
        return false;
    }
    a.moving_ids()
        .all(|id| a.moving(id) == b.moving(id) && a.history_of(id) == b.history_of(id))
}

/// Runs one kill-and-recover trial. See the module docs for the legs.
fn run_trial(trial: usize, n_objects: usize, batches: u64) -> FailoverRow {
    let v_max = 2.0;
    let wal = WalOptions {
        fsync: FsyncPolicy::Never,
        max_segment_bytes: 64 * 1024,
        ..WalOptions::default()
    };
    let ldir = scratch_dir(&format!("t{trial}-leader"));
    let leader = DurableDatabase::create(&ldir, fresh_db(), wal).expect("leader");
    for i in 0..n_objects as u64 {
        leader
            .register_moving(vehicle(i, 10.0 + i as f64 * 3.0, v_max))
            .expect("register");
    }
    let repl_config = ReplicationConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        ..ReplicationConfig::default()
    };
    let leader_server = leader
        .serve_replication("127.0.0.1:0", repl_config.clone())
        .expect("serve replication");

    // The chain: f1 follows the leader, f2 follows f1. Both re-ship, so
    // either can be an upstream after the election.
    let replica_config = ReplicaConfig {
        wal,
        reconnect_backoff: Duration::from_millis(5),
        read_timeout: Duration::from_millis(2),
        ..ReplicaConfig::default()
    };
    let f1dir = scratch_dir(&format!("t{trial}-f1"));
    let f1 = StandbyReplica::open(
        &f1dir,
        leader_server.local_addr().to_string(),
        replica_config.clone(),
    )
    .expect("f1");
    let f1_ship = f1
        .serve_replication("127.0.0.1:0", repl_config.clone())
        .expect("f1 ship");
    let f2dir = scratch_dir(&format!("t{trial}-f2"));
    let f2 =
        StandbyReplica::open(&f2dir, f1_ship.local_addr().to_string(), replica_config).expect("f2");
    let f2_ship = f2
        .serve_replication("127.0.0.1:0", repl_config)
        .expect("f2 ship");
    let ship_addrs = vec![
        f1_ship.local_addr().to_string(),
        f2_ship.local_addr().to_string(),
    ];

    // A query front-end on the leader for the deadman probe.
    let engine = Arc::new(leader.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    }));
    engine.publish_now();
    let qserver = leader
        .serve_queries(engine, None, "127.0.0.1:0", QueryServerConfig::default())
        .expect("leader query front-end");
    let mut coordinator = FailoverCoordinator::new(
        qserver.local_addr().to_string(),
        FailoverConfig {
            probe_interval: Duration::from_millis(2),
            probe_failures: 3,
            client: QueryClientConfig {
                response_timeout: Duration::from_millis(100),
                connect_timeout: Some(Duration::from_millis(100)),
                ..QueryClientConfig::default()
            },
        },
    );
    assert!(coordinator.probe(), "live leader answers the probe");

    // Churn: truthful variable-speed updates through the leader.
    let mut arcs: Vec<f64> = (0..n_objects).map(|i| 10.0 + i as f64 * 3.0).collect();
    let mut speeds = vec![v_max * 0.5; n_objects];
    let mut last_t = vec![0.0f64; n_objects];
    for batch in 1..=batches {
        for u in 0..n_objects {
            let t = (batch - 1) as f64 * BATCH_DT + (u as f64 + 1.0) / n_objects as f64 * BATCH_DT;
            let dt = (t - last_t[u]).max(0.0);
            arcs[u] += speeds[u] * dt;
            last_t[u] = t;
            speeds[u] = if ((batch as usize) + u).is_multiple_of(3) {
                v_max
            } else {
                v_max * 0.25
            };
            leader
                .apply_update(
                    ObjectId(u as u64),
                    &UpdateMessage::basic(t, UpdatePosition::Arc(arcs[u]), speeds[u]),
                )
                .expect("update");
        }
    }
    let acked = leader.wal().next_lsn();
    let expected = leader.database().with_read(|db| db.clone());
    assert!(
        f1.wait_for_lsn(acked, DRAIN),
        "f1 never drained: {}",
        f1.stats()
    );
    assert!(
        f2.wait_for_lsn(acked, DRAIN),
        "f2 never drained: {}",
        f2.stats()
    );
    let f2_bootstraps = f2.stats().bootstraps;

    // Kill the leader: front-end, ship server, handle — all gone.
    let t_kill = Instant::now();
    qserver.shutdown();
    leader_server.shutdown();
    drop(leader);
    assert!(
        coordinator.await_death(DRAIN),
        "deadman never fired ({} failures)",
        coordinator.failures()
    );
    let detect_ms = t_kill.elapsed().as_secs_f64() * 1e3;

    // Elect the freshest standby, promote it, repoint the survivor.
    let t_elect = Instant::now();
    let outcome = FailoverCoordinator::fail_over(vec![f1, f2], &ship_addrs).expect("failover");
    let promote_ms = t_elect.elapsed().as_secs_f64() * 1e3;
    // Applied prefix = everything below the epoch seal.
    let applied_prefix = outcome.promoted_next_lsn.saturating_sub(1);
    let acked_loss = acked.saturating_sub(applied_prefix);
    let promoted = outcome.promoted;
    let parity = promoted
        .database()
        .with_read(|db| same_state(&expected, db));

    // The write path is back: first ack on the new leader closes the gap.
    promoted
        .apply_update(
            ObjectId(0),
            &UpdateMessage::basic(
                batches as f64 * BATCH_DT + 1.0,
                UpdatePosition::Arc(arcs[0] + 1.0),
                v_max * 0.5,
            ),
        )
        .expect("first post-failover ack");
    let first_ack_ms = t_kill.elapsed().as_secs_f64() * 1e3;

    // The survivor follows the promotee into the new epoch — streamed
    // from its watermark, not re-bootstrapped.
    let mut survivors = outcome.survivors;
    let survivor = survivors.pop().expect("one survivor");
    let frontier = promoted.wal().next_lsn();
    let survivor_ok = survivor.wait_for_lsn(frontier, DRAIN)
        && survivor.epoch() == promoted.epoch()
        && survivor.stats().bootstraps == f2_bootstraps
        && promoted
            .database()
            .with_read(|a| survivor.database().with_read(|b| same_state(a, b)));

    survivor.shutdown();
    f2_ship.shutdown();
    f1_ship.shutdown();
    drop(promoted);
    for dir in [&ldir, &f1dir, &f2dir] {
        let _ = std::fs::remove_dir_all(dir);
    }

    FailoverRow {
        trial,
        records: acked,
        detect_ms,
        promote_ms,
        first_ack_ms,
        acked_loss,
        parity,
        survivor_ok,
    }
}

/// Runs the experiment: `trials` independent kill-and-recover rounds.
pub fn run_failover(n_objects: usize, trials: usize, batches: u64) -> Vec<FailoverRow> {
    (0..trials.max(1))
        .map(|t| run_trial(t, n_objects.max(4), batches.max(2)))
        .collect()
}

/// `true` iff every trial held the contract: zero acked loss, state
/// parity, survivor converged.
pub fn failover_contract(rows: &[FailoverRow]) -> bool {
    rows.iter()
        .all(|r| r.acked_loss == 0 && r.parity && r.survivor_ok)
}

/// Renders the W10 report table.
pub fn failover_table(n_objects: usize, rows: &[FailoverRow]) -> String {
    render_table(
        &format!(
            "W10: leader failover at {n_objects} objects \
             (kill → detect → promote → first ack; zero acked loss is the contract)"
        ),
        &[
            "trial",
            "records",
            "detect ms",
            "promote ms",
            "first ack ms",
            "acked loss",
            "parity",
            "survivor",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.trial.to_string(),
                    r.records.to_string(),
                    fmt(r.detect_ms),
                    fmt(r.promote_ms),
                    fmt(r.first_ack_ms),
                    r.acked_loss.to_string(),
                    if r.parity { "yes" } else { "NO" }.to_string(),
                    if r.survivor_ok { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Serializes the rows as a small JSON document (the CI perf artifact
/// `BENCH_failover.json`).
pub fn failover_json(rows: &[FailoverRow]) -> String {
    let mut out = String::from("{\n  \"trials\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"trial\": {}, \"records\": {}, \"detect_ms\": {:.3}, \
             \"promote_ms\": {:.3}, \"first_ack_ms\": {:.3}, \"acked_loss\": {}, \
             \"parity\": {}, \"survivor_ok\": {}}}{}\n",
            r.trial,
            r.records,
            r.detect_ms,
            r.promote_ms,
            r.first_ack_ms,
            r.acked_loss,
            r.parity,
            r.survivor_ok,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"contract\": {}\n}}\n",
        failover_contract(rows)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_trial_holds_the_contract() {
        // Correctness only — the millisecond columns are hardware-bound.
        let rows = run_failover(8, 1, 4);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.records > 0);
        assert_eq!(r.acked_loss, 0, "an acked write went missing");
        assert!(r.parity, "promotee state diverged from the dead leader");
        assert!(r.survivor_ok, "survivor never converged on the new epoch");
        assert!(r.detect_ms > 0.0 && r.first_ack_ms >= r.detect_ms);
        assert!(failover_contract(&rows));
        let table = failover_table(8, &rows);
        assert!(table.contains("W10"));
        assert!(table.contains("acked loss"));
        let json = failover_json(&rows);
        assert!(json.contains("\"contract\": true"));
    }
}
