//! F5 / T3 / F6: the §4 indexing experiments.
//!
//! - **F5**: range-query latency and work, 3-D R\*-tree vs exhaustive
//!   scan, as the fleet grows — the sublinearity claim.
//! - **T3**: may/must answer quality — simulated ground-truth positions
//!   must satisfy `must ⊆ actually-in-G ⊆ must ∪ may`.
//! - **F6**: index-maintenance throughput for position updates (§4.2's
//!   delete-old-plane / insert-new-plane step).

use std::time::Instant;

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::{Point, Polygon, Rect};
use modb_index::QueryRegion;
use modb_policy::BoundKind;
use modb_routes::{generators, Direction, RouteNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{fmt, render_table};
use crate::workload::fleet_positions;

/// Update cost used by the indexed fleet's policies.
const FLEET_C: f64 = 5.0;

/// Builds a city database: a grid network with `n` moving objects using
/// the ail policy descriptor.
pub fn build_city_db(seed: u64, n: usize, grid: usize) -> Database {
    let network = generators::grid_network(grid, grid, 1.0, 0).expect("valid grid");
    let route_ids = network.route_ids();
    let fleet = fleet_positions(seed, n, &route_ids, |rid| {
        network.get(rid).expect("generated route").length()
    });
    let mut db = Database::new(network, DatabaseConfig::default());
    for (i, (rid, arc, speed)) in fleet.into_iter().enumerate() {
        let route = db.network().get(rid).expect("route exists");
        let obj = MovingObject {
            id: ObjectId(i as u64),
            name: format!("veh-{i}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: rid,
                start_position: route.point_at(arc),
                start_arc: arc,
                direction: if i % 2 == 0 {
                    Direction::Forward
                } else {
                    Direction::Backward
                },
                speed,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: FLEET_C,
                },
            },
            max_speed: 1.5,
            trip_end: Some(60.0),
        };
        db.register_moving(obj).expect("valid object");
    }
    db
}

/// Deterministic query regions over a network's extent: squares of
/// `side` miles at time `t`.
pub fn query_regions(
    network: &RouteNetwork,
    n: usize,
    side: f64,
    t: f64,
    seed: u64,
) -> Vec<QueryRegion> {
    let bbox = network.bbox();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(bbox.min.x..(bbox.max.x - side).max(bbox.min.x + 1e-9));
            let y = rng.gen_range(bbox.min.y..(bbox.max.y - side).max(bbox.min.y + 1e-9));
            let g =
                Polygon::rectangle(&Rect::new(Point::new(x, y), Point::new(x + side, y + side)))
                    .expect("valid rectangle");
            QueryRegion::at_instant(g, t)
        })
        .collect()
}

/// One fleet-size row of the sublinearity experiment.
#[derive(Debug, Clone, Copy)]
pub struct SublinearRow {
    /// Fleet size.
    pub n: usize,
    /// Mean index-query latency (microseconds).
    pub index_us: f64,
    /// Mean scan-query latency (microseconds).
    pub scan_us: f64,
    /// Scan / index speedup.
    pub speedup: f64,
    /// Mean R\*-tree nodes visited per query.
    pub nodes_visited: f64,
    /// Total nodes in the tree.
    pub tree_nodes: usize,
    /// Mean candidates per query.
    pub candidates: f64,
}

/// Runs F5 for the given fleet sizes.
pub fn run_sublinear(sizes: &[usize], queries_per_size: usize) -> Vec<SublinearRow> {
    sizes
        .iter()
        .map(|&n| {
            let db = build_city_db(99, n, 20);
            let regions = query_regions(db.network(), queries_per_size, 2.0, 3.0, 7);
            // Warm-up + correctness: index and scan must agree.
            for r in &regions {
                let a = db.range_query(r).expect("query ok");
                let b = db.range_query_scan(r).expect("query ok");
                assert_eq!(a.must, b.must, "index/scan must-set mismatch");
                assert_eq!(a.may, b.may, "index/scan may-set mismatch");
            }
            let t0 = Instant::now();
            let mut nodes = 0usize;
            let mut cands = 0usize;
            for r in &regions {
                let a = db.range_query(r).expect("query ok");
                nodes += a.stats.nodes_visited;
                cands += a.candidates;
            }
            let index_us = t0.elapsed().as_secs_f64() * 1e6 / regions.len() as f64;
            let t1 = Instant::now();
            for r in &regions {
                let _ = db.range_query_scan(r).expect("query ok");
            }
            let scan_us = t1.elapsed().as_secs_f64() * 1e6 / regions.len() as f64;
            let (_, tree_nodes, _) = db.index_tree_stats();
            SublinearRow {
                n,
                index_us,
                scan_us,
                speedup: scan_us / index_us.max(1e-9),
                nodes_visited: nodes as f64 / regions.len() as f64,
                tree_nodes,
                candidates: cands as f64 / regions.len() as f64,
            }
        })
        .collect()
}

/// Renders the F5 table.
pub fn sublinear_table(rows: &[SublinearRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.n.to_string(),
                fmt(r.index_us),
                fmt(r.scan_us),
                format!("{:.1}x", r.speedup),
                fmt(r.nodes_visited),
                fmt(r.candidates),
            ]
        })
        .collect();
    render_table(
        "F5: range-query cost, 3-D R*-tree vs exhaustive scan (2x2-mile queries, t=3)",
        &[
            "fleet",
            "index us/q",
            "scan us/q",
            "speedup",
            "nodes/q",
            "cands/q",
        ],
        &table_rows,
    )
}

/// Renders the F5 rows as the `BENCH_index_sublinear.json` document.
pub fn sublinear_json(rows: &[SublinearRow]) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fleet\": {}, \"index_us\": {:.2}, \"scan_us\": {:.2}, \
             \"speedup\": {:.2}, \"nodes_per_query\": {:.2}, \"tree_nodes\": {}, \
             \"cands_per_query\": {:.2}}}{}\n",
            r.n,
            r.index_us,
            r.scan_us,
            r.speedup,
            r.nodes_visited,
            r.tree_nodes,
            r.candidates,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// T3 result: answer-quality counts over simulated ground truth.
#[derive(Debug, Clone, Copy, Default)]
pub struct MayMustResult {
    /// Queries evaluated.
    pub queries: usize,
    /// Total must answers.
    pub must: usize,
    /// Total may answers.
    pub may: usize,
    /// Ground-truth objects inside their query polygon.
    pub actually_in: usize,
    /// Soundness violations: a `must` object actually outside G, or an
    /// in-G object missing from must ∪ may. Expected 0.
    pub violations: usize,
}

/// Runs T3: simulate each object's actual position uniformly inside its
/// uncertainty interval (the tightest adversary consistent with the
/// bounds) and check Theorems 5–6 semantics.
pub fn run_may_must(n_objects: usize, n_queries: usize, t: f64) -> MayMustResult {
    let db = build_city_db(123, n_objects, 20);
    let mut rng = StdRng::seed_from_u64(321);
    // Ground truth: a concrete arc for every object, inside its interval.
    let mut actual: Vec<(ObjectId, Point)> = Vec::with_capacity(n_objects);
    for id in db.moving_ids() {
        let ans = db.position_of(id, t).expect("known object");
        let (lo, hi) = ans.interval;
        let arc = if hi > lo { rng.gen_range(lo..hi) } else { lo };
        let obj = db.moving(id).expect("known object");
        let route = db.network().get(obj.attr.route).expect("route exists");
        actual.push((id, route.point_at(arc)));
    }
    let regions = query_regions(db.network(), n_queries, 3.0, t, 555);
    let mut result = MayMustResult {
        queries: n_queries,
        ..MayMustResult::default()
    };
    for region in &regions {
        let answer = db.range_query(region).expect("query ok");
        result.must += answer.must.len();
        result.may += answer.may.len();
        let all = answer.all();
        for (id, pos) in &actual {
            let inside = region.polygon().contains_point(*pos);
            if inside {
                result.actually_in += 1;
                if !all.contains(id) {
                    result.violations += 1; // missed an in-G object
                }
            } else if answer.must.contains(id) {
                result.violations += 1; // must object actually outside
            }
        }
    }
    result
}

/// Renders the T3 table.
pub fn may_must_table(r: &MayMustResult) -> String {
    render_table(
        "T3: may/must answer quality over simulated ground truth",
        &["queries", "must", "may", "actually in G", "violations"],
        &[vec![
            r.queries.to_string(),
            r.must.to_string(),
            r.may.to_string(),
            r.actually_in.to_string(),
            r.violations.to_string(),
        ]],
    )
}

/// F6 result: index-maintenance throughput.
#[derive(Debug, Clone, Copy)]
pub struct IndexUpdateRow {
    /// Fleet size.
    pub n: usize,
    /// Position updates applied.
    pub updates: usize,
    /// Mean microseconds per update (attribute write + plane delete +
    /// plane insert).
    pub us_per_update: f64,
}

/// Runs F6: apply a position update to every object and time it.
pub fn run_index_update(sizes: &[usize]) -> Vec<IndexUpdateRow> {
    sizes
        .iter()
        .map(|&n| {
            let mut db = build_city_db(7, n, 20);
            let ids: Vec<ObjectId> = db.moving_ids().collect();
            let t0 = Instant::now();
            for (k, id) in ids.iter().enumerate() {
                let obj = db.moving(*id).expect("known");
                let route = db.network().get(obj.attr.route).expect("route");
                let new_arc = (obj.attr.start_arc + 0.5).min(route.length());
                let msg = UpdateMessage::basic(
                    1.0 + (k as f64) * 1e-6,
                    UpdatePosition::Arc(new_arc),
                    0.8,
                );
                db.apply_update(*id, &msg).expect("valid update");
            }
            IndexUpdateRow {
                n,
                updates: ids.len(),
                us_per_update: t0.elapsed().as_secs_f64() * 1e6 / ids.len() as f64,
            }
        })
        .collect()
}

/// Renders the F6 table.
pub fn index_update_table(rows: &[IndexUpdateRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.n.to_string(), r.updates.to_string(), fmt(r.us_per_update)])
        .collect();
    render_table(
        "F6: index maintenance on position updates (delete old o-plane, insert new)",
        &["fleet", "updates", "us/update"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_db_builds() {
        let db = build_city_db(1, 50, 10);
        assert_eq!(db.moving_count(), 50);
    }

    #[test]
    fn sublinear_index_agrees_with_scan_and_wins() {
        let rows = run_sublinear(&[200, 800], 10);
        assert_eq!(rows.len(), 2);
        // The index visits far fewer entries than the fleet size at the
        // larger scale; correctness is asserted inside run_sublinear.
        let large = rows[1];
        assert!(
            large.candidates < large.n as f64 / 2.0,
            "index candidates {} should be far below fleet {}",
            large.candidates,
            large.n
        );
    }

    #[test]
    fn may_must_has_no_violations() {
        let r = run_may_must(150, 15, 3.0);
        assert_eq!(r.violations, 0, "{r:?}");
        assert!(r.must + r.may > 0, "some answers expected");
    }

    #[test]
    fn index_update_runs() {
        let rows = run_index_update(&[100]);
        assert_eq!(rows[0].updates, 100);
        assert!(rows[0].us_per_update > 0.0);
    }

    #[test]
    fn sublinear_json_renders() {
        let rows = run_sublinear(&[100], 5);
        let json = sublinear_json(&rows);
        assert!(json.contains("\"fleet\": 100"));
        assert!(json.contains("\"tree_nodes\""));
        assert!(rows[0].tree_nodes > 0, "real tree-node count reported");
    }

    #[test]
    fn tables_render() {
        assert!(sublinear_table(&run_sublinear(&[100], 5)).contains("speedup"));
        assert!(may_must_table(&run_may_must(50, 5, 2.0)).contains("violations"));
        assert!(index_update_table(&run_index_update(&[50])).contains("us/update"));
    }
}
