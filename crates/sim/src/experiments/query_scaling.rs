//! W2: range-query throughput scaling — global lock vs epoch snapshots.
//!
//! The paper's workload (§1) is read-heavy: many users pose range queries
//! while vehicles stream position updates. This experiment measures how
//! the two read paths scale with query threads under that contention:
//!
//! - **locked**: every query takes the [`SharedDatabase`] read lock for
//!   its whole filter + refine pass, serializing against the writer.
//! - **snapshot**: queries run on [`modb_server::QueryEngine`] against
//!   the latest published epoch snapshot — zero locks held during filter
//!   and refine; the writer only ever contends with the brief publisher
//!   clone.
//!
//! A background writer applies position updates as fast as it can for
//! the whole measurement window, in both modes, so the numbers include
//! the reader–writer interference the epoch design removes. Snapshot
//! answers are at most one epoch interval stale — the paper's §3.3
//! deviation bound grows by at most `D·Δt` for speed bound `D`, the same
//! imprecision currency the update policies trade in.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_index::QueryRegion;
use modb_server::{QueryEngineConfig, SharedDatabase};

use crate::experiments::indexing::{build_city_db, query_regions};
use crate::report::{fmt, render_table};

/// Epoch republish interval for the snapshot mode: the staleness bound
/// Δt of the measurement.
pub const EPOCH_INTERVAL_MS: u64 = 25;

/// The read paths compared by the experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryMode {
    /// Queries through the global readers–writer lock.
    Locked,
    /// Queries through the epoch-snapshot engine.
    Snapshot,
}

impl QueryMode {
    /// Human-readable label for the report table.
    pub fn label(&self) -> &'static str {
        match self {
            QueryMode::Locked => "locked",
            QueryMode::Snapshot => "snapshot",
        }
    }
}

/// One (mode, thread-count) measurement.
#[derive(Debug, Clone)]
pub struct QueryScalingRow {
    /// Mode label.
    pub label: &'static str,
    /// Concurrent query threads.
    pub threads: usize,
    /// Range queries answered inside the window.
    pub queries: u64,
    /// Queries per second (all threads combined).
    pub qps: f64,
    /// Mean per-query latency in microseconds.
    pub mean_us: f64,
    /// Throughput relative to the locked mode at the same thread count
    /// (1.0 for the locked rows themselves).
    pub speedup: f64,
    /// Updates the background writer applied during the window — the
    /// ingest side of the interference.
    pub ingest_per_sec: f64,
}

/// Runs one (mode, threads) window and returns (queries, writer updates).
fn run_window(
    db: &SharedDatabase,
    regions: &[QueryRegion],
    mode: QueryMode,
    threads: usize,
    window: Duration,
    n_objects: usize,
) -> (u64, u64) {
    let engine = match mode {
        QueryMode::Locked => None,
        QueryMode::Snapshot => Some(db.query_engine(QueryEngineConfig {
            epoch_interval: Some(Duration::from_millis(EPOCH_INTERVAL_MS)),
            workers: threads.clamp(1, 4),
            ..QueryEngineConfig::default()
        })),
    };
    let stop = Arc::new(AtomicBool::new(false));
    let queries = AtomicU64::new(0);
    let writes = AtomicU64::new(0);
    std::thread::scope(|s| {
        // The background writer: monotone per-object report times, as
        // fast as the write lock admits.
        {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            let writes = &writes;
            s.spawn(move || {
                let mut round = 0u64;
                let mut applied = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    round += 1;
                    // Keep times below the query time so the fleet stays
                    // query-visible for the whole window.
                    let t = round as f64 * 1e-5;
                    for i in 0..64u64 {
                        let id = (round * 64 + i) % n_objects as u64;
                        let _ = db.apply_update(
                            ObjectId(id),
                            &UpdateMessage::basic(t, UpdatePosition::Arc(0.5), 0.7),
                        );
                        applied += 1;
                    }
                }
                writes.fetch_add(applied, Ordering::Relaxed);
            });
        }
        for p in 0..threads {
            let db = db.clone();
            let stop = Arc::clone(&stop);
            let engine = engine.as_ref();
            let queries = &queries;
            s.spawn(move || {
                let deadline = Instant::now() + window;
                let mut count = 0u64;
                let mut i = p; // stagger the region sequence per thread
                while Instant::now() < deadline {
                    let region = &regions[i % regions.len()];
                    i += 1;
                    let answer = match engine {
                        Some(e) => e.range_query(region),
                        None => db.range_query(region),
                    };
                    answer.expect("range query succeeds");
                    count += 1;
                }
                queries.fetch_add(count, Ordering::Relaxed);
                if p == 0 {
                    stop.store(true, Ordering::Relaxed);
                }
            });
        }
    });
    (
        queries.load(Ordering::Relaxed),
        writes.load(Ordering::Relaxed),
    )
}

/// Runs the experiment: for each thread count, the same query mix and
/// writer churn through both read paths over a fresh copy of the same
/// seeded city fleet.
pub fn run_query_scaling(
    n_objects: usize,
    grid: usize,
    thread_counts: &[usize],
    window_ms: u64,
) -> Vec<QueryScalingRow> {
    let window = Duration::from_millis(window_ms.max(1));
    let mut rows = Vec::with_capacity(thread_counts.len() * 2);
    for &threads in thread_counts {
        let mut locked_qps = 0.0;
        for mode in [QueryMode::Locked, QueryMode::Snapshot] {
            // A fresh fleet per window: both modes start from identical
            // state and the writer's clock restarts.
            let raw = build_city_db(42, n_objects, grid);
            let regions = query_regions(raw.network(), 64, 2.0, 5.0, 7);
            let db = SharedDatabase::new(raw);
            let (queries, writes) = run_window(&db, &regions, mode, threads, window, n_objects);
            let secs = window.as_secs_f64();
            let qps = queries as f64 / secs;
            if mode == QueryMode::Locked {
                locked_qps = qps;
            }
            rows.push(QueryScalingRow {
                label: mode.label(),
                threads,
                queries,
                qps,
                mean_us: if queries == 0 {
                    0.0
                } else {
                    secs * 1e6 * threads as f64 / queries as f64
                },
                speedup: if mode == QueryMode::Locked || locked_qps == 0.0 {
                    1.0
                } else {
                    qps / locked_qps
                },
                ingest_per_sec: writes as f64 / secs,
            });
        }
    }
    rows
}

/// Renders the W2 report table.
pub fn query_scaling_table(rows: &[QueryScalingRow]) -> String {
    render_table(
        "W2: range-query scaling under concurrent ingest (locked vs epoch snapshots)",
        &[
            "mode",
            "threads",
            "queries",
            "queries/s",
            "mean us",
            "speedup",
            "ingest/s",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.threads.to_string(),
                    r.queries.to_string(),
                    fmt(r.qps),
                    fmt(r.mean_us),
                    fmt(r.speedup),
                    fmt(r.ingest_per_sec),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_consistent_rows() {
        let rows = run_query_scaling(200, 6, &[1, 2], 40);
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].label, "locked");
            assert_eq!(pair[1].label, "snapshot");
            assert_eq!(pair[0].threads, pair[1].threads);
            assert_eq!(pair[0].speedup, 1.0);
            assert!(pair[1].speedup > 0.0);
        }
        for r in &rows {
            assert!(
                r.queries > 0,
                "{} at {} threads answered none",
                r.label,
                r.threads
            );
            assert!(r.qps > 0.0);
            assert!(r.mean_us > 0.0);
        }
        let table = query_scaling_table(&rows);
        assert!(table.contains("snapshot"));
        assert!(table.contains("queries/s"));
    }
}
