//! W9: read fan-out — aggregate query throughput vs follower count on a
//! leader + chained-follower topology, with parity and typed-staleness
//! checks.
//!
//! The paper's deployment separates the write stream (vehicles reporting
//! positions) from the read stream (users posing queries); once standbys
//! can answer the query protocol themselves (DESIGN.md §15), reads scale
//! by adding followers while the leader keeps ingesting. Followers are
//! *chained* — follower *i* ships its WAL from follower *i−1*, so the
//! leader pays for one downstream regardless of fan-out.
//!
//! Each phase builds the chain at one fan-out, drives truthful updates
//! through the leader, waits for the chain to drain, and then checks:
//!
//! - **parity**: a read-your-writes batch floored at the leader's WAL
//!   frontier, answered by each follower, must match the leader's local
//!   verdicts statement for statement (the chain is quiescent, so the
//!   lag clock is zero and no widening applies — answers are
//!   bit-identical);
//! - **staleness is typed**: a floor the chain has never reached must
//!   come back as the protocol's `Stale { applied, required }` refusal
//!   within the server's wait deadline — never a hang, never a silently
//!   stale answer;
//! - **throughput**: one client thread per follower runs query batches
//!   concurrently; the row reports aggregate statements per second.
//!
//! QPS scaling with fan-out is the headline on multi-core hardware; the
//! parity and staleness columns are the correctness contract and must
//! hold everywhere (CI asserts only those — a 1-core runner serializes
//! the QPS phase).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::{
    BatchOutcome, DurableDatabase, QueryClient, QueryEngineConfig, QueryServerConfig,
    ReplicaConfig, ReplicationConfig, StandbyReplica,
};
use modb_wal::{FsyncPolicy, WalOptions};

use crate::report::{fmt, render_table};

/// One straight route long enough that no trajectory ever clamps.
const ROUTE_LEN: f64 = 1_000_000.0;
/// Simulated seconds between update batches.
const BATCH_DT: f64 = 0.5;

/// One fan-out phase of the W9 experiment.
#[derive(Debug, Clone)]
pub struct ReadFanoutRow {
    /// Followers in the chain (leader + this many standbys).
    pub fanout: usize,
    /// Leader WAL frontier after churn (records written).
    pub records: u64,
    /// `true` iff every follower's floored batch matched the leader's
    /// local verdicts statement for statement.
    pub parity: bool,
    /// `true` iff an unreachable floor came back as a typed `Stale`
    /// refusal from every follower (bounded wait, session intact).
    pub stale_typed: bool,
    /// Query batches run per client thread in the QPS phase.
    pub rounds: usize,
    /// Total statements answered across all followers.
    pub statements: u64,
    /// Wall-clock seconds for the QPS phase.
    pub elapsed_s: f64,
    /// Aggregate statements per second across the fleet.
    pub qps: f64,
}

fn fresh_db() -> Database {
    let route = Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .expect("straight route");
    Database::new(
        RouteNetwork::from_routes([route]).expect("singleton network"),
        DatabaseConfig::default(),
    )
}

fn vehicle(id: u64, arc: f64, v_max: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: v_max * 0.5,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: v_max,
        trip_end: None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-exp-w9-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A three-statement script touching all query kinds at time `t`.
fn script(t: f64, n_objects: usize, salt: usize) -> String {
    let id = salt % n_objects;
    let x0 = (salt % 7) as f64 * 10.0;
    format!(
        "RETRIEVE POSITION OF OBJECT {id} AT TIME {t}; \
         RETRIEVE OBJECTS INSIDE RECT ({x0}, -1, {ROUTE_LEN}, 1) AT TIME {t}; \
         RETRIEVE 5 NEAREST OBJECTS TO POINT ({}, 0) AT TIME {t}",
        (salt % 11) as f64 * 20.0
    )
}

/// One follower in the chain: the standby, its re-shipping server (the
/// upstream for the next link), and its query front-end.
struct Link {
    replica: StandbyReplica,
    repl_server: modb_server::ReplicationServer,
    query_server: modb_server::QueryServer,
    dir: PathBuf,
}

/// Runs one fan-out phase. See the module docs for what each column
/// asserts.
fn run_phase(n_objects: usize, fanout: usize, batches: u64, rounds: usize) -> ReadFanoutRow {
    let v_max = 2.0;
    let wal = WalOptions {
        fsync: FsyncPolicy::Never,
        max_segment_bytes: 64 * 1024,
        ..WalOptions::default()
    };
    let ldir = scratch_dir(&format!("f{fanout}-leader"));
    let leader = DurableDatabase::create(&ldir, fresh_db(), wal).expect("leader");
    for i in 0..n_objects as u64 {
        leader
            .register_moving(vehicle(i, 10.0 + i as f64 * 3.0, v_max))
            .expect("register");
    }
    let repl_config = ReplicationConfig {
        poll_interval: Duration::from_millis(1),
        heartbeat_interval: Duration::from_millis(10),
        ..ReplicationConfig::default()
    };
    let leader_server = leader
        .serve_replication("127.0.0.1:0", repl_config.clone())
        .expect("serve replication");

    // Build the chain: link 0 follows the leader, link i follows link
    // i−1's re-shipping server.
    let mut chain: Vec<Link> = Vec::with_capacity(fanout);
    for i in 0..fanout {
        let upstream = match chain.last() {
            None => leader_server.local_addr().to_string(),
            Some(link) => link.repl_server.local_addr().to_string(),
        };
        let dir = scratch_dir(&format!("f{fanout}-follower-{i}"));
        let replica = StandbyReplica::open(
            &dir,
            upstream,
            ReplicaConfig {
                wal,
                read_timeout: Duration::from_millis(2),
                ..ReplicaConfig::default()
            },
        )
        .expect("replica");
        let repl_server = replica
            .serve_replication("127.0.0.1:0", repl_config.clone())
            .expect("follower serve replication");
        let engine = Arc::new(
            replica
                .database()
                .query_engine(QueryEngineConfig::default()),
        );
        let query_server = replica
            .serve_queries(
                engine,
                "127.0.0.1:0",
                QueryServerConfig {
                    stale_deadline: Duration::from_millis(100),
                    ..QueryServerConfig::default()
                },
            )
            .expect("follower serve queries");
        chain.push(Link {
            replica,
            repl_server,
            query_server,
            dir,
        });
    }

    // Churn: truthful variable-speed updates through the leader.
    let mut arcs: Vec<f64> = (0..n_objects).map(|i| 10.0 + i as f64 * 3.0).collect();
    let mut speeds = vec![v_max * 0.5; n_objects];
    let mut last_t = vec![0.0f64; n_objects];
    for batch in 1..=batches {
        for u in 0..n_objects {
            let t = (batch - 1) as f64 * BATCH_DT + (u as f64 + 1.0) / n_objects as f64 * BATCH_DT;
            let dt = (t - last_t[u]).max(0.0);
            arcs[u] += speeds[u] * dt;
            last_t[u] = t;
            speeds[u] = if ((batch as usize) + u).is_multiple_of(3) {
                v_max
            } else {
                v_max * 0.25
            };
            leader
                .apply_update(
                    ObjectId(u as u64),
                    &UpdateMessage::basic(t, UpdatePosition::Arc(arcs[u]), speeds[u]),
                )
                .expect("update");
        }
        std::thread::yield_now();
    }

    // Drain the whole chain to the leader's frontier.
    let frontier = leader.wal().next_lsn();
    for (i, link) in chain.iter().enumerate() {
        assert!(
            link.replica
                .wait_for_lsn(frontier, Duration::from_secs(120)),
            "fanout {fanout}: follower {i} never drained ({})",
            link.replica.stats()
        );
    }

    // Leader reference verdicts for the parity batch.
    let query_t = batches as f64 * BATCH_DT;
    let parity_script = script(query_t, n_objects, 1);
    let leader_engine = leader.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    });
    leader_engine.publish_now();
    let leader_verdicts = leader_engine.run_batch(&parity_script);

    let mut parity = true;
    let mut stale_typed = true;
    for (i, link) in chain.iter().enumerate() {
        let mut client =
            QueryClient::connect(link.query_server.local_addr()).expect("connect follower");
        // Floored at the frontier the follower has applied: it must
        // republish to cover it and answer, and — quiescent, lag clock
        // zero — answer bit-identically to the leader.
        match client
            .batch_attempt(&parity_script, frontier)
            .expect("parity batch")
        {
            BatchOutcome::Done(remote) => {
                let same = remote.len() == leader_verdicts.len()
                    && remote
                        .iter()
                        .zip(&leader_verdicts)
                        .all(|(r, l)| match (r, l) {
                            (Ok(r), Ok(l)) => r == l,
                            (Err(r), Err(l)) => r == &l.to_string(),
                            _ => false,
                        });
                if !same {
                    eprintln!("fanout {fanout}: follower {i} diverged from the leader");
                    parity = false;
                }
            }
            BatchOutcome::Stale { applied, required } => {
                eprintln!(
                    "fanout {fanout}: follower {i} refused a reachable floor \
                     (applied {applied}, required {required})"
                );
                parity = false;
            }
        }
        // A floor nobody has reached must refuse, typed and bounded.
        let unreachable = frontier + 1_000_000;
        let t0 = Instant::now();
        match client.batch_attempt(&parity_script, unreachable) {
            Ok(BatchOutcome::Stale { required, .. }) if required == unreachable => {}
            other => {
                eprintln!("fanout {fanout}: follower {i} unreachable floor gave {other:?}");
                stale_typed = false;
            }
        }
        if t0.elapsed() > Duration::from_secs(10) {
            eprintln!("fanout {fanout}: follower {i} staleness refusal was not bounded");
            stale_typed = false;
        }
        client.close();
    }

    // QPS phase: one client thread per follower, `rounds` batches each.
    let t0 = Instant::now();
    let handles: Vec<std::thread::JoinHandle<u64>> = chain
        .iter()
        .map(|link| {
            let addr = link.query_server.local_addr();
            std::thread::spawn(move || {
                let mut client = QueryClient::connect(addr).expect("qps connect");
                let mut answered = 0u64;
                for r in 0..rounds {
                    let src = script(query_t, n_objects, r);
                    let verdicts = client.batch(&src).expect("qps batch");
                    answered += verdicts.len() as u64;
                }
                client.close();
                answered
            })
        })
        .collect();
    let statements: u64 = handles
        .into_iter()
        .map(|h| h.join().expect("qps thread"))
        .sum();
    let elapsed_s = t0.elapsed().as_secs_f64();

    for link in chain.into_iter().rev() {
        link.query_server.shutdown();
        link.repl_server.shutdown();
        link.replica.shutdown();
        let _ = std::fs::remove_dir_all(&link.dir);
    }
    leader_server.shutdown();
    let _ = std::fs::remove_dir_all(&ldir);

    ReadFanoutRow {
        fanout,
        records: frontier,
        parity,
        stale_typed,
        rounds,
        statements,
        elapsed_s,
        qps: statements as f64 / elapsed_s.max(1e-9),
    }
}

/// Runs the experiment: one leader + chained-follower phase per fan-out.
pub fn run_read_fanout(
    n_objects: usize,
    fanouts: &[usize],
    batches: u64,
    rounds: usize,
) -> Vec<ReadFanoutRow> {
    fanouts
        .iter()
        .map(|&f| run_phase(n_objects.max(4), f.max(1), batches.max(2), rounds.max(1)))
        .collect()
}

/// The default fan-out ladder up to `max_followers`: 1, 2, 4, … capped.
pub fn fanout_ladder(max_followers: usize) -> Vec<usize> {
    let max = max_followers.max(1);
    let mut ladder = vec![];
    let mut f = 1;
    while f < max {
        ladder.push(f);
        f *= 2;
    }
    ladder.push(max);
    ladder
}

/// Renders the W9 report table.
pub fn read_fanout_table(n_objects: usize, rows: &[ReadFanoutRow]) -> String {
    render_table(
        &format!(
            "W9: follower read fan-out at {n_objects} objects \
             (chained standbys; parity + typed staleness are the contract)"
        ),
        &[
            "followers",
            "records",
            "rounds",
            "statements",
            "elapsed s",
            "agg qps",
            "parity",
            "stale typed",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.fanout.to_string(),
                    r.records.to_string(),
                    r.rounds.to_string(),
                    r.statements.to_string(),
                    fmt(r.elapsed_s),
                    fmt(r.qps),
                    if r.parity { "yes" } else { "NO" }.to_string(),
                    if r.stale_typed { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Serializes the rows as a small JSON document (the CI perf artifact
/// `BENCH_read_fanout.json`).
pub fn read_fanout_json(rows: &[ReadFanoutRow]) -> String {
    let mut out = String::from("{\n  \"fanout\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"followers\": {}, \"records\": {}, \"statements\": {}, \
             \"elapsed_s\": {:.6}, \"qps\": {:.3}, \"parity\": {}, \"stale_typed\": {}}}{}\n",
            r.fanout,
            r.records,
            r.statements,
            r.elapsed_s,
            r.qps,
            r.parity,
            r.stale_typed,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let all_ok = rows.iter().all(|r| r.parity && r.stale_typed);
    out.push_str(&format!("  \"contract\": {all_ok}\n}}\n"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Statements per batch built by [`script`] (the three query kinds).
    const SCRIPT_STATEMENTS: usize = 3;

    #[test]
    fn ladder_doubles_and_caps() {
        assert_eq!(fanout_ladder(1), vec![1]);
        assert_eq!(fanout_ladder(3), vec![1, 2, 3]);
        assert_eq!(fanout_ladder(4), vec![1, 2, 4]);
        assert_eq!(fanout_ladder(6), vec![1, 2, 4, 6]);
    }

    #[test]
    fn small_chain_holds_the_contract() {
        // Correctness only — QPS scaling is not asserted (1-core CI).
        let rows = run_read_fanout(12, &[2], 6, 3);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.records > 0);
        assert!(r.parity, "follower verdicts diverged from the leader");
        assert!(r.stale_typed, "staleness was not a typed refusal");
        assert!(r.statements == (r.rounds * SCRIPT_STATEMENTS * 2) as u64);
        assert!(r.qps > 0.0);
        let table = read_fanout_table(12, &rows);
        assert!(table.contains("W9"));
        assert!(table.contains("stale typed"));
        let json = read_fanout_json(&rows);
        assert!(json.contains("\"contract\": true"));
    }
}
