//! T1: the 85 % update-savings headline.
//!
//! §1/§6: modelling positions as distance-along-route "reduces the number
//! of updates to 15 % of the number used by the traditional, nontemporal
//! method". The traditional method stores a static point, so a vehicle
//! must refresh it whenever it drifts past the tolerated imprecision.
//!
//! **Matching methodology** (the paper leaves it implicit): for each
//! cost-based policy we first measure the time-average deviation it
//! achieves; we then binary-search the traditional method's drift
//! tolerance until it achieves the same average deviation. At matched
//! imprecision the message-count ratio is the bandwidth saving.

use modb_policy::baselines::TraditionalPolicy;
use modb_policy::{DeviationCost, PolicyEngine, PositionUpdate, Quintuple};

use crate::metrics::{AggregateMetrics, RunMetrics};
use crate::report::{fmt, render_table};
use crate::runner::{run_policy, DEFAULT_TICK};
use crate::workload::{Workload, WorkloadConfig};

/// One row of the savings table.
#[derive(Debug, Clone)]
pub struct SavingsRow {
    /// Cost-based policy label.
    pub policy: String,
    /// Mean messages per trip for the policy.
    pub messages: f64,
    /// Mean messages per trip for the traditional method at matched
    /// imprecision.
    pub traditional_messages: f64,
    /// `messages / traditional_messages` — the paper claims ≈ 0.15.
    pub ratio: f64,
    /// The matched drift tolerance (miles).
    pub matched_tolerance: f64,
    /// The average deviation both methods achieve (miles).
    pub matched_deviation: f64,
}

/// Runs the savings experiment at update cost `c`.
pub fn run_savings(seed: u64, workload_cfg: WorkloadConfig, c: f64) -> Vec<SavingsRow> {
    let workload = Workload::generate(seed, workload_cfg);
    let cost = DeviationCost::UNIT_UNIFORM;
    let dt = DEFAULT_TICK;

    let run_cost_based = |make: &dyn Fn(f64, PositionUpdate) -> PolicyEngine| -> AggregateMetrics {
        let runs: Vec<RunMetrics> = workload
            .iter()
            .map(|(route, trip)| {
                let initial = PositionUpdate {
                    time: trip.start_time(),
                    arc: trip.start_arc(),
                    speed: trip.speed_at(trip.start_time() + dt),
                };
                let mut p = make(route.length(), initial);
                run_policy(trip, route, &mut p, &cost, dt, trip.max_speed().max(1e-6))
                    .expect("well-formed observations")
            })
            .collect();
        AggregateMetrics::from_runs(&runs)
    };

    let run_traditional = |tolerance: f64| -> AggregateMetrics {
        let runs: Vec<RunMetrics> = workload
            .iter()
            .map(|(route, trip)| {
                let initial = PositionUpdate {
                    time: trip.start_time(),
                    arc: trip.start_arc(),
                    speed: 0.0,
                };
                let mut p =
                    TraditionalPolicy::new(tolerance, c, initial).expect("positive tolerance");
                run_policy(trip, route, &mut p, &cost, dt, trip.max_speed().max(1e-6))
                    .expect("well-formed observations")
            })
            .collect();
        AggregateMetrics::from_runs(&runs)
    };

    // Binary search the tolerance whose average deviation matches the
    // target. Traditional average deviation is monotone increasing in the
    // tolerance.
    let match_tolerance = |target_avg_dev: f64| -> (f64, AggregateMetrics) {
        let mut lo = 1e-3;
        let mut hi = 20.0;
        let mut best = run_traditional(hi);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let m = run_traditional(mid);
            if m.avg_deviation < target_avg_dev {
                lo = mid;
            } else {
                hi = mid;
            }
            best = m;
            if (m.avg_deviation - target_avg_dev).abs() <= 0.02 * target_avg_dev {
                return (mid, m);
            }
        }
        (0.5 * (lo + hi), best)
    };

    type MakeEngine = Box<dyn Fn(f64, PositionUpdate) -> PolicyEngine>;
    let policies: [(&str, MakeEngine); 3] = [
        (
            "dl",
            Box::new(move |len, init| {
                PolicyEngine::new(Quintuple::dl(c), len, 1.0, init).expect("valid")
            }),
        ),
        (
            "ail",
            Box::new(move |len, init| {
                PolicyEngine::new(Quintuple::ail(c), len, 1.0, init).expect("valid")
            }),
        ),
        (
            "cil",
            Box::new(move |len, init| {
                PolicyEngine::new(Quintuple::cil(c), len, 1.0, init).expect("valid")
            }),
        ),
    ];

    policies
        .iter()
        .map(|(label, make)| {
            let m = run_cost_based(make.as_ref());
            let (tolerance, trad) = match_tolerance(m.avg_deviation.max(1e-6));
            SavingsRow {
                policy: (*label).into(),
                messages: m.messages,
                traditional_messages: trad.messages,
                ratio: if trad.messages > 0.0 {
                    m.messages / trad.messages
                } else {
                    f64::INFINITY
                },
                matched_tolerance: tolerance,
                matched_deviation: m.avg_deviation,
            }
        })
        .collect()
}

/// Renders the savings table.
pub fn savings_table(rows: &[SavingsRow], c: f64) -> String {
    let title = format!(
        "T1: updates vs the traditional non-temporal method at matched imprecision (C = {c})\n\
         paper claim: cost-based policies need ~15% of traditional's updates"
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                fmt(r.messages),
                fmt(r.traditional_messages),
                format!("{:.1}%", r.ratio * 100.0),
                fmt(r.matched_tolerance),
                fmt(r.matched_deviation),
            ]
        })
        .collect();
    render_table(
        &title,
        &[
            "policy",
            "msgs/trip",
            "traditional msgs/trip",
            "ratio",
            "matched tol (mi)",
            "avg dev (mi)",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_ratio_is_well_below_one() {
        let rows = run_savings(
            5,
            WorkloadConfig {
                n_trips: 6,
                duration: 20.0,
                ..WorkloadConfig::default()
            },
            5.0,
        );
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.ratio < 0.6,
                "{}: ratio {} should show large savings",
                r.policy,
                r.ratio
            );
            assert!(r.traditional_messages > r.messages);
            assert!(r.matched_tolerance > 0.0);
        }
        let t = savings_table(&rows, 5.0);
        assert!(t.contains("traditional"));
    }
}
