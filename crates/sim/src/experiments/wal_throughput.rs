//! W7: the v2 log format and group commit, measured.
//!
//! Three questions, three sections:
//!
//! 1. **Bytes per update** — the same sharded ingest workload logged
//!    under the v1 format, the v2 format without compression (delta
//!    coding only), and the full v2 format (delta + LZ). The paper
//!    prices every update message; this prices what each one costs on
//!    disk.
//! 2. **Fsync collapse** — concurrent producers on the *acknowledged*
//!    ingest path, every envelope waiting for durability through the
//!    shared group-commit ticket. `tickets / commits` is the number of
//!    would-be fsyncs each real fsync absorbed.
//! 3. **The wire** — the same v2 log shipped to a follower. Compressed
//!    blocks travel verbatim (`Blocks`), so wire bytes are compared
//!    against what the v1 protocol path (re-encoded `Records` frames)
//!    would have sent, and a live [`modb_server::StandbyReplica`] is
//!    timed to convergence.

use std::time::Instant;

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_server::{
    DurableDatabase, IngestService, ReplicaConfig, ReplicationConfig, SharedDatabase,
    StandbyReplica, UpdateEnvelope,
};
use modb_wal::{FsyncPolicy, SegmentFormat, SegmentTailer, SharedWal, WalOptions, WalWriter};

use crate::experiments::indexing::build_city_db;
use crate::report::{fmt, render_table};

/// One log format's measured row (section 1).
#[derive(Debug, Clone)]
pub struct WalFormatRow {
    /// Format label: `v1`, `v2-plain`, or `v2-lz`.
    pub label: &'static str,
    /// Updates sent and drained.
    pub updates: usize,
    /// Wall-clock seconds for the full drain.
    pub seconds: f64,
    /// Updates per second.
    pub per_sec: f64,
    /// On-disk log footprint (all segments, headers included).
    pub log_bytes: u64,
    /// `log_bytes / updates`.
    pub bytes_per_update: f64,
    /// Segment files produced.
    pub segments: usize,
    /// Fsyncs issued (policy `EveryN(256)` for every format).
    pub fsyncs: u64,
}

/// The group-commit measurement (section 2).
#[derive(Debug, Clone)]
pub struct GroupCommitRow {
    /// Acked updates applied (each one waited for durability).
    pub updates: usize,
    /// Concurrent producers issuing them.
    pub producers: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Acked updates per second.
    pub per_sec: f64,
    /// Commit tickets enqueued (durability waits that reached the
    /// committer).
    pub tickets: u64,
    /// Fsyncs the committer issued.
    pub commits: u64,
    /// `tickets / commits`: mean fsyncs collapsed into one.
    pub mean_batch: f64,
    /// Largest single collapse observed.
    pub max_batch: u64,
    /// Total fsyncs on the log (policy `Never`: all of them are the
    /// committer's).
    pub fsyncs: u64,
}

/// The wire measurement (section 3).
#[derive(Debug, Clone)]
pub struct WireRow {
    /// Records in the shipped log (registrations + updates).
    pub records: u64,
    /// Bytes a v2 session ships (verbatim segment frames).
    pub blocks_bytes: u64,
    /// Bytes a v1 session ships (decoded records re-framed).
    pub records_bytes: u64,
    /// `records_bytes / blocks_bytes`.
    pub wire_ratio: f64,
    /// Seconds for a live standby to converge to the leader frontier.
    pub converge_seconds: f64,
    /// Records the standby applied (equals `records` on convergence).
    pub applied: u64,
}

/// Everything W7 measured, one run.
#[derive(Debug, Clone)]
pub struct WalThroughputReport {
    /// W7a rows, one per segment format.
    pub formats: Vec<WalFormatRow>,
    /// W7b: the group-commit collapse row.
    pub group_commit: GroupCommitRow,
    /// W7c: the replication wire-bytes row.
    pub wire: WireRow,
}

impl WalThroughputReport {
    /// `v1 bytes/update ÷ v2-lz bytes/update` — the headline reduction.
    pub fn disk_ratio(&self) -> f64 {
        let per = |label: &str| {
            self.formats
                .iter()
                .find(|r| r.label == label)
                .map(|r| r.bytes_per_update)
                .unwrap_or(f64::NAN)
        };
        per("v1") / per("v2-lz")
    }
}

fn wal_options(format: SegmentFormat, compress: bool, fsync: FsyncPolicy) -> WalOptions {
    WalOptions {
        fsync,
        format,
        compress,
        ..WalOptions::default()
    }
}

/// The W1 drive: `rounds` monotone updates per object from `producers`
/// threads, round-robined over the fleet, drained through `service`.
fn drive(service: IngestService, n_objects: usize, rounds: usize, producers: usize) -> f64 {
    let handle = service.handle();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers {
            let handle = handle.clone();
            s.spawn(move || {
                for round in 1..=rounds {
                    for i in (p..n_objects).step_by(producers) {
                        handle
                            .send(UpdateEnvelope {
                                id: ObjectId(i as u64),
                                msg: UpdateMessage::basic(
                                    round as f64 * 0.01,
                                    UpdatePosition::Arc(0.5),
                                    0.7,
                                ),
                            })
                            .expect("service alive");
                    }
                }
            });
        }
    });
    drop(handle);
    let stats = service.shutdown();
    let seconds = t0.elapsed().as_secs_f64();
    assert_eq!(stats.wal_errors, 0, "log writes must succeed");
    assert_eq!(stats.accepted, rounds * n_objects, "full drain");
    seconds
}

fn log_footprint(dir: &std::path::Path) -> (u64, usize) {
    let segments = modb_wal::list_segments(dir).expect("listable");
    let bytes = segments
        .iter()
        .map(|(_, p)| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    (bytes, segments.len())
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-exp-w7-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Section 1: the same workload under each log format.
pub fn run_format_comparison(n_objects: usize, rounds: usize, workers: usize) -> Vec<WalFormatRow> {
    let formats = [
        ("v1", SegmentFormat::V1, false),
        ("v2-plain", SegmentFormat::V2, false),
        ("v2-lz", SegmentFormat::V2, true),
    ];
    let mut rows = Vec::with_capacity(formats.len());
    for (label, format, compress) in formats {
        let db = SharedDatabase::new(build_city_db(42, n_objects, 20));
        let dir = scratch_dir(label);
        let writer = WalWriter::create(
            &dir,
            wal_options(format, compress, FsyncPolicy::EveryN(256)),
        )
        .expect("fresh log dir");
        let wal = SharedWal::new(writer);
        let service = IngestService::spawn_with_wal(db, wal.clone(), workers, 4_096);
        let seconds = drive(service, n_objects, rounds, 4);
        let (log_bytes, segments) = log_footprint(&dir);
        let (_, fsyncs) = wal.io_counters();
        let updates = n_objects * rounds;
        rows.push(WalFormatRow {
            label,
            updates,
            seconds,
            per_sec: updates as f64 / seconds,
            log_bytes,
            bytes_per_update: log_bytes as f64 / updates as f64,
            segments,
            fsyncs,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    rows
}

/// Section 2: concurrent acked producers through the group committer.
/// The policy is `Never`, so every fsync on the log is one the committer
/// decided to pay — `tickets / commits` is the collapse factor.
pub fn run_group_commit(
    n_objects: usize,
    rounds: usize,
    producers: usize,
    workers: usize,
) -> GroupCommitRow {
    let db = SharedDatabase::new(build_city_db(42, n_objects, 20));
    let dir = scratch_dir("group");
    let writer = WalWriter::create(
        &dir,
        wal_options(SegmentFormat::V2, true, FsyncPolicy::Never),
    )
    .expect("fresh log dir");
    let wal = SharedWal::new(writer);
    let service = IngestService::spawn_with_wal(db, wal.clone(), workers, 4_096);
    let handle = service.handle();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..producers {
            let handle = handle.clone();
            s.spawn(move || {
                for round in 1..=rounds {
                    for i in (p..n_objects).step_by(producers) {
                        let rx = handle
                            .send_acked(UpdateEnvelope {
                                id: ObjectId(i as u64),
                                msg: UpdateMessage::basic(
                                    round as f64 * 0.01,
                                    UpdatePosition::Arc(0.5),
                                    0.7,
                                ),
                            })
                            .expect("service alive");
                        let outcome = rx.recv().expect("acked before shutdown");
                        assert!(outcome.lsn > 0, "durable lsn token");
                    }
                }
            });
        }
    });
    let seconds = t0.elapsed().as_secs_f64();
    let gc = service
        .group_commit_stats()
        .expect("wal-backed service runs a committer");
    drop(handle);
    let stats = service.shutdown();
    assert_eq!(stats.wal_errors, 0, "log writes must succeed");
    let (_, fsyncs) = wal.io_counters();
    let updates = n_objects * rounds;
    let _ = std::fs::remove_dir_all(&dir);
    GroupCommitRow {
        updates,
        producers,
        seconds,
        per_sec: updates as f64 / seconds,
        tickets: gc.tickets,
        commits: gc.commits,
        mean_batch: gc.tickets as f64 / gc.commits.max(1) as f64,
        max_batch: gc.max_batch,
        fsyncs,
    }
}

/// Section 3: ship a v2 log. Wire bytes for both protocol paths are
/// measured offline with the same [`SegmentTailer`] the leader uses,
/// then a live standby follows the leader to convergence.
pub fn run_wire_comparison(n_objects: usize, rounds: usize, workers: usize) -> WireRow {
    let leader_dir = scratch_dir("wire-leader");
    let follower_dir = scratch_dir("wire-follower");
    let durable = DurableDatabase::create(
        &leader_dir,
        build_city_db(42, n_objects, 20),
        wal_options(SegmentFormat::V2, true, FsyncPolicy::EveryN(256)),
    )
    .expect("fresh leader dir");
    let service = durable.ingest_service(workers, 4_096);
    drive(service, n_objects, rounds, 4);
    let frontier = durable.wal().next_lsn();

    // Offline: what each protocol path puts on the wire for this log.
    let mut blocks_bytes = 0u64;
    let mut records = 0u64;
    let mut tailer = SegmentTailer::new(&leader_dir, 0);
    while let Some(chunk) = tailer.poll_blocks(4_096).expect("static log") {
        blocks_bytes += chunk.frames.len() as u64;
        records += chunk.records;
        if chunk.end_lsn() >= frontier {
            break;
        }
    }
    let mut records_bytes = 0u64;
    let mut tailer = SegmentTailer::new(&leader_dir, 0);
    while let Some(chunk) = tailer.poll(4_096).expect("static log") {
        let mut frames = Vec::new();
        for rec in &chunk.records {
            rec.encode_frame(&mut frames);
        }
        records_bytes += frames.len() as u64;
        if chunk.end_lsn() >= frontier {
            break;
        }
    }

    // Live: a standby bootstraps and catches up to the frontier.
    let server = durable
        .serve_replication("127.0.0.1:0", ReplicationConfig::default())
        .expect("bind");
    let t0 = Instant::now();
    let replica = StandbyReplica::open(
        &follower_dir,
        server.local_addr().to_string(),
        ReplicaConfig {
            wal: wal_options(SegmentFormat::V2, true, FsyncPolicy::Never),
            ..ReplicaConfig::default()
        },
    )
    .expect("standby opens");
    assert!(
        replica.wait_for_lsn(frontier, std::time::Duration::from_secs(60)),
        "standby must converge"
    );
    let converge_seconds = t0.elapsed().as_secs_f64();
    let applied = replica.applied_lsn();
    replica.shutdown();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&leader_dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
    WireRow {
        records,
        blocks_bytes,
        records_bytes,
        wire_ratio: records_bytes as f64 / blocks_bytes.max(1) as f64,
        converge_seconds,
        applied,
    }
}

/// Runs all three sections.
pub fn run_wal_throughput(
    n_objects: usize,
    rounds: usize,
    workers: usize,
    producers: usize,
) -> WalThroughputReport {
    WalThroughputReport {
        formats: run_format_comparison(n_objects, rounds, workers),
        group_commit: run_group_commit(n_objects, rounds, producers, workers),
        wire: run_wire_comparison(n_objects, rounds, workers),
    }
}

/// Renders the W7 report tables.
pub fn wal_throughput_tables(report: &WalThroughputReport) -> String {
    let mut out = render_table(
        "W7a: log bytes per update by segment format (sharded ingest, fsync every 256)",
        &[
            "format",
            "updates",
            "seconds",
            "updates/s",
            "log KiB",
            "bytes/update",
            "segments",
            "fsyncs",
        ],
        &report
            .formats
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.updates.to_string(),
                    fmt(r.seconds),
                    fmt(r.per_sec),
                    fmt(r.log_bytes as f64 / 1024.0),
                    fmt(r.bytes_per_update),
                    r.segments.to_string(),
                    r.fsyncs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    out.push('\n');
    let g = &report.group_commit;
    out.push_str(&render_table(
        "W7b: group commit under concurrent acked ingest (fsync policy Never)",
        &[
            "updates",
            "producers",
            "seconds",
            "acked/s",
            "tickets",
            "commits",
            "mean batch",
            "max batch",
            "fsyncs",
        ],
        &[vec![
            g.updates.to_string(),
            g.producers.to_string(),
            fmt(g.seconds),
            fmt(g.per_sec),
            g.tickets.to_string(),
            g.commits.to_string(),
            fmt(g.mean_batch),
            g.max_batch.to_string(),
            g.fsyncs.to_string(),
        ]],
    ));
    out.push('\n');
    let w = &report.wire;
    out.push_str(&render_table(
        "W7c: replication wire bytes, v2 Blocks vs v1 Records, plus live convergence",
        &[
            "records",
            "blocks KiB",
            "records KiB",
            "wire ratio",
            "converge s",
            "applied",
        ],
        &[vec![
            w.records.to_string(),
            fmt(w.blocks_bytes as f64 / 1024.0),
            fmt(w.records_bytes as f64 / 1024.0),
            fmt(w.wire_ratio),
            fmt(w.converge_seconds),
            w.applied.to_string(),
        ]],
    ));
    out.push_str(&format!(
        "\ndisk bytes/update reduction, v1 over v2-lz: {:.2}x\n",
        report.disk_ratio()
    ));
    out
}

/// Serializes the report as the CI perf artifact
/// `BENCH_wal_throughput.json`.
pub fn wal_throughput_json(report: &WalThroughputReport) -> String {
    let mut out = String::from("{\n  \"formats\": [\n");
    for (i, r) in report.formats.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"format\": \"{}\", \"updates\": {}, \"seconds\": {:.6}, \
             \"per_sec\": {:.1}, \"log_bytes\": {}, \"bytes_per_update\": {:.2}, \
             \"segments\": {}, \"fsyncs\": {}}}{}\n",
            r.label,
            r.updates,
            r.seconds,
            r.per_sec,
            r.log_bytes,
            r.bytes_per_update,
            r.segments,
            r.fsyncs,
            if i + 1 == report.formats.len() {
                ""
            } else {
                ","
            }
        ));
    }
    let g = &report.group_commit;
    out.push_str(&format!(
        "  ],\n  \"group_commit\": {{\"updates\": {}, \"producers\": {}, \
         \"seconds\": {:.6}, \"per_sec\": {:.1}, \"tickets\": {}, \"commits\": {}, \
         \"mean_batch\": {:.2}, \"max_batch\": {}, \"fsyncs\": {}}},\n",
        g.updates,
        g.producers,
        g.seconds,
        g.per_sec,
        g.tickets,
        g.commits,
        g.mean_batch,
        g.max_batch,
        g.fsyncs,
    ));
    let w = &report.wire;
    out.push_str(&format!(
        "  \"wire\": {{\"records\": {}, \"blocks_bytes\": {}, \"records_bytes\": {}, \
         \"wire_ratio\": {:.2}, \"converge_seconds\": {:.6}, \"applied\": {}}},\n",
        w.records, w.blocks_bytes, w.records_bytes, w.wire_ratio, w.converge_seconds, w.applied,
    ));
    out.push_str(&format!(
        "  \"disk_ratio_v1_over_v2lz\": {:.2}\n}}\n",
        report.disk_ratio()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_rank_as_designed() {
        let rows = run_format_comparison(100, 8, 2);
        assert_eq!(rows.len(), 3);
        let per = |label: &str| {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap()
                .bytes_per_update
        };
        // Delta coding alone shrinks the log; LZ shrinks it further, and
        // the combination clears the 2x acceptance bar even at this size.
        assert!(per("v2-plain") < per("v1"), "{rows:?}");
        assert!(per("v2-lz") < per("v2-plain"), "{rows:?}");
        assert!(per("v1") / per("v2-lz") >= 2.0, "{rows:?}");
        for r in &rows {
            assert!(
                r.log_bytes > 0 && r.segments >= 1 && r.per_sec > 0.0,
                "{r:?}"
            );
        }
    }

    #[test]
    fn group_commit_collapses_fsyncs() {
        let row = run_group_commit(64, 4, 8, 4);
        assert_eq!(row.updates, 256);
        assert!(row.tickets >= 1, "{row:?}");
        assert!(row.commits <= row.tickets, "{row:?}");
        // Policy is Never, so steady-state fsyncs are all the committer's;
        // shutdown adds at most a committer drain sync plus one final
        // wal.sync(), both after the stats snapshot.
        assert!(row.fsyncs >= row.commits, "{row:?}");
        assert!(row.fsyncs <= row.commits + 2, "{row:?}");
    }

    #[test]
    fn wire_ships_fewer_bytes_than_records_and_converges() {
        let row = run_wire_comparison(100, 8, 2);
        assert_eq!(row.applied, row.records, "standby converged");
        assert!(
            row.blocks_bytes * 2 < row.records_bytes,
            "compressed blocks must at least halve the wire: {row:?}"
        );
    }

    #[test]
    fn report_renders_tables_and_json() {
        let report = run_wal_throughput(50, 4, 2, 4);
        let tables = wal_throughput_tables(&report);
        assert!(tables.contains("W7a"));
        assert!(tables.contains("W7b"));
        assert!(tables.contains("W7c"));
        let json = wal_throughput_json(&report);
        assert!(json.contains("\"formats\""));
        assert!(json.contains("\"group_commit\""));
        assert!(json.contains("\"wire\""));
        assert_eq!(json.matches("\"format\"").count(), 3);
    }
}
