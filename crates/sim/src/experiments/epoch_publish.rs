//! W3: epoch publication cost — full clone vs change-log delta.
//!
//! PR 3 turned the epoch publisher into a versioned-store consumer: it
//! keeps a private shadow [`Database`], drains the change log since its
//! cursor, and patches only the dirty objects (per-object delete+insert
//! in the o-plane index, the §4.2 maintenance operations) before
//! swapping the published `Arc`. Publication work should therefore
//! scale with the *churn* between epochs, not with the fleet size.
//!
//! This experiment measures exactly that: for a fixed fleet, it applies
//! a churn batch (0.1%, 1%, 10% of the fleet by default), then times
//! `publish_now()` alone — churn application is outside the timed
//! window — in both publisher modes:
//!
//! - **full**: `incremental_publish = false`, every publish clones the
//!   whole database under the read lock (the pre-PR-3 behaviour).
//! - **delta**: the shadow-buffer path, O(changes) per publish.
//!
//! Two latencies are reported per cell. **visible us** is the
//! publication latency proper: publish start → snapshot swap, i.e. how
//! long a fresh epoch takes to become readable (the engine's
//! `publish_ns` counter). **cycle us** is the whole `publish_now()`
//! call, which in delta mode additionally catches the just-retired
//! shadow buffer up *after* the swap — off the visibility path, but
//! still per-publish work. The headline speedup compares visibility
//! latencies; the cycle column keeps the total-cost comparison honest.
//!
//! The publish latency is also the paper's imprecision currency: the
//! snapshot a query answers from is stale by at most the epoch interval
//! plus this latency, and §3.3 bounds the induced deviation by `D·Δt`.
//! Cheaper publishes allow shorter intervals, i.e. tighter `Δt`.

use std::time::Instant;

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_server::{QueryEngineConfig, SharedDatabase};

use crate::experiments::indexing::build_city_db;
use crate::report::{fmt, render_table};

/// One (mode, churn) measurement.
#[derive(Debug, Clone)]
pub struct EpochPublishRow {
    /// Publisher mode label: `full` or `delta`.
    pub label: &'static str,
    /// Objects touched between consecutive publishes.
    pub churn: usize,
    /// Churn as a percentage of the fleet.
    pub churn_pct: f64,
    /// Timed publishes in the measurement.
    pub publishes: u64,
    /// Mean visibility latency (publish start → snapshot swap) in
    /// microseconds.
    pub visible_us: f64,
    /// Mean whole-call `publish_now` latency in microseconds (includes
    /// the delta mode's post-swap shadow catch-up).
    pub cycle_us: f64,
    /// Full-clone visibility latency divided by this row's (1.0 for the
    /// full rows themselves) at the same churn level.
    pub speedup: f64,
}

/// Applies `churn` position updates with monotone per-object times so
/// every one is accepted and lands in the change log.
fn apply_churn(db: &SharedDatabase, round: u64, churn: usize, n_objects: usize) {
    let t = round as f64 * 1e-5;
    for i in 0..churn as u64 {
        let id = (round * churn as u64 + i) % n_objects as u64;
        let _ = db.apply_update(
            ObjectId(id),
            &UpdateMessage::basic(t, UpdatePosition::Arc(0.5), 0.7),
        );
    }
}

/// Times `rounds` publishes in one mode: churn is applied *outside* the
/// timed window so the measurement is publication cost alone. Returns
/// `(publishes, visible_us, cycle_us)`.
fn run_mode(
    n_objects: usize,
    grid: usize,
    churn: usize,
    rounds: usize,
    incremental: bool,
) -> (u64, f64, f64) {
    let db = SharedDatabase::new(build_city_db(42, n_objects, grid));
    let engine = db.query_engine(QueryEngineConfig {
        epoch_interval: None,
        incremental_publish: incremental,
        ..QueryEngineConfig::default()
    });
    // Warm up past the cold-buffer publish so the delta mode measures
    // the steady state (the first incremental publish is a full clone).
    for round in 0..2 {
        apply_churn(&db, round, churn, n_objects);
        engine.publish_now();
    }
    let before = engine.stats();
    let mut total = std::time::Duration::ZERO;
    for round in 0..rounds as u64 {
        apply_churn(&db, round + 2, churn, n_objects);
        let t0 = Instant::now();
        engine.publish_now();
        total += t0.elapsed();
    }
    let after = engine.stats();
    let visible_ns = after.publish_ns.saturating_sub(before.publish_ns);
    (
        rounds as u64,
        visible_ns as f64 / 1e3 / rounds.max(1) as f64,
        total.as_secs_f64() * 1e6 / rounds.max(1) as f64,
    )
}

/// Runs the experiment over the given churn levels; each level measures
/// the full-clone and the delta publisher on identically seeded fleets.
pub fn run_epoch_publish(
    n_objects: usize,
    grid: usize,
    churn_levels: &[usize],
    rounds: usize,
) -> Vec<EpochPublishRow> {
    let mut rows = Vec::with_capacity(churn_levels.len() * 2);
    for &churn in churn_levels {
        let churn = churn.clamp(1, n_objects);
        let mut full_visible = 0.0;
        for incremental in [false, true] {
            let (publishes, visible_us, cycle_us) =
                run_mode(n_objects, grid, churn, rounds, incremental);
            if !incremental {
                full_visible = visible_us;
            }
            rows.push(EpochPublishRow {
                label: if incremental { "delta" } else { "full" },
                churn,
                churn_pct: 100.0 * churn as f64 / n_objects as f64,
                publishes,
                visible_us,
                cycle_us,
                speedup: if !incremental || visible_us == 0.0 {
                    1.0
                } else {
                    full_visible / visible_us
                },
            });
        }
    }
    rows
}

/// Renders the W3 report table.
pub fn epoch_publish_table(n_objects: usize, rows: &[EpochPublishRow]) -> String {
    render_table(
        &format!("W3: epoch publication cost at {n_objects} objects (full clone vs delta)"),
        &[
            "mode",
            "churn",
            "churn %",
            "publishes",
            "visible us",
            "cycle us",
            "speedup",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.label.to_string(),
                    r.churn.to_string(),
                    fmt(r.churn_pct),
                    r.publishes.to_string(),
                    fmt(r.visible_us),
                    fmt(r.cycle_us),
                    fmt(r.speedup),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_paired_rows() {
        let rows = run_epoch_publish(300, 6, &[3, 30], 3);
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            assert_eq!(pair[0].label, "full");
            assert_eq!(pair[1].label, "delta");
            assert_eq!(pair[0].churn, pair[1].churn);
            assert_eq!(pair[0].speedup, 1.0);
            assert!(pair[1].speedup > 0.0);
        }
        for r in &rows {
            assert!(
                r.visible_us > 0.0,
                "{} at churn {} timed nothing",
                r.label,
                r.churn
            );
            assert!(
                r.cycle_us >= r.visible_us,
                "{} at churn {}: the whole call cannot be faster than its pre-swap part",
                r.label,
                r.churn
            );
            assert_eq!(r.publishes, 3);
        }
        let table = epoch_publish_table(300, &rows);
        assert!(table.contains("delta"));
        assert!(table.contains("visible us"));
    }
}
