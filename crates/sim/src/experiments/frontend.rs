//! W5: query front-end overhead — what the wire adds per statement.
//!
//! The paper's cost model (§5) prices the *update* wire; the query wire
//! deserves the same honesty. A remote batch pays framing, CRC, a
//! round trip, and result serialization on top of the engine's own
//! execution, and the per-statement toll shrinks as batching amortizes
//! the round trip — the same argument the ingest path makes for
//! batching updates.
//!
//! Each phase runs the *same* script twice per repetition: once
//! in-process via [`modb_server::QueryEngine::run_batch`], once through
//! a loopback [`modb_server::QueryClient`] against a
//! [`modb_server::DurableDatabase::serve_queries`] front-end. It reports
//! per-statement wall time for both paths, the overhead ratio, and a
//! **parity** column: the remote verdicts must equal the local ones
//! statement for statement (errors compared by display string) — the
//! front-end's correctness contract, measured rather than assumed.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_server::{DurableDatabase, QueryClient, QueryEngineConfig, QueryServerConfig};
use modb_wal::{FsyncPolicy, WalOptions};

use crate::report::{fmt, render_table};

const ROUTE_LEN: f64 = 100_000.0;

/// One batch-size phase of the W5 experiment.
#[derive(Debug, Clone)]
pub struct FrontendRow {
    /// Statements per batch.
    pub batch_size: usize,
    /// Batches run per path (local and remote).
    pub reps: usize,
    /// Mean in-process time per statement, µs.
    pub local_us: f64,
    /// Mean over-the-wire time per statement, µs.
    pub remote_us: f64,
    /// `remote_us / local_us`.
    pub overhead: f64,
    /// `true` iff every remote verdict equalled its local twin.
    pub parity: bool,
}

fn fresh_db() -> Database {
    let route = Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .expect("straight route");
    Database::new(
        RouteNetwork::from_routes([route]).expect("singleton network"),
        DatabaseConfig::default(),
    )
}

fn vehicle(id: u64, arc: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: 2.0,
        trip_end: None,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-exp-w5-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A script of `size` statements cycling through the three query kinds,
/// touching different objects and regions so batches are not trivially
/// cacheable.
fn script(size: usize, n_objects: usize) -> String {
    (0..size)
        .map(|i| {
            let id = i % n_objects;
            match i % 3 {
                0 => format!("RETRIEVE POSITION OF OBJECT {id} AT TIME 8"),
                1 => {
                    let x0 = (i % 7) as f64 * 10.0;
                    format!(
                        "RETRIEVE OBJECTS INSIDE RECT ({x0}, -1, {}, 1) AT TIME 8",
                        x0 + 200.0
                    )
                }
                _ => format!(
                    "RETRIEVE 5 NEAREST OBJECTS TO POINT ({}, 0) AT TIME 8",
                    (i % 11) as f64 * 20.0
                ),
            }
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// Runs the experiment: one serving database, one phase per batch size.
pub fn run_frontend_overhead(
    n_objects: usize,
    batch_sizes: &[usize],
    reps: usize,
) -> Vec<FrontendRow> {
    let dir = scratch_dir("serve");
    let durable = DurableDatabase::create(
        &dir,
        fresh_db(),
        WalOptions {
            fsync: FsyncPolicy::Never,
            max_segment_bytes: 1024 * 1024,
            ..WalOptions::default()
        },
    )
    .expect("create");
    for i in 0..n_objects as u64 {
        durable
            .register_moving(vehicle(i, 5.0 + i as f64 * 7.0))
            .expect("register");
    }
    for i in 0..n_objects as u64 {
        durable
            .apply_update(
                ObjectId(i),
                &UpdateMessage::basic(4.0, UpdatePosition::Arc(5.0 + i as f64 * 7.0 + 4.0), 1.0),
            )
            .expect("update");
    }
    let engine = Arc::new(durable.query_engine(QueryEngineConfig {
        epoch_interval: None,
        report_interval: None,
        ..QueryEngineConfig::default()
    }));
    engine.publish_now();
    let server = durable
        .serve_queries(
            Arc::clone(&engine),
            None,
            "127.0.0.1:0",
            QueryServerConfig::default(),
        )
        .expect("serve");
    let mut client = QueryClient::connect(server.local_addr()).expect("connect");

    let reps = reps.max(1);
    let rows = batch_sizes
        .iter()
        .map(|&size| {
            let size = size.max(1);
            let src = script(size, n_objects);
            // Warm both paths (first batch pays publisher/allocator
            // warm-up and, remotely, socket buffer growth).
            let _ = engine.run_batch(&src);
            let _ = client.batch(&src).expect("warm-up batch");

            let mut parity = true;
            let t0 = Instant::now();
            let mut local_last = Vec::new();
            for _ in 0..reps {
                local_last = engine.run_batch(&src);
            }
            let local_us = t0.elapsed().as_secs_f64() * 1e6 / (reps * size) as f64;

            let t1 = Instant::now();
            let mut remote_last = Vec::new();
            for _ in 0..reps {
                remote_last = client.batch(&src).expect("remote batch");
            }
            let remote_us = t1.elapsed().as_secs_f64() * 1e6 / (reps * size) as f64;

            for (r, l) in remote_last.iter().zip(&local_last) {
                let same = match (r, l) {
                    (Ok(r), Ok(l)) => r == l,
                    (Err(r), Err(l)) => r == &l.to_string(),
                    _ => false,
                };
                parity = parity && same;
            }
            FrontendRow {
                batch_size: size,
                reps,
                local_us,
                remote_us,
                overhead: remote_us / local_us.max(1e-9),
                parity,
            }
        })
        .collect();
    client.close();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    rows
}

/// Renders the W5 report table.
pub fn frontend_table(n_objects: usize, rows: &[FrontendRow]) -> String {
    render_table(
        &format!(
            "W5: query front-end overhead at {n_objects} objects \
             (loopback TCP vs in-process, same engine)"
        ),
        &[
            "batch",
            "reps",
            "local µs/stmt",
            "remote µs/stmt",
            "overhead ×",
            "parity",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.batch_size.to_string(),
                    r.reps.to_string(),
                    fmt(r.local_us),
                    fmt(r.remote_us),
                    fmt(r.overhead),
                    if r.parity { "yes" } else { "NO" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_keeps_parity_across_the_wire() {
        let rows = run_frontend_overhead(16, &[1, 8], 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(
                r.parity,
                "batch {}: remote diverged from local",
                r.batch_size
            );
            assert!(r.local_us > 0.0);
            assert!(r.remote_us > 0.0);
        }
        let table = frontend_table(16, &rows);
        assert!(table.contains("W5"));
        assert!(table.contains("parity"));
    }
}
