//! W8: speed-banded indexing on a mixed city/highway fleet.
//!
//! A fast object's o-plane sweeps a long stretch of route, so its union
//! box is enormous next to a slow neighbour's; in one shared R\*-tree
//! those boxes inflate every node they touch ("Speed Partitioning for
//! Indexing Moving Objects", arXiv 1411.4940). W8 builds the same mixed
//! fleet — city stop-and-go on a grid, highway cruisers on long diagonal
//! expressways — under three [`BandConfig`] layouts and measures the
//! filtering step:
//!
//! - **single**: one all-speeds band — the historical index.
//! - **banded-uniform**: slow/fast split at the 1.0 mi/min edge, same
//!   slab duration per band. Candidate sets are *identical* to single
//!   (asserted); only tree quality (nodes visited) changes.
//! - **banded-scaled**: same split, but the fast band gets
//!   speed-scaled finer slabs — tighter slab boxes, fewer
//!   false-positive candidates.
//!
//! A final churn phase revises `max_speed` on a slice of the fleet
//! ([`modb_core::Database::set_max_speed`]) to exercise automatic band
//! migration, then re-checks index/scan parity.

use std::time::Instant;

use modb_core::{
    BandConfig, Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor,
    PositionAttribute,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{generators, Direction, Route, RouteId, RouteNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::experiments::indexing::query_regions;
use crate::report::{fmt, render_table};

/// Update cost for every fleet policy.
const FLEET_C: f64 = 5.0;
/// First route id of the highway overlay (grid ids stay small).
const HIGHWAY_ID0: u64 = 100_000;
/// Speed-band edge between city and highway regimes (mi/min).
const BAND_EDGE: f64 = 1.0;

/// One object of the mixed fleet, before registration.
struct FleetSpec {
    route: RouteId,
    arc: f64,
    speed: f64,
    max_speed: f64,
}

/// The mixed city/highway workload: the road map plus per-object specs,
/// identical across index configurations.
pub struct MixedFleet {
    network: RouteNetwork,
    specs: Vec<FleetSpec>,
    /// Objects in the city (slow) regime.
    pub city: usize,
    /// Objects in the highway (fast) regime.
    pub highway: usize,
}

/// Builds the mixed fleet: `n` objects, `highway_share` (0..1) of them
/// cruising long diagonal expressways at 1.2–2.4 mi/min (`V` = 2.5), the
/// rest in stop-and-go grid traffic at 0.1–0.6 mi/min (`V` = 0.8).
pub fn build_mixed_fleet(seed: u64, n: usize, grid: usize, highway_share: f64) -> MixedFleet {
    let extent = (grid - 1) as f64;
    let mut network = generators::grid_network(grid, grid, 1.0, 0).expect("valid grid");
    // Highway overlay: diagonal expressways crossing the whole grid, so
    // fast sweeps are geometrically distinct from any city street.
    let n_highways = 4usize;
    for k in 0..n_highways {
        let off = extent * (k as f64 + 0.5) / n_highways as f64;
        let (a, b) = if k % 2 == 0 {
            (
                Point::new(0.0, off),
                Point::new(extent, (off + extent / 2.0) % extent),
            )
        } else {
            (
                Point::new(off, 0.0),
                Point::new((off + extent / 2.0) % extent, extent),
            )
        };
        let route = Route::from_vertices(
            RouteId(HIGHWAY_ID0 + k as u64),
            format!("hwy-{k}"),
            vec![a, b],
        )
        .expect("valid highway");
        network.insert(route).expect("fresh id");
    }
    let highway_ids: Vec<RouteId> = (0..n_highways)
        .map(|k| RouteId(HIGHWAY_ID0 + k as u64))
        .collect();
    let city_ids: Vec<RouteId> = network
        .route_ids()
        .into_iter()
        .filter(|r| r.0 < HIGHWAY_ID0)
        .collect();

    let mut rng = StdRng::seed_from_u64(seed);
    let n_highway = ((n as f64) * highway_share.clamp(0.0, 1.0)).round() as usize;
    let specs: Vec<FleetSpec> = (0..n)
        .map(|i| {
            let fast = i < n_highway;
            let pool = if fast { &highway_ids } else { &city_ids };
            let route = pool[rng.gen_range(0..pool.len())];
            let len = network.get(route).expect("generated route").length();
            FleetSpec {
                route,
                arc: rng.gen_range(0.0..len),
                speed: if fast {
                    rng.gen_range(1.2..2.4)
                } else {
                    rng.gen_range(0.1..0.6)
                },
                max_speed: if fast { 2.5 } else { 0.8 },
            }
        })
        .collect();
    MixedFleet {
        network,
        specs,
        city: n - n_highway,
        highway: n_highway,
    }
}

impl MixedFleet {
    /// Registers the whole fleet into a fresh database under `bands`.
    pub fn database(&self, bands: BandConfig) -> Database {
        let config = DatabaseConfig {
            bands,
            ..DatabaseConfig::default()
        };
        let mut db = Database::new(self.network.clone(), config);
        for (i, s) in self.specs.iter().enumerate() {
            let route = db.network().get(s.route).expect("route exists");
            db.register_moving(MovingObject {
                id: ObjectId(i as u64),
                name: format!("veh-{i}"),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: s.route,
                    start_position: route.point_at(s.arc),
                    start_arc: s.arc,
                    direction: if i % 2 == 0 {
                        Direction::Forward
                    } else {
                        Direction::Backward
                    },
                    speed: s.speed,
                    policy: PolicyDescriptor::CostBased {
                        kind: BoundKind::Immediate,
                        update_cost: FLEET_C,
                    },
                },
                max_speed: s.max_speed,
                trip_end: Some(60.0),
            })
            .expect("valid object");
        }
        db
    }
}

/// Measurements for one index configuration (one experiment leg).
#[derive(Debug, Clone)]
pub struct BandLeg {
    /// Leg label (`single`, `banded-uniform`, `banded-scaled`).
    pub label: &'static str,
    /// Mean candidates per query.
    pub cand_per_q: f64,
    /// Candidates as a fraction of the fleet (the candidate ratio).
    pub cand_ratio: f64,
    /// Median filter latency (microseconds per query).
    pub filter_p50_us: f64,
    /// Tail filter latency (microseconds per query).
    pub filter_p99_us: f64,
    /// Mean R\*-tree nodes visited per query, summed across bands.
    pub nodes_per_q: f64,
    /// Index entries per band, slowest first.
    pub band_entries: Vec<usize>,
}

/// The W8 report.
#[derive(Debug, Clone)]
pub struct SpeedBandReport {
    /// Fleet size.
    pub n: usize,
    /// City-regime objects.
    pub city: usize,
    /// Highway-regime objects.
    pub highway: usize,
    /// Queries per leg.
    pub queries: usize,
    /// One row per index configuration.
    pub legs: Vec<BandLeg>,
    /// Objects whose `max_speed` was revised in the churn phase.
    pub migrated: usize,
    /// Band migrations the index counted during that churn.
    pub migrations: u64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Runs one leg: per-query filter timing over `regions`, plus an
/// index-vs-scan parity check on a sample.
fn run_leg(
    label: &'static str,
    db: &Database,
    regions: &[modb_index::QueryRegion],
    parity_sample: usize,
) -> BandLeg {
    for r in regions.iter().take(parity_sample) {
        let a = db.range_query(r).expect("query ok");
        let b = db.range_query_scan(r).expect("query ok");
        assert_eq!(a.must, b.must, "{label}: index/scan must-set mismatch");
        assert_eq!(a.may, b.may, "{label}: index/scan may-set mismatch");
    }
    let n = db.moving_count();
    let mut lat_us: Vec<f64> = Vec::with_capacity(regions.len());
    let mut cands = 0usize;
    let mut nodes = 0usize;
    for r in regions {
        let t0 = Instant::now();
        let (c, stats) = db.range_candidates(r);
        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
        cands += c.len();
        nodes += stats.nodes_visited;
    }
    lat_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let per_q = cands as f64 / regions.len() as f64;
    BandLeg {
        label,
        cand_per_q: per_q,
        cand_ratio: per_q / n as f64,
        filter_p50_us: percentile(&lat_us, 0.50),
        filter_p99_us: percentile(&lat_us, 0.99),
        nodes_per_q: nodes as f64 / regions.len() as f64,
        band_entries: db.index_band_stats().iter().map(|b| b.entries).collect(),
    }
}

/// Runs W8: the three index layouts over one mixed fleet, then the
/// band-migration churn phase.
pub fn run_speed_bands(n: usize, n_queries: usize, grid: usize) -> SpeedBandReport {
    let fleet = build_mixed_fleet(42, n, grid, 0.3);
    let regions = query_regions(&fleet.network, n_queries, 2.0, 3.0, 7);
    let parity_sample = n_queries.min(10);

    let single = fleet.database(BandConfig::single(5.0));
    let uniform = fleet.database(BandConfig::uniform(&[BAND_EDGE], 5.0).expect("valid edges"));
    let scaled = fleet.database(BandConfig::speed_scaled(&[BAND_EDGE], 5.0).expect("valid edges"));

    // Uniform-slab banding must reproduce the single tree's candidate
    // sets exactly — partitioning changes the search, never the answer.
    for r in regions.iter().take(parity_sample) {
        let mut a = single.range_candidates(r).0;
        let mut b = uniform.range_candidates(r).0;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "banded-uniform candidates diverge from single");
    }

    let legs = vec![
        run_leg("single", &single, &regions, parity_sample),
        run_leg("banded-uniform", &uniform, &regions, parity_sample),
        run_leg("banded-scaled", &scaled, &regions, parity_sample),
    ];

    // Churn: every 10th city vehicle is reclassified for highway duty —
    // its entry must migrate bands, and answers must stay correct.
    let mut scaled = scaled;
    let before = scaled.index_band_migrations();
    let migrate: Vec<ObjectId> = (0..fleet.city)
        .filter(|i| i % 10 == 0)
        .map(|i| ObjectId((fleet.highway + i) as u64))
        .collect();
    for &id in &migrate {
        scaled.set_max_speed(id, 2.5).expect("known object");
    }
    let migrations = scaled.index_band_migrations() - before;
    for r in regions.iter().take(parity_sample) {
        let a = scaled.range_query(r).expect("query ok");
        let b = scaled.range_query_scan(r).expect("query ok");
        assert_eq!(a.must, b.must, "post-migration must-set mismatch");
        assert_eq!(a.may, b.may, "post-migration may-set mismatch");
    }

    SpeedBandReport {
        n,
        city: fleet.city,
        highway: fleet.highway,
        queries: n_queries,
        legs,
        migrated: migrate.len(),
        migrations,
    }
}

/// Renders the W8 table.
pub fn speed_bands_table(report: &SpeedBandReport) -> String {
    let rows: Vec<Vec<String>> = report
        .legs
        .iter()
        .map(|l| {
            vec![
                l.label.to_string(),
                fmt(l.cand_per_q),
                format!("{:.4}", l.cand_ratio),
                fmt(l.filter_p50_us),
                fmt(l.filter_p99_us),
                fmt(l.nodes_per_q),
                format!("{:?}", l.band_entries),
            ]
        })
        .collect();
    let mut out = render_table(
        &format!(
            "W8: speed-banded filtering, {} objects ({} city / {} highway), {} queries",
            report.n, report.city, report.highway, report.queries
        ),
        &[
            "config",
            "cands/q",
            "cand ratio",
            "p50 us/q",
            "p99 us/q",
            "nodes/q",
            "band entries",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nchurn: {} max_speed revisions -> {} band migrations\n",
        report.migrated, report.migrations
    ));
    out
}

/// Renders the report as the `BENCH_speed_bands.json` document.
pub fn speed_bands_json(report: &SpeedBandReport) -> String {
    let mut out = format!(
        "{{\n  \"objects\": {},\n  \"city\": {},\n  \"highway\": {},\n  \"queries\": {},\n  \"legs\": [\n",
        report.n, report.city, report.highway, report.queries
    );
    for (i, l) in report.legs.iter().enumerate() {
        let entries: Vec<String> = l.band_entries.iter().map(|e| e.to_string()).collect();
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"cands_per_query\": {:.2}, \"cand_ratio\": {:.6}, \
             \"filter_p50_us\": {:.2}, \"filter_p99_us\": {:.2}, \"nodes_per_query\": {:.2}, \
             \"band_entries\": [{}]}}{}\n",
            l.label,
            l.cand_per_q,
            l.cand_ratio,
            l.filter_p50_us,
            l.filter_p99_us,
            l.nodes_per_q,
            entries.join(", "),
            if i + 1 == report.legs.len() { "" } else { "," }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"churn\": {{\"revised\": {}, \"migrations\": {}}}\n}}\n",
        report.migrated, report.migrations
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_fleet_splits_regimes() {
        let fleet = build_mixed_fleet(1, 100, 10, 0.3);
        assert_eq!(fleet.city + fleet.highway, 100);
        assert_eq!(fleet.highway, 30);
        let db = fleet.database(BandConfig::uniform(&[BAND_EDGE], 5.0).unwrap());
        let stats = db.index_band_stats();
        assert_eq!(stats[0].entries, fleet.city);
        assert_eq!(stats[1].entries, fleet.highway);
    }

    #[test]
    fn report_runs_and_banding_reduces_candidates() {
        let report = run_speed_bands(400, 12, 12);
        assert_eq!(report.legs.len(), 3);
        // Parity asserts inside run_speed_bands; the scaled leg must not
        // produce more candidates than the single tree.
        let single = &report.legs[0];
        let scaled = &report.legs[2];
        assert!(
            scaled.cand_per_q <= single.cand_per_q + 1e-9,
            "scaled {} vs single {}",
            scaled.cand_per_q,
            single.cand_per_q
        );
        assert!(report.migrations > 0, "churn phase migrated nobody");
        assert_eq!(report.migrations as usize, report.migrated);
    }

    #[test]
    fn json_and_table_render() {
        let report = run_speed_bands(150, 6, 8);
        let json = speed_bands_json(&report);
        assert!(json.contains("\"legs\""));
        assert!(json.contains("banded-scaled"));
        assert!(json.contains("\"migrations\""));
        assert!(speed_bands_table(&report).contains("cand ratio"));
    }
}
