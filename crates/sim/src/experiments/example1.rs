//! T2: the paper's worked Example 1, analytic and replayed.
//!
//! Scenario: deviation cost 1 per mile-minute, C = 5, declared speed
//! 1 mi/min, maximum speed 1.5 mi/min. The vehicle cruises exactly at the
//! declared speed for 2 minutes and then stops in a jam.

use modb_policy::{
    fast_bound, fast_crossover_time, optimal_threshold, slow_bound, slow_crossover_time, BoundKind,
    Policy, PolicyEngine, PositionUpdate, Quintuple,
};

use crate::report::{fmt, render_table};

/// One checked quantity: paper value vs computed value.
#[derive(Debug, Clone)]
pub struct Example1Row {
    /// What is being checked.
    pub quantity: String,
    /// Value stated in the paper.
    pub paper: f64,
    /// Value computed by this implementation.
    pub computed: f64,
}

impl Example1Row {
    /// Relative error between paper and computed values.
    pub fn rel_error(&self) -> f64 {
        (self.computed - self.paper).abs() / self.paper.abs().max(1e-12)
    }
}

const C: f64 = 5.0;
const V: f64 = 1.0;
const VMAX: f64 = 1.5;

/// Replays the jam scenario through a policy engine with tick `dt`,
/// returning the time the first update fires.
fn replay_first_update(quintuple: Quintuple, dt: f64) -> f64 {
    let mut e = PolicyEngine::new(
        quintuple,
        1_000.0,
        1.0,
        PositionUpdate {
            time: 0.0,
            arc: 0.0,
            speed: V,
        },
    )
    .expect("valid quintuple");
    let mut t = 0.0;
    loop {
        t += dt;
        assert!(t < 60.0, "no update fired within an hour");
        let (arc, speed) = if t <= 2.0 { (t, V) } else { (2.0, 0.0) };
        if e.tick(t, arc, speed).expect("well-formed").is_some() {
            return t;
        }
    }
}

/// Computes every Example 1 quantity.
pub fn run_example1() -> Vec<Example1Row> {
    let dt = 1.0 / 600.0;
    vec![
        Example1Row {
            quantity: "dl optimal threshold k_opt (a=1, b=2, C=5)".into(),
            paper: 1.74,
            computed: optimal_threshold(1.0, 2.0, C),
        },
        Example1Row {
            quantity: "dl update fires at minute (replayed jam)".into(),
            paper: 2.0 + 1.74, // stop at minute 2 + 1:44 of stopping
            computed: replay_first_update(Quintuple::dl(C), dt),
        },
        Example1Row {
            quantity: "dl slow-bound plateau (miles)".into(),
            paper: 3.16,
            computed: slow_bound(BoundKind::Delayed, V, C, 100.0),
        },
        Example1Row {
            quantity: "dl slow-bound crossover (minutes)".into(),
            paper: 3.16, // √(2C/v) = √10
            computed: slow_crossover_time(V, C),
        },
        Example1Row {
            quantity: "dl fast-bound plateau (miles, V=1.5)".into(),
            paper: 2.24,
            computed: fast_bound(BoundKind::Delayed, V, VMAX, C, 100.0),
        },
        Example1Row {
            quantity: "dl fast-bound crossover (minutes)".into(),
            paper: 4.5,
            computed: fast_crossover_time(V, VMAX, C),
        },
        Example1Row {
            quantity: "ail slow bound at t=4 (10/t)".into(),
            paper: 2.5,
            computed: slow_bound(BoundKind::Immediate, V, C, 4.0),
        },
        Example1Row {
            quantity: "ail slow bound at t=10 (10/t)".into(),
            paper: 1.0,
            computed: slow_bound(BoundKind::Immediate, V, C, 10.0),
        },
        Example1Row {
            quantity: "ail fast bound at t=5 (10/t)".into(),
            paper: 2.0,
            computed: fast_bound(BoundKind::Immediate, V, VMAX, C, 5.0),
        },
        Example1Row {
            quantity: "ail update fires at minute (replayed jam)".into(),
            paper: 4.32, // t = 1 + √11
            computed: replay_first_update(Quintuple::ail(C), dt),
        },
    ]
}

/// Renders the Example 1 table.
pub fn example1_table(rows: &[Example1Row]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.quantity.clone(),
                fmt(r.paper),
                fmt(r.computed),
                format!("{:.2}%", r.rel_error() * 100.0),
            ]
        })
        .collect();
    render_table(
        "T2: Example 1 (paper vs computed)",
        &["quantity", "paper", "computed", "rel err"],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_example1_quantities_match_paper() {
        for row in run_example1() {
            assert!(
                row.rel_error() < 0.01,
                "{}: paper {} vs computed {}",
                row.quantity,
                row.paper,
                row.computed
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let rows = run_example1();
        let t = example1_table(&rows);
        assert_eq!(t.lines().count(), rows.len() + 3);
    }
}
