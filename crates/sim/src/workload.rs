//! Workload generation: the "set of one-hour trips" of §3.4.

use modb_geom::Point;
use modb_motion::{Trip, TripProfile};
use modb_routes::{Direction, Route, RouteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible set of trips, each bound to its own route.
#[derive(Debug, Clone)]
pub struct Workload {
    /// One route per trip (`routes[i]` carries `trips[i]`).
    pub routes: Vec<Route>,
    /// The trips.
    pub trips: Vec<Trip>,
}

/// Parameters for [`Workload::generate`].
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of trips.
    pub n_trips: usize,
    /// Trip duration in minutes (the paper uses one-hour trips).
    pub duration: f64,
    /// Speed-curve sampling tick (minutes).
    pub dt: f64,
    /// Driving regime; `None` cycles through all profiles.
    pub profile: Option<TripProfile>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            n_trips: 100,
            duration: 60.0,
            dt: 1.0 / 60.0,
            profile: None,
        }
    }
}

impl Workload {
    /// Generates a seeded workload. Each trip gets a straight 120-mile
    /// route of its own: policy behaviour depends only on the speed curve
    /// (deviation is measured along the route), so simple geometry keeps
    /// the experiment focused — the index experiments use richer networks.
    pub fn generate(seed: u64, config: WorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut routes = Vec::with_capacity(config.n_trips);
        let mut trips = Vec::with_capacity(config.n_trips);
        for i in 0..config.n_trips {
            let route = Route::from_vertices(
                RouteId(i as u64),
                format!("trip-route-{i}"),
                vec![Point::new(0.0, i as f64), Point::new(120.0, i as f64)],
            )
            .expect("straight route is valid");
            let profile = config
                .profile
                .unwrap_or(TripProfile::ALL[i % TripProfile::ALL.len()]);
            let curve = profile
                .generate(&mut rng, config.duration, config.dt)
                .expect("valid generator config");
            let trip = Trip::new(RouteId(i as u64), Direction::Forward, 0.0, 0.0, curve)
                .expect("valid trip parameters");
            routes.push(route);
            trips.push(trip);
        }
        Workload { routes, trips }
    }

    /// Number of trips.
    pub fn len(&self) -> usize {
        self.trips.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.trips.is_empty()
    }

    /// Iterator over (route, trip) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Route, &Trip)> {
        self.routes.iter().zip(self.trips.iter())
    }
}

/// Deterministic fleet positions for index experiments: `n` objects spread
/// over a network's routes with pseudo-random arcs and speeds.
pub fn fleet_positions(
    seed: u64,
    n: usize,
    route_ids: &[RouteId],
    route_len: impl Fn(RouteId) -> f64,
) -> Vec<(RouteId, f64, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let rid = route_ids[rng.gen_range(0..route_ids.len())];
            let len = route_len(rid);
            let arc = rng.gen_range(0.0..len);
            let speed = rng.gen_range(0.1..1.2);
            (rid, arc, speed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_reproducible() {
        let cfg = WorkloadConfig {
            n_trips: 8,
            ..WorkloadConfig::default()
        };
        let a = Workload::generate(7, cfg);
        let b = Workload::generate(7, cfg);
        assert_eq!(a.len(), 8);
        for ((_, ta), (_, tb)) in a.iter().zip(b.iter()) {
            assert_eq!(ta.curve().samples(), tb.curve().samples());
        }
        let c = Workload::generate(8, cfg);
        assert_ne!(
            a.trips[0].curve().samples(),
            c.trips[0].curve().samples(),
            "different seeds differ"
        );
    }

    #[test]
    fn workload_cycles_profiles() {
        let w = Workload::generate(
            1,
            WorkloadConfig {
                n_trips: 4,
                duration: 10.0,
                ..WorkloadConfig::default()
            },
        );
        // Jam trips travel far less than highway trips.
        let dist: Vec<f64> = w.trips.iter().map(|t| t.curve().total_distance()).collect();
        let max = dist.iter().copied().fold(0.0, f64::max);
        let min = dist.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > 3.0 * min, "profiles should differ: {dist:?}");
    }

    #[test]
    fn fixed_profile_workload() {
        let w = Workload::generate(
            2,
            WorkloadConfig {
                n_trips: 3,
                duration: 5.0,
                profile: Some(TripProfile::Highway),
                ..WorkloadConfig::default()
            },
        );
        for (_, trip) in w.iter() {
            let mean = trip.curve().total_distance() / trip.curve().duration();
            assert!(mean > 0.7, "highway mean speed {mean}");
        }
    }

    #[test]
    fn fleet_positions_in_range() {
        let ids = [RouteId(0), RouteId(1)];
        let fleet = fleet_positions(3, 50, &ids, |_| 40.0);
        assert_eq!(fleet.len(), 50);
        for (rid, arc, speed) in fleet {
            assert!(ids.contains(&rid));
            assert!((0.0..40.0).contains(&arc));
            assert!((0.1..1.2).contains(&speed));
        }
        // Determinism.
        assert_eq!(
            fleet_positions(3, 5, &ids, |_| 40.0),
            fleet_positions(3, 5, &ids, |_| 40.0)
        );
    }
}
