//! Plain-text table rendering for experiment binaries.
//!
//! The paper's results are "a set of plots"; we print the same data as
//! aligned ASCII tables (one row per parameter value, one column per
//! policy) so EXPERIMENTS.md can record paper-vs-measured directly.

/// Renders an aligned table. `headers.len()` must equal each row's length.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    debug_assert!(rows.iter().all(|r| r.len() == headers.len()));
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:>width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with 3 significant decimals, trimming noise.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            "demo",
            &["C", "dl", "ail"],
            &[
                vec!["0.5".into(), "12.00".into(), "9.10".into()],
                vec!["50".into(), "1.20".into(), "0.90".into()],
            ],
        );
        assert!(t.contains("demo"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        // Header and rows have equal width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(0.1234), "0.1234");
        assert_eq!(fmt(3.21987), "3.22");
        assert_eq!(fmt(123.456), "123.5");
    }
}
