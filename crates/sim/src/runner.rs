//! The simulation loop: one policy over one trip, tick by tick.

use modb_motion::Trip;
use modb_policy::{DeviationCost, Policy, PolicyError};
use modb_routes::Route;

use crate::metrics::RunMetrics;

/// Default simulation tick: one second.
pub const DEFAULT_TICK: f64 = 1.0 / 60.0;

/// Runs `policy` over `trip` on `route`, accumulating the §3.4 metrics.
///
/// Each tick the onboard computer observes its exact position and speed
/// (the paper's GPS assumption), feeds the policy, and the harness accrues
/// deviation cost, uncertainty, and message counts. The deviation cost is
/// integrated with the rectangle rule at resolution `dt`.
///
/// # Errors
///
/// Propagates policy errors (malformed observations cannot occur here, so
/// an error indicates a harness bug).
pub fn run_policy(
    trip: &Trip,
    route: &Route,
    policy: &mut dyn Policy,
    cost: &DeviationCost,
    dt: f64,
    v_max: f64,
) -> Result<RunMetrics, PolicyError> {
    debug_assert!(dt > 0.0);
    let mut m = RunMetrics::default();
    let start = trip.start_time();
    let end = trip.end_time();
    // Tick by index rather than accumulating `t += dt`, so floating-point
    // drift cannot add a spurious tick past the trip end.
    let n_ticks = ((end - start) / dt).round().max(1.0) as usize;
    let mut uncertainty_acc = 0.0;
    let mut deviation_acc = 0.0;
    for i in 1..=n_ticks {
        let t = start + i as f64 * dt;
        let actual_arc = trip.arc_at(route, t);
        let speed = trip.speed_at(t);

        // Pre-tick state: the deviation and bound the DBMS lives with
        // during this tick.
        let db_arc = policy.database_arc(t);
        let deviation = (actual_arc - db_arc).abs();
        let prev_bound = policy.uncertainty(t - dt, v_max);
        let bound = policy.uncertainty(t, v_max).max(prev_bound);
        m.deviation_cost += cost.tick_cost(deviation, dt);
        deviation_acc += deviation * dt;
        uncertainty_acc += policy.uncertainty(t, v_max) * dt;
        m.max_deviation = m.max_deviation.max(deviation);
        if deviation > bound + v_max * dt + 1e-9 {
            m.bound_violations += 1;
        }

        if policy.tick(t, actual_arc, speed)?.is_some() {
            m.messages += 1;
        }
    }
    m.duration = n_ticks as f64 * dt;
    m.avg_uncertainty = uncertainty_acc / m.duration;
    m.avg_deviation = deviation_acc / m.duration;
    m.total_cost = policy.update_cost() * m.messages as f64 + m.deviation_cost;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_motion::SpeedCurve;
    use modb_policy::{PolicyEngine, PositionUpdate, Quintuple};
    use modb_routes::{Direction, RouteId};

    fn route() -> Route {
        Route::from_vertices(
            RouteId(1),
            "r",
            vec![
                modb_geom::Point::new(0.0, 0.0),
                modb_geom::Point::new(200.0, 0.0),
            ],
        )
        .unwrap()
    }

    fn engine(c: f64, declared: f64) -> PolicyEngine {
        PolicyEngine::new(
            Quintuple::ail(c),
            200.0,
            1.0,
            PositionUpdate {
                time: 0.0,
                arc: 0.0,
                speed: declared,
            },
        )
        .unwrap()
    }

    #[test]
    fn perfect_trip_has_zero_cost() {
        let r = route();
        // Constant 1 mi/min, declared 1: zero deviation forever.
        let trip = Trip::new(
            RouteId(1),
            Direction::Forward,
            0.0,
            0.0,
            SpeedCurve::constant(1.0, 60, 1.0).unwrap(),
        )
        .unwrap();
        let mut p = engine(5.0, 1.0);
        let m = run_policy(
            &trip,
            &r,
            &mut p,
            &DeviationCost::UNIT_UNIFORM,
            DEFAULT_TICK,
            1.5,
        )
        .unwrap();
        assert_eq!(m.messages, 0);
        assert!(m.deviation_cost < 1e-9);
        assert!(m.total_cost < 1e-9);
        assert_eq!(m.bound_violations, 0);
        assert_eq!(m.duration, 60.0);
    }

    #[test]
    fn jam_trip_updates_and_accrues_cost() {
        let r = route();
        // Example 1 shape: 1 mi/min for 2 minutes then stopped for 28.
        let mut samples = vec![1.0; 2 * 60];
        samples.extend(vec![0.0; 28 * 60]);
        let trip = Trip::new(
            RouteId(1),
            Direction::Forward,
            0.0,
            0.0,
            SpeedCurve::new(samples, 1.0 / 60.0).unwrap(),
        )
        .unwrap();
        let mut p = engine(5.0, 1.0);
        let m = run_policy(
            &trip,
            &r,
            &mut p,
            &DeviationCost::UNIT_UNIFORM,
            DEFAULT_TICK,
            1.0,
        )
        .unwrap();
        // The ail engine fires once (at t ≈ 4.32) declaring ~0 average
        // speed; afterwards the stopped vehicle accrues no deviation...
        // except the declared avg speed is small but nonzero, so a couple
        // more updates may fire. Between 1 and 4 messages is sane.
        assert!((1..=4).contains(&m.messages), "messages {}", m.messages);
        assert!(m.deviation_cost > 0.0);
        assert!(m.total_cost >= 5.0 * m.messages as f64);
        assert!(m.max_deviation > 2.0, "deviation peaked near 2.3");
        assert_eq!(m.bound_violations, 0, "bounds must hold");
        assert!(m.avg_uncertainty > 0.0);
    }

    #[test]
    fn higher_cost_means_fewer_messages() {
        let r = route();
        // Oscillating speed to force steady deviation churn.
        let samples: Vec<f64> = (0..3600)
            .map(|i| if (i / 120) % 2 == 0 { 1.0 } else { 0.4 })
            .collect();
        let trip = Trip::new(
            RouteId(1),
            Direction::Forward,
            0.0,
            0.0,
            SpeedCurve::new(samples, 1.0 / 60.0).unwrap(),
        )
        .unwrap();
        let mut cheap = engine(0.5, 1.0);
        let mut dear = engine(20.0, 1.0);
        let mc = run_policy(
            &trip,
            &r,
            &mut cheap,
            &DeviationCost::UNIT_UNIFORM,
            DEFAULT_TICK,
            1.0,
        )
        .unwrap();
        let md = run_policy(
            &trip,
            &r,
            &mut dear,
            &DeviationCost::UNIT_UNIFORM,
            DEFAULT_TICK,
            1.0,
        )
        .unwrap();
        assert!(
            mc.messages > md.messages,
            "C=0.5 sent {} messages, C=20 sent {}",
            mc.messages,
            md.messages
        );
    }
}
