//! F6: index-maintenance throughput — §4.2's position-update step
//! (delete the old o-plane's boxes, insert the new o-plane's).
//!
//! Usage: `exp_f6_index_update` (fixed fleet sizes).

use modb_sim::experiments::indexing::{index_update_table, run_index_update};

fn main() {
    let sizes = [1_000, 5_000, 20_000];
    eprintln!("running index-update experiment: fleets {sizes:?}");
    let rows = run_index_update(&sizes);
    println!("{}", index_update_table(&rows));
}
