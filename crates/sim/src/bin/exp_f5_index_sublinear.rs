//! F5: range-query cost via the 3-D R\*-tree vs exhaustive scan, as the
//! fleet grows — §4's sublinearity claim.
//!
//! Usage: `exp_f5_index_sublinear [queries_per_size] [--sizes a,b,c]
//! [--json PATH]` (defaults: 50 queries over fleets of 1k/5k/20k/50k;
//! `--json` writes the rows as the CI artifact
//! `BENCH_index_sublinear.json`).

use modb_sim::experiments::indexing::{run_sublinear, sublinear_json, sublinear_table};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        let flag_and_path: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
        flag_and_path.get(1).cloned().unwrap_or_else(|| {
            eprintln!("error: --json requires a path");
            std::process::exit(2);
        })
    });
    let sizes: Vec<usize> = match args.iter().position(|a| a == "--sizes") {
        Some(i) => {
            let flag_and_list: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
            flag_and_list
                .get(1)
                .map(|list| {
                    list.split(',')
                        .map(|s| {
                            s.trim().parse().unwrap_or_else(|_| {
                                eprintln!("error: --sizes wants integers, got {s:?}");
                                std::process::exit(2);
                            })
                        })
                        .collect()
                })
                .unwrap_or_else(|| {
                    eprintln!("error: --sizes requires a comma-separated list");
                    std::process::exit(2);
                })
        }
        None => vec![1_000, 5_000, 20_000, 50_000],
    };
    let queries = args
        .first()
        .map(|a| {
            a.parse().unwrap_or_else(|_| {
                eprintln!("error: queries_per_size must be a positive integer, got {a:?}");
                std::process::exit(2);
            })
        })
        .unwrap_or(50);

    eprintln!("running sublinearity experiment: fleets {sizes:?}, {queries} queries each");
    let rows = run_sublinear(&sizes, queries);
    println!("{}", sublinear_table(&rows));

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, sublinear_json(&rows)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
