//! F5: range-query cost via the 3-D R\*-tree vs exhaustive scan, as the
//! fleet grows — §4's sublinearity claim.
//!
//! Usage: `exp_f5_index_sublinear [queries_per_size]` — default 50.

use modb_sim::experiments::indexing::{run_sublinear, sublinear_table};

fn main() {
    let queries = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(50);
    let sizes = [1_000, 5_000, 20_000, 50_000];
    eprintln!("running sublinearity experiment: fleets {sizes:?}, {queries} queries each");
    let rows = run_sublinear(&sizes, queries);
    println!("{}", sublinear_table(&rows));
}
