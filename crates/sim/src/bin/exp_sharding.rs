//! W6: shard-key evaluation — cost-model scores for hash vs spatial
//! keys on two generated workloads, plus a live scatter-gather parity
//! check against a single union node.
//!
//! Usage: `exp_sharding [n_objects] [ticks] [--json PATH]`
//! (defaults: 300 objects, 24 ticks, 3 shards; `--json` writes the
//! scores and parity bits as a JSON document, the CI artifact
//! `BENCH_sharding.json`).

use modb_sim::experiments::sharding::{
    cluster_parity, score_shard_keys, sharding_json, sharding_table,
};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_sharding [n_objects] [ticks] [--json PATH]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        let flag_and_path: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
        flag_and_path.get(1).cloned().unwrap_or_else(|| {
            eprintln!("error: --json requires a path");
            std::process::exit(2);
        })
    });
    let mut args = args.into_iter();
    let n_objects = arg_or(&mut args, "n_objects", 300).max(6);
    let ticks = arg_or(&mut args, "ticks", 24).max(2);
    let n_shards = 3;

    eprintln!(
        "scoring shard keys: {n_objects} objects, {ticks} ticks, {n_shards} shards, \
         workloads [corridor-dispatch, district-rush]"
    );
    let rows = score_shard_keys(n_objects, n_shards, ticks);
    println!("{}", sharding_table(n_objects, n_shards, &rows));

    eprintln!("parity check: {n_shards}-shard cluster vs union node (hash key)");
    let parity_hash = cluster_parity(n_objects.min(24), n_shards, false);
    eprintln!("parity check: {n_shards}-shard cluster vs union node (spatial key)");
    let parity_spatial = cluster_parity(n_objects.min(24), n_shards, true);
    println!(
        "parity: hash={} spatial={}",
        if parity_hash { "ok" } else { "DIVERGED" },
        if parity_spatial { "ok" } else { "DIVERGED" }
    );

    if let Some(path) = json_path {
        let json = sharding_json(&rows, parity_hash, parity_spatial);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if !(parity_hash && parity_spatial) {
        eprintln!("FAIL: the routed cluster diverged from the union node");
        std::process::exit(1);
    }
}
