//! T3: may/must answer quality (Theorems 5–6) over simulated ground
//! truth: `must ⊆ actually-in-G ⊆ must ∪ may` with zero violations.
//!
//! Usage: `exp_t3_may_must [n_objects] [n_queries]` — defaults 2000 / 100.

use modb_sim::experiments::indexing::{may_must_table, run_may_must};

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let n_objects = args.first().copied().unwrap_or(2_000);
    let n_queries = args.get(1).copied().unwrap_or(100);
    // t = 10: past the immediate policies' bound crossover, so intervals
    // have shrunk and the must set is populated (Theorem 6 exercised).
    eprintln!("running may/must experiment: {n_objects} objects, {n_queries} queries");
    let r = run_may_must(n_objects, n_queries, 10.0);
    println!("{}", may_must_table(&r));
    if r.violations == 0 {
        println!("soundness: OK (no violations)");
    } else {
        println!("soundness: FAILED ({} violations)", r.violations);
        std::process::exit(1);
    }
}
