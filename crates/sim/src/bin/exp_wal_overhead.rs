//! W1: ingest throughput with the write-ahead log on and off, across
//! fsync policies — the measured price of durability.
//!
//! Usage: `exp_wal_overhead [n_objects] [rounds] [workers] [--json PATH]`
//! (defaults: 2000 objects × 50 rounds, 4 workers; the `Always` policy
//! automatically runs a reduced round count; `--json` writes the rows as
//! a JSON document, the CI artifact `BENCH_wal_overhead.json`).

use modb_sim::experiments::wal_overhead::{
    run_wal_overhead, wal_overhead_json, wal_overhead_table,
};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_wal_overhead [n_objects] [rounds] [workers] [--json PATH]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        let flag_and_path: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
        flag_and_path.get(1).cloned().unwrap_or_else(|| {
            eprintln!("error: --json requires a path");
            std::process::exit(2);
        })
    });
    let mut args = args.into_iter();
    let n_objects = arg_or(&mut args, "n_objects", 2_000);
    let rounds = arg_or(&mut args, "rounds", 50);
    let workers = arg_or(&mut args, "workers", 4);
    eprintln!(
        "running wal-overhead experiment: {n_objects} objects x {rounds} rounds, {workers} workers"
    );
    let rows = run_wal_overhead(n_objects, rounds, workers);
    println!("{}", wal_overhead_table(&rows));
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, wal_overhead_json(&rows)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
