//! W1: ingest throughput with the write-ahead log on and off, across
//! fsync policies — the measured price of durability.
//!
//! Usage: `exp_wal_overhead [n_objects] [rounds] [workers]`
//! (defaults: 2000 objects × 50 rounds, 4 workers; the `Always` policy
//! automatically runs a reduced round count).

use modb_sim::experiments::wal_overhead::{run_wal_overhead, wal_overhead_table};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_wal_overhead [n_objects] [rounds] [workers]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_objects = arg_or(&mut args, "n_objects", 2_000);
    let rounds = arg_or(&mut args, "rounds", 50);
    let workers = arg_or(&mut args, "workers", 4);
    eprintln!(
        "running wal-overhead experiment: {n_objects} objects x {rounds} rounds, {workers} workers"
    );
    let rows = run_wal_overhead(n_objects, rounds, workers);
    println!("{}", wal_overhead_table(&rows));
}
