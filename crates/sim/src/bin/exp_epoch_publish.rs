//! W3: epoch publication cost — full-clone publisher vs the change-log
//! delta publisher, at 0.1% / 1% / 10% fleet churn between epochs.
//!
//! Usage: `exp_epoch_publish [n_objects] [grid] [rounds]`
//! (defaults: 10000 objects on a 20x20 grid, 30 timed publishes per
//! cell; churn levels are derived as 0.1%, 1% and 10% of the fleet).

use modb_sim::experiments::epoch_publish::{epoch_publish_table, run_epoch_publish};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_epoch_publish [n_objects] [grid] [rounds]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_objects = arg_or(&mut args, "n_objects", 10_000).max(10);
    let grid = arg_or(&mut args, "grid", 20);
    let rounds = arg_or(&mut args, "rounds", 30).max(1);
    let churn_levels = [
        (n_objects / 1000).max(1),
        (n_objects / 100).max(1),
        (n_objects / 10).max(1),
    ];
    eprintln!(
        "running epoch-publish experiment: {n_objects} objects on a {grid}x{grid} grid, \
         churn {churn_levels:?}, {rounds} publishes per cell"
    );
    let rows = run_epoch_publish(n_objects, grid, &churn_levels, rounds);
    println!("{}", epoch_publish_table(n_objects, &rows));
}
