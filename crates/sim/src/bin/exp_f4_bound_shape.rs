//! F4: deviation-bound curves over time since the last update — dl
//! plateaus, ail/cil rise then decay (§3.3).
//!
//! Usage: `exp_f4_bound_shape [v] [v_max] [C]` — defaults are Example 1's
//! v = 1, V = 1.5, C = 5.

use modb_sim::experiments::bound_shape::{bound_shape_table, run_bound_shape};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let v = args.first().copied().unwrap_or(1.0);
    let v_max = args.get(1).copied().unwrap_or(1.5);
    let c = args.get(2).copied().unwrap_or(5.0);
    let rows = run_bound_shape(v, v_max, c, 15.0, 0.5);
    println!("{}", bound_shape_table(&rows, v, v_max, c));
}
