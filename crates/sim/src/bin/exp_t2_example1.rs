//! T2: the paper's worked Example 1 — analytic quantities plus a replayed
//! jam scenario, paper value vs computed value.

use modb_sim::experiments::example1::{example1_table, run_example1};

fn main() {
    let rows = run_example1();
    println!("{}", example1_table(&rows));
    let worst = rows.iter().map(|r| r.rel_error()).fold(0.0_f64, f64::max);
    println!("worst relative error: {:.3}%", worst * 100.0);
}
