//! T1: update savings vs the traditional non-temporal method (§1/§6's
//! "15 % of the updates / 85 % of the bandwidth" headline).
//!
//! Usage: `exp_t1_savings [n_trips] [C]` — defaults 100 trips, C = 5.

use modb_sim::experiments::savings::{run_savings, savings_table};
use modb_sim::WorkloadConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_trips = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(100);
    let c = args
        .iter()
        .filter_map(|a| a.parse::<f64>().ok())
        .nth(1)
        .unwrap_or(5.0);
    eprintln!("running savings experiment: {n_trips} trips, C = {c}");
    let rows = run_savings(
        42,
        WorkloadConfig {
            n_trips,
            ..WorkloadConfig::default()
        },
        c,
    );
    println!("{}", savings_table(&rows, c));
}
