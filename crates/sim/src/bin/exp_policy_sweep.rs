//! F1 + F2 + F3: the §3.4 policy sweep — messages, total cost, and average
//! uncertainty per policy as functions of the message cost C.
//!
//! Usage: `exp_policy_sweep [n_trips] [duration_minutes] [--baselines]`
//! Defaults: 100 one-hour trips, paper policies only.

use modb_sim::experiments::policy_sweep::{run_sweep, MetricKind, SweepConfig};
use modb_sim::WorkloadConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_trips = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(100);
    let duration = args
        .iter()
        .filter_map(|a| a.parse::<f64>().ok())
        .nth(1)
        .unwrap_or(60.0);
    let include_baselines = args.iter().any(|a| a == "--baselines");

    let config = SweepConfig {
        workload: WorkloadConfig {
            n_trips,
            duration,
            ..WorkloadConfig::default()
        },
        include_baselines,
        ..SweepConfig::default()
    };
    eprintln!(
        "running sweep: {n_trips} trips x {duration} min x {} cost points{}",
        config.c_values.len(),
        if include_baselines {
            " + baselines"
        } else {
            ""
        }
    );
    let result = run_sweep(&config);
    println!("{}", result.table(MetricKind::Messages));
    println!("{}", result.table(MetricKind::TotalCost));
    println!("{}", result.table(MetricKind::AvgUncertainty));
    println!("{}", result.table(MetricKind::AvgDeviation));
    println!(
        "bound violations across all runs: {} (soundness check; expected 0)",
        result.total_bound_violations()
    );

    // `--csv <dir>` also writes plot-ready files.
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        let dir = std::path::PathBuf::from(
            args.get(pos + 1)
                .map(String::as_str)
                .unwrap_or("results/csv"),
        );
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for (kind, name) in [
            (MetricKind::Messages, "f1_messages.csv"),
            (MetricKind::TotalCost, "f2_total_cost.csv"),
            (MetricKind::AvgUncertainty, "f3_uncertainty.csv"),
            (MetricKind::AvgDeviation, "avg_deviation.csv"),
        ] {
            modb_sim::csv::write_sweep_csv(&result, kind, &dir.join(name)).expect("write csv");
        }
        eprintln!("csv written to {}", dir.display());
    }
}
