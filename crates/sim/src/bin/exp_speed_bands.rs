//! W8: speed-banded vs single-tree filtering on a mixed city/highway
//! fleet — candidate ratio, filter p50/p99, and band migrations.
//!
//! Usage: `exp_speed_bands [n_objects] [n_queries] [grid] [--json PATH]`
//! (defaults: 100000 objects, 200 queries, 40×40 grid; `--json` writes
//! the report as the CI artifact `BENCH_speed_bands.json`).
//!
//! Exits non-zero if banding fails to reduce the candidate ratio, or if
//! the churn phase fails to migrate entries between bands. Index/scan
//! parity and banded≡single candidate equality are asserted inside the
//! run itself.

use modb_sim::experiments::speed_bands::{run_speed_bands, speed_bands_json, speed_bands_table};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_speed_bands [n_objects] [n_queries] [grid] [--json PATH]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        let flag_and_path: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
        flag_and_path.get(1).cloned().unwrap_or_else(|| {
            eprintln!("error: --json requires a path");
            std::process::exit(2);
        })
    });
    let mut args = args.into_iter();
    let n = arg_or(&mut args, "n_objects", 100_000).max(100);
    let queries = arg_or(&mut args, "n_queries", 200).max(5);
    let grid = arg_or(&mut args, "grid", 40).max(4);

    eprintln!(
        "running speed-band experiment: {n} objects on a {grid}x{grid} grid + highways, \
         {queries} queries per leg"
    );
    let report = run_speed_bands(n, queries, grid);
    println!("{}", speed_bands_table(&report));

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, speed_bands_json(&report)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    let single = &report.legs[0];
    let scaled = &report.legs[2];
    let mut failed = false;
    if scaled.cand_ratio >= single.cand_ratio {
        eprintln!(
            "FAIL: banded-scaled candidate ratio {:.4} did not improve on single {:.4}",
            scaled.cand_ratio, single.cand_ratio
        );
        failed = true;
    }
    if report.migrations == 0 {
        eprintln!("FAIL: churn phase produced no band migrations");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
