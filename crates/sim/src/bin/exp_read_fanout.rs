//! W9: aggregate query throughput vs follower count on a leader +
//! chained-follower topology, with parity and typed-staleness checks.
//!
//! Usage: `exp_read_fanout [n_objects] [max_followers] [--json PATH]`
//! (defaults: 60 objects, 4 followers; fan-outs ladder 1, 2, …, max;
//! `--json` writes the rows as a JSON document, the CI artifact
//! `BENCH_read_fanout.json`). Exits nonzero if any follower diverged
//! from the leader or staleness was not a typed refusal.

use modb_sim::experiments::read_fanout::{
    fanout_ladder, read_fanout_json, read_fanout_table, run_read_fanout,
};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_read_fanout [n_objects] [max_followers] [--json PATH]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        let flag_and_path: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
        flag_and_path.get(1).cloned().unwrap_or_else(|| {
            eprintln!("error: --json requires a path");
            std::process::exit(2);
        })
    });
    let mut args = args.into_iter();
    let n_objects = arg_or(&mut args, "n_objects", 60).max(4);
    let max_followers = arg_or(&mut args, "max_followers", 4).max(1);
    let fanouts = fanout_ladder(max_followers);

    eprintln!(
        "read fan-out: {n_objects} objects, chained follower ladder {fanouts:?}, \
         40 update batches, 40 query rounds per client"
    );
    let rows = run_read_fanout(n_objects, &fanouts, 40, 40);
    println!("{}", read_fanout_table(n_objects, &rows));

    if let Some(path) = json_path {
        let json = read_fanout_json(&rows);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if !rows.iter().all(|r| r.parity && r.stale_typed) {
        eprintln!("FAIL: a follower diverged from the leader or hung on a stale floor");
        std::process::exit(1);
    }
}
