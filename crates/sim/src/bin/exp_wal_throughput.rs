//! W7: the v2 log format and group commit — bytes per update across
//! segment formats, fsync collapse under concurrent acked ingest, and
//! replication wire bytes with a live standby convergence check.
//!
//! Usage: `exp_wal_throughput [n_objects] [rounds] [workers] [producers]
//! [--json PATH]` (defaults: 2000 objects × 50 rounds, 4 workers,
//! 8 acked producers; `--json` writes the report as a JSON document, the
//! CI artifact `BENCH_wal_throughput.json`).
//!
//! Exits non-zero if the v2-lz format fails to at least halve the log's
//! bytes per update, or if the standby fails to converge.

use modb_sim::experiments::wal_throughput::{
    run_wal_throughput, wal_throughput_json, wal_throughput_tables,
};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!(
                "usage: exp_wal_throughput [n_objects] [rounds] [workers] [producers] \
                 [--json PATH]"
            );
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        let flag_and_path: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
        flag_and_path.get(1).cloned().unwrap_or_else(|| {
            eprintln!("error: --json requires a path");
            std::process::exit(2);
        })
    });
    let mut args = args.into_iter();
    let n_objects = arg_or(&mut args, "n_objects", 2_000).max(8);
    let rounds = arg_or(&mut args, "rounds", 50).max(1);
    let workers = arg_or(&mut args, "workers", 4).max(1);
    let producers = arg_or(&mut args, "producers", 8).max(1);

    eprintln!(
        "running wal-throughput experiment: {n_objects} objects x {rounds} rounds, \
         {workers} workers, {producers} acked producers"
    );
    let report = run_wal_throughput(n_objects, rounds, workers, producers);
    println!("{}", wal_throughput_tables(&report));

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, wal_throughput_json(&report)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if report.disk_ratio() < 2.0 {
        eprintln!(
            "FAIL: v2-lz bytes/update reduction {:.2}x is below the 2x bar",
            report.disk_ratio()
        );
        failed = true;
    }
    if report.wire.applied != report.wire.records {
        eprintln!(
            "FAIL: standby applied {} of {} records",
            report.wire.applied, report.wire.records
        );
        failed = true;
    }
    if report.group_commit.commits > report.group_commit.tickets {
        eprintln!("FAIL: more fsyncs than tickets — the committer is not collapsing");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
