//! A1–A5: ablation studies over the quintuple's design choices
//! (DESIGN.md §6): fitting method, speed predictor, adaptive switching,
//! GPS noise, and simulation-tick sensitivity.
//!
//! Usage: `exp_ablations [n_trips] [duration_minutes]` — defaults 50 × 30.

use modb_sim::experiments::ablations::{
    ablation_table, run_adaptive_ablation, run_fitting_ablation, run_noise_ablation,
    run_predictor_ablation, run_tick_ablation,
};
use modb_sim::WorkloadConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_trips = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(50);
    let duration = args
        .iter()
        .filter_map(|a| a.parse::<f64>().ok())
        .nth(1)
        .unwrap_or(30.0);
    let cfg = WorkloadConfig {
        n_trips,
        duration,
        ..WorkloadConfig::default()
    };
    const C: f64 = 5.0;
    eprintln!("running ablations: {n_trips} trips x {duration} min, C = {C}");

    println!(
        "{}",
        ablation_table(
            "A1: fitting method (ail estimator/predictor, C = 5)",
            &run_fitting_ablation(42, cfg, C),
        )
    );
    println!(
        "{}",
        ablation_table(
            "A2: speed predictor (immediate-linear estimator, C = 5)",
            &run_predictor_ablation(42, cfg, C),
        )
    );
    println!(
        "{}",
        ablation_table(
            "A3: adaptive switching vs fixed policies, per driving profile",
            &run_adaptive_ablation(42, n_trips.min(20), duration, C),
        )
    );
    println!(
        "{}",
        ablation_table(
            "A4: GPS noise robustness (ail; noise sd in miles)",
            &run_noise_ablation(42, cfg, C, &[0.0, 0.01, 0.05, 0.2]),
        )
    );
    println!(
        "{}",
        ablation_table(
            "A5: simulation tick sensitivity (ail)",
            &run_tick_ablation(42, cfg, C, &[1.0 / 20.0, 1.0 / 60.0, 1.0 / 120.0]),
        )
    );
}
