//! W10: leader failover — write-availability gap (kill → detect →
//! promote → first ack) with a zero-acked-loss contract.
//!
//! Usage: `exp_failover [n_objects] [trials] [--json PATH]` (defaults:
//! 40 objects, 3 trials; `--json` writes the rows as a JSON document,
//! the CI artifact `BENCH_failover.json`). Exits nonzero if any trial
//! lost an acked write, diverged from the dead leader's state, or left
//! the survivor stranded.

use modb_sim::experiments::failover::{
    failover_contract, failover_json, failover_table, run_failover,
};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_failover [n_objects] [trials] [--json PATH]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        let flag_and_path: Vec<String> = args.drain(i..(i + 2).min(args.len())).collect();
        flag_and_path.get(1).cloned().unwrap_or_else(|| {
            eprintln!("error: --json requires a path");
            std::process::exit(2);
        })
    });
    let mut args = args.into_iter();
    let n_objects = arg_or(&mut args, "n_objects", 40).max(4);
    let trials = arg_or(&mut args, "trials", 3).max(1);

    eprintln!(
        "failover: {n_objects} objects, {trials} kill-and-recover trials, \
         20 update batches each"
    );
    let rows = run_failover(n_objects, trials, 20);
    println!("{}", failover_table(n_objects, &rows));

    if let Some(path) = json_path {
        let json = failover_json(&rows);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    if !failover_contract(&rows) {
        eprintln!("FAIL: an acked write was lost, state diverged, or the survivor stranded");
        std::process::exit(1);
    }
}
