//! F7 (supplementary): the cost-rate curve whose minimum Proposition 1
//! identifies, at the Example 1 parameters.
//!
//! Usage: `exp_f7_cost_rate [a] [b] [C]` — defaults a = 1, b = 2, C = 5.

use modb_sim::experiments::cost_rate_curve::{cost_rate_table, run_cost_rate_curve};

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let a = args.first().copied().unwrap_or(1.0);
    let b = args.get(1).copied().unwrap_or(2.0);
    let c = args.get(2).copied().unwrap_or(5.0);
    let rows = run_cost_rate_curve(a, b, c, 21);
    println!("{}", cost_rate_table(&rows, a, b, c));
}
