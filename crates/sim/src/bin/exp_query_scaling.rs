//! W2: range-query throughput scaling — the global-lock read path vs the
//! epoch-snapshot query engine, under concurrent ingest.
//!
//! Usage: `exp_query_scaling [n_objects] [grid] [window_ms] [max_threads]`
//! (defaults: 10000 objects on a 20x20 grid, 500 ms windows, thread
//! counts 1, 2, …, up to 4; each power of two is measured in both modes).

use modb_sim::experiments::query_scaling::{query_scaling_table, run_query_scaling};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_query_scaling [n_objects] [grid] [window_ms] [max_threads]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_objects = arg_or(&mut args, "n_objects", 10_000);
    let grid = arg_or(&mut args, "grid", 20);
    let window_ms = arg_or(&mut args, "window_ms", 500);
    let max_threads = arg_or(&mut args, "max_threads", 4).max(1);
    let mut thread_counts = Vec::new();
    let mut t = 1;
    while t <= max_threads {
        thread_counts.push(t);
        t *= 2;
    }
    eprintln!(
        "running query-scaling experiment: {n_objects} objects on a {grid}x{grid} grid, \
         {window_ms} ms windows, threads {thread_counts:?}"
    );
    let rows = run_query_scaling(n_objects, grid, &thread_counts, window_ms as u64);
    println!("{}", query_scaling_table(&rows));
}
