//! W4: warm-standby follower lag vs update rate, with the measured
//! leader-vs-follower deviation checked against the lag-widened
//! `2·v_max·Δ` bound (DESIGN.md §10).
//!
//! Usage: `exp_replication [n_objects] [batches]`
//! (defaults: 500 objects, 120 update batches per rate; the rate
//! levels are derived as n/4, n and 4n updates per batch).

use modb_sim::experiments::replication::{replication_lag_table, run_replication_lag};

const V_MAX: f64 = 2.0;

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_replication [n_objects] [batches]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_objects = arg_or(&mut args, "n_objects", 500).max(10);
    let batches = arg_or(&mut args, "batches", 120).max(4) as u64;
    let rates = [(n_objects / 4).max(1), n_objects, n_objects * 4];
    eprintln!(
        "running replication-lag experiment: {n_objects} objects, rates {rates:?} \
         updates/batch, {batches} batches per rate, v_max {V_MAX}"
    );
    let rows = run_replication_lag(n_objects, &rates, batches, V_MAX);
    println!("{}", replication_lag_table(n_objects, V_MAX, &rows));
    if rows.iter().any(|r| !r.within_bound) {
        eprintln!("FAIL: a measured deviation escaped its lag-widened bound");
        std::process::exit(1);
    }
}
