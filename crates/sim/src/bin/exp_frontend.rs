//! W5: query front-end overhead — per-statement cost of the loopback
//! TCP path vs the in-process engine, with a remote/local parity check.
//!
//! Usage: `exp_frontend [n_objects] [reps]`
//! (defaults: 500 objects, 20 repetitions per batch size; batch sizes
//! are fixed at 1, 4, 16, 64 statements).

use modb_sim::experiments::frontend::{frontend_table, run_frontend_overhead};

fn arg_or(args: &mut impl Iterator<Item = String>, name: &str, default: usize) -> usize {
    match args.next() {
        None => default,
        Some(a) => a.parse().unwrap_or_else(|_| {
            eprintln!("error: {name} must be a positive integer, got {a:?}");
            eprintln!("usage: exp_frontend [n_objects] [reps]");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n_objects = arg_or(&mut args, "n_objects", 500).max(4);
    let reps = arg_or(&mut args, "reps", 20).max(1);
    let sizes = [1usize, 4, 16, 64];
    eprintln!(
        "running front-end overhead experiment: {n_objects} objects, batch sizes \
         {sizes:?}, {reps} reps per size"
    );
    let rows = run_frontend_overhead(n_objects, &sizes, reps);
    println!("{}", frontend_table(n_objects, &rows));
    if rows.iter().any(|r| !r.parity) {
        eprintln!("FAIL: a remote batch diverged from the local engine");
        std::process::exit(1);
    }
}
