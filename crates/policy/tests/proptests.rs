//! Property-based tests for the policy layer: Proposition 1 optimality,
//! bound soundness, and engine invariants.

use modb_policy::{
    combined_bound, cost_rate, fast_bound, optimal_threshold, optimal_threshold_immediate,
    slow_bound, BoundKind, Policy, PolicyEngine, PositionUpdate, Quintuple,
};
use proptest::prelude::*;

fn params() -> impl Strategy<Value = (f64, f64, f64)> {
    (0.01f64..5.0, 0.0f64..10.0, 0.1f64..50.0)
}

proptest! {
    /// Proposition 1: k_opt is a stationary minimum — the cost rate at
    /// k_opt is no worse than at nearby and far-away candidates.
    #[test]
    fn prop1_threshold_is_global_minimum((a, b, c) in params(), factor in 0.05f64..20.0) {
        let k_opt = optimal_threshold(a, b, c);
        prop_assert!(k_opt > 0.0);
        let candidate = k_opt * factor;
        prop_assert!(cost_rate(k_opt, a, b, c) <= cost_rate(candidate, a, b, c) + 1e-9);
    }

    /// k_opt satisfies its defining quadratic k² + 2abk − 2aC = 0.
    #[test]
    fn prop1_threshold_satisfies_quadratic((a, b, c) in params()) {
        let k = optimal_threshold(a, b, c);
        let residual = k * k + 2.0 * a * b * k - 2.0 * a * c;
        prop_assert!(residual.abs() < 1e-6 * (1.0 + 2.0 * a * c), "residual {residual}");
    }

    /// §3.2's inequality: the delayed threshold never exceeds the
    /// immediate one.
    #[test]
    fn delayed_le_immediate((a, b, c) in params()) {
        prop_assert!(optimal_threshold(a, b, c) <= optimal_threshold_immediate(a, c) + 1e-12);
    }

    /// Bounds are non-negative, zero at t = 0, and the combined bound
    /// dominates both sides.
    #[test]
    fn bounds_sound(v in 0.0f64..2.0, headroom in 0.0f64..2.0,
                    c in 0.1f64..50.0, t in 0.0f64..120.0) {
        let v_max = v + headroom;
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            let s = slow_bound(kind, v, c, t);
            let f = fast_bound(kind, v, v_max, c, t);
            let cb = combined_bound(kind, v, v_max, c, t);
            prop_assert!(s >= 0.0 && f >= 0.0 && cb >= 0.0);
            prop_assert!(s <= v * t + 1e-12);
            prop_assert!(f <= headroom * t + 1e-12);
            prop_assert!(cb + 1e-12 >= s);
            prop_assert!(cb + 1e-12 >= f);
        }
        prop_assert_eq!(slow_bound(BoundKind::Delayed, v, c, 0.0), 0.0);
        prop_assert_eq!(slow_bound(BoundKind::Immediate, v, c, 0.0), 0.0);
    }

    /// Soundness of the §3.3 machinery end-to-end: run a dl/ail/cil engine
    /// over a random piecewise-constant speed trace whose speed never
    /// exceeds v_max; at every tick the *actual* deviation must stay below
    /// the policy's advertised uncertainty bound plus one tick of slack.
    #[test]
    fn engine_deviation_within_advertised_bound(
        seed_speeds in proptest::collection::vec(0.0f64..1.5, 4..40),
        c in 0.5f64..20.0,
        which in 0..3usize,
    ) {
        let v_max = 1.5;
        let dt = 0.02;
        let q = match which {
            0 => Quintuple::dl(c),
            1 => Quintuple::ail(c),
            _ => Quintuple::cil(c),
        };
        let start = PositionUpdate { time: 0.0, arc: 0.0, speed: seed_speeds[0] };
        let route_len = 1e9; // effectively unbounded
        let mut engine = PolicyEngine::new(q, route_len, 1.0, start).unwrap();
        let mut arc = 0.0;
        let mut t = 0.0;
        // Each seed speed is held for 1 minute.
        for &v in &seed_speeds {
            let mut remaining = 1.0;
            while remaining > 0.0 {
                t += dt;
                remaining -= dt;
                arc += v * dt;
                let dev_before = engine.deviation(t, arc);
                // The policy fires *at* the threshold; between ticks the
                // deviation can overshoot by one tick of relative motion,
                // and for the immediate policies the bound 2C/t itself
                // decays between ticks — so compare against the bound as
                // of the previous tick, plus one tick of growth. That is
                // the paper's bound at tick resolution.
                let bound = engine
                    .uncertainty(t, v_max)
                    .max(engine.uncertainty(t - dt, v_max));
                prop_assert!(
                    dev_before <= bound + v_max * dt + 1e-9,
                    "deviation {dev_before} exceeds bound {bound} at t={t} ({})",
                    engine.label()
                );
                engine.tick(t, arc, v).unwrap();
            }
        }
    }

    /// The engine never reports a deviation after an update fired at that
    /// same instant, and update timestamps strictly increase.
    #[test]
    fn engine_update_stream_well_formed(
        seed_speeds in proptest::collection::vec(0.0f64..1.5, 4..24),
        c in 0.5f64..20.0,
    ) {
        let dt = 0.05;
        let start = PositionUpdate { time: 0.0, arc: 0.0, speed: seed_speeds[0] };
        let mut engine = PolicyEngine::new(Quintuple::ail(c), 1e9, 1.0, start).unwrap();
        let mut arc = 0.0;
        let mut t = 0.0;
        let mut last_update_time = f64::NEG_INFINITY;
        for &v in &seed_speeds {
            for _ in 0..20 {
                t += dt;
                arc += v * dt;
                if let Some(u) = engine.tick(t, arc, v).unwrap() {
                    prop_assert!(u.time > last_update_time);
                    prop_assert!(u.speed >= 0.0 && u.speed.is_finite());
                    prop_assert!((u.arc - arc).abs() < 1e-12);
                    prop_assert!(engine.deviation(t, arc) < 1e-9);
                    last_update_time = u.time;
                }
            }
        }
    }
}
