//! Fitting methods (§3.1): turning an observed deviation history into
//! estimator coefficients.
//!
//! The paper's **simple fitting method** (§3.2): at any point in time the
//! delay `b` is the number of time units from the last update until the
//! last time unit when the deviation was 0, and the slope is
//! `a = k / (t − b)` where `k` is the current deviation and `t` the time
//! elapsed since the last update. We additionally provide a least-squares
//! fit (the paper allows any fitting method; see §3.1's reference to
//! statistical estimation).

use std::collections::VecDeque;

use crate::estimator::{EstimatorKind, FittedEstimator};

/// Default tolerance under which a deviation counts as "zero" for delay
/// tracking (miles). Real traces never return to exactly 0.0; 1e-3 miles
/// (~5 feet) is far below GPS resolution.
pub const ZERO_DEVIATION_EPS: f64 = 1e-3;

/// How estimator coefficients are derived from the deviation history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FittingMethod {
    /// The paper's simple fitting method: one-point slope through the
    /// current deviation.
    Simple,
    /// Least-squares slope over the recorded deviation samples after the
    /// delay (an alternative "fitting method" in the quintuple's sense).
    LeastSquares,
}

/// Deviation samples since the last update, with delay tracking.
///
/// The onboard computer records `(t, d(t))` each tick (`t` measured since
/// the last update). Memory is bounded: only the most recent
/// `max_samples` points are kept for least-squares; the last-zero time is
/// tracked as a scalar so the delay never degrades.
#[derive(Debug, Clone)]
pub struct DeviationTrace {
    samples: VecDeque<(f64, f64)>,
    max_samples: usize,
    last_zero: f64,
    zero_eps: f64,
}

impl DeviationTrace {
    /// Creates an empty trace keeping at most `max_samples` points and
    /// treating deviations below `zero_eps` as zero.
    pub fn new(max_samples: usize, zero_eps: f64) -> Self {
        DeviationTrace {
            samples: VecDeque::with_capacity(max_samples.min(4096)),
            max_samples: max_samples.max(1),
            last_zero: 0.0,
            zero_eps: zero_eps.max(0.0),
        }
    }

    /// Clears the trace — called when an update is sent (deviation resets
    /// to zero at the update instant).
    pub fn reset(&mut self) {
        self.samples.clear();
        self.last_zero = 0.0;
    }

    /// Records the deviation `d` observed `t` minutes after the last
    /// update. Times must be fed in non-decreasing order.
    pub fn push(&mut self, t: f64, d: f64) {
        debug_assert!(t >= 0.0 && d >= 0.0);
        if d < self.zero_eps {
            self.last_zero = t;
        }
        if self.samples.len() == self.max_samples {
            self.samples.pop_front();
        }
        self.samples.push_back((t, d));
    }

    /// The paper's delay `b`: time since the last update until the last
    /// instant the deviation was zero. Zero when the deviation has never
    /// been zero since the update (it was zero *at* the update).
    #[inline]
    pub fn delay(&self) -> f64 {
        self.last_zero
    }

    /// The most recent `(t, d)` sample, if any.
    #[inline]
    pub fn current(&self) -> Option<(f64, f64)> {
        self.samples.back().copied()
    }

    /// Number of retained samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when no samples are recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl FittingMethod {
    /// Fits the estimator family to the trace.
    ///
    /// Returns `None` when a slope cannot be determined: no samples, a
    /// current deviation of zero (the policy takes no action then — §3.2:
    /// "if k = 0, then the moving object does not do anything"), or a
    /// degenerate time base.
    pub fn fit(&self, kind: EstimatorKind, trace: &DeviationTrace) -> Option<FittedEstimator> {
        let (t, k) = trace.current()?;
        if k < trace.zero_eps {
            return None;
        }
        let b = match kind {
            EstimatorKind::DelayedLinear => trace.delay(),
            EstimatorKind::ImmediateLinear => 0.0,
        };
        match self {
            FittingMethod::Simple => {
                let ramp = t - b;
                if ramp <= 0.0 {
                    return None;
                }
                Some(FittedEstimator {
                    slope: k / ramp,
                    delay: b,
                })
            }
            FittingMethod::LeastSquares => {
                // Slope through the origin of the ramp: minimise
                // Σ (dᵢ − a·(tᵢ−b))² over samples with tᵢ > b.
                let mut num = 0.0;
                let mut den = 0.0;
                for &(ti, di) in &trace.samples {
                    let x = ti - b;
                    if x > 0.0 {
                        num += x * di;
                        den += x * x;
                    }
                }
                if den <= 0.0 {
                    return None;
                }
                Some(FittedEstimator {
                    slope: num / den,
                    delay: b,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_from(points: &[(f64, f64)]) -> DeviationTrace {
        let mut t = DeviationTrace::new(1024, ZERO_DEVIATION_EPS);
        for &(ti, di) in points {
            t.push(ti, di);
        }
        t
    }

    #[test]
    fn delay_tracks_last_zero() {
        let t = trace_from(&[(1.0, 0.0), (2.0, 0.0), (3.0, 0.5), (4.0, 1.0)]);
        assert_eq!(t.delay(), 2.0);
        let never_zero = trace_from(&[(1.0, 0.3), (2.0, 0.6)]);
        assert_eq!(never_zero.delay(), 0.0);
    }

    #[test]
    fn simple_fit_delayed_matches_paper() {
        // Deviation zero until t=2, then rises to 1.5 at t=5:
        // b = 2, a = 1.5 / (5−2) = 0.5.
        let t = trace_from(&[(1.0, 0.0), (2.0, 0.0), (3.0, 0.5), (5.0, 1.5)]);
        let f = FittingMethod::Simple
            .fit(EstimatorKind::DelayedLinear, &t)
            .unwrap();
        assert!((f.delay - 2.0).abs() < 1e-12);
        assert!((f.slope - 0.5).abs() < 1e-12);
    }

    #[test]
    fn simple_fit_immediate_ignores_delay() {
        // Same trace, immediate estimator: a = k/t = 1.5/5 = 0.3, b = 0.
        let t = trace_from(&[(1.0, 0.0), (2.0, 0.0), (3.0, 0.5), (5.0, 1.5)]);
        let f = FittingMethod::Simple
            .fit(EstimatorKind::ImmediateLinear, &t)
            .unwrap();
        assert_eq!(f.delay, 0.0);
        assert!((f.slope - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fit_returns_none_when_deviation_zero_or_empty() {
        let empty = DeviationTrace::new(16, ZERO_DEVIATION_EPS);
        assert!(FittingMethod::Simple
            .fit(EstimatorKind::DelayedLinear, &empty)
            .is_none());
        let zero_now = trace_from(&[(1.0, 0.5), (2.0, 0.0)]);
        assert!(FittingMethod::Simple
            .fit(EstimatorKind::DelayedLinear, &zero_now)
            .is_none());
    }

    #[test]
    fn fit_handles_instantaneous_jump() {
        // Deviation appears at the very instant tracked as last-zero:
        // ramp = 0 → cannot fit.
        let mut t = DeviationTrace::new(16, ZERO_DEVIATION_EPS);
        t.push(2.0, 0.0);
        // same-time nonzero sample (e.g. measurement glitch)
        t.push(2.0, 0.7);
        assert!(FittingMethod::Simple
            .fit(EstimatorKind::DelayedLinear, &t)
            .is_none());
        // The immediate estimator still fits: a = k/t.
        let f = FittingMethod::Simple
            .fit(EstimatorKind::ImmediateLinear, &t)
            .unwrap();
        assert!((f.slope - 0.35).abs() < 1e-12);
    }

    #[test]
    fn least_squares_recovers_exact_ramp() {
        // d(t) = 0.4·(t−1): least squares should recover slope 0.4 exactly.
        let pts: Vec<(f64, f64)> = (0..=40)
            .map(|i| {
                let t = i as f64 * 0.25;
                (t, (0.4 * (t - 1.0)).max(0.0))
            })
            .collect();
        let t = trace_from(&pts);
        let f = FittingMethod::LeastSquares
            .fit(EstimatorKind::DelayedLinear, &t)
            .unwrap();
        assert!((f.slope - 0.4).abs() < 1e-9, "slope {}", f.slope);
        assert!((f.delay - 1.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_averages_noise() {
        // Noisy ramp around slope 1: LS slope should be closer to 1 than
        // the simple fit, which only sees the last (high) point.
        let pts = [
            (1.0, 1.1),
            (2.0, 1.9),
            (3.0, 3.05),
            (4.0, 3.9),
            (5.0, 5.5), // outlier high
        ];
        let t = trace_from(&pts);
        let ls = FittingMethod::LeastSquares
            .fit(EstimatorKind::ImmediateLinear, &t)
            .unwrap();
        let simple = FittingMethod::Simple
            .fit(EstimatorKind::ImmediateLinear, &t)
            .unwrap();
        assert!((ls.slope - 1.0).abs() < (simple.slope - 1.0).abs());
    }

    #[test]
    fn trace_capacity_is_bounded_but_delay_persists() {
        let mut t = DeviationTrace::new(4, ZERO_DEVIATION_EPS);
        t.push(1.0, 0.0); // zero recorded, then evicted
        for i in 2..=10 {
            t.push(i as f64, i as f64 * 0.1);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.delay(), 1.0); // survives eviction
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = trace_from(&[(1.0, 0.0), (2.0, 1.0)]);
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.delay(), 0.0);
        assert!(t.current().is_none());
    }
}
