//! Deviation bounds (§3.3, Propositions 2–4 and Corollary 1).
//!
//! The DBMS knows each object's update policy, last declared speed `v`,
//! update cost `C`, and (optionally) maximum trip speed `V`. From those it
//! bounds the deviation at any time `t` since the last update without
//! hearing from the object — the *uncertainty* attached to every position
//! answer.
//!
//! | policy | slow bound | fast bound |
//! |---|---|---|
//! | dl  | `min{√(2vC), vt}` | `min{√(2(V−v)C), (V−v)t}` |
//! | ail / cil | `min{2C/t, vt}` | `min{2C/t, (V−v)t}` |
//!
//! The combined bound uses `D = max{v, V−v}`. The immediate policies'
//! bound *decreases* after `t = √(2C/D)` — the paper's "surprising
//! positive result"; the dl bound plateaus instead.

/// The estimator family a bound refers to. The bounds only depend on
/// whether the policy is delayed (dl) or immediate (ail/cil), not on the
/// predicted speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// Delayed-linear policy (Propositions 2–3).
    Delayed,
    /// Immediate-linear policies, ail and cil (Proposition 4).
    Immediate,
}

/// Proposition 2 (dl) / Proposition 4 slow part (ail, cil): bound on the
/// *slow* deviation — how far the actual position can lag the database
/// position — `t` minutes after the last update, with declared speed `v`
/// and update cost `C`.
pub fn slow_bound(kind: BoundKind, v: f64, c: f64, t: f64) -> f64 {
    debug_assert!(v >= 0.0 && c > 0.0 && t >= 0.0);
    match kind {
        BoundKind::Delayed => ((2.0 * v * c).sqrt()).min(v * t),
        BoundKind::Immediate => {
            if t == 0.0 {
                0.0
            } else {
                (2.0 * c / t).min(v * t)
            }
        }
    }
}

/// Proposition 3 (dl) / Proposition 4 fast part (ail, cil): bound on the
/// *fast* deviation — how far the actual position can run ahead of the
/// database position — given the trip's maximum speed `V ≥ v`.
pub fn fast_bound(kind: BoundKind, v: f64, v_max: f64, c: f64, t: f64) -> f64 {
    debug_assert!(v >= 0.0 && c > 0.0 && t >= 0.0);
    let headroom = (v_max - v).max(0.0);
    match kind {
        BoundKind::Delayed => ((2.0 * headroom * c).sqrt()).min(headroom * t),
        BoundKind::Immediate => {
            if t == 0.0 {
                0.0
            } else {
                (2.0 * c / t).min(headroom * t)
            }
        }
    }
}

/// Corollary 1 (dl) / Proposition 4 combined (ail, cil): bound on the
/// total deviation either way, using `D = max{v, V − v}`.
pub fn combined_bound(kind: BoundKind, v: f64, v_max: f64, c: f64, t: f64) -> f64 {
    debug_assert!(v >= 0.0 && c > 0.0 && t >= 0.0);
    let d = v.max((v_max - v).max(0.0));
    match kind {
        BoundKind::Delayed => ((2.0 * d * c).sqrt()).min(d * t),
        BoundKind::Immediate => {
            if t == 0.0 {
                0.0
            } else {
                (2.0 * c / t).min(d * t)
            }
        }
    }
}

/// Time at which the slow bound stops growing: the crossover
/// `t* = √(2C/v)` where the linear ramp meets the cap (`∞` for `v = 0`).
/// For dl the bound plateaus after `t*`; for ail/cil it decreases.
pub fn slow_crossover_time(v: f64, c: f64) -> f64 {
    debug_assert!(v >= 0.0 && c > 0.0);
    if v == 0.0 {
        f64::INFINITY
    } else {
        (2.0 * c / v).sqrt()
    }
}

/// Fast-bound crossover `t* = √(2C/(V−v))` (`∞` when `V ≤ v`).
pub fn fast_crossover_time(v: f64, v_max: f64, c: f64) -> f64 {
    slow_crossover_time((v_max - v).max(0.0), c)
}

/// The DBMS-side uncertainty interval in route-distance coordinates:
/// `l(t) = v·t − BS(t)` and `u(t) = v·t + BF(t)` (§4.1.1), both measured
/// from the position declared in the last update.
///
/// Returns `(l, u)`; `l` may be negative (the object may be behind its
/// starting point only if it reversed, which the model excludes, so
/// callers typically clamp `l ≥ −(arc of start)` — done at the route
/// layer).
pub fn uncertainty_interval(kind: BoundKind, v: f64, v_max: f64, c: f64, t: f64) -> (f64, f64) {
    let bs = slow_bound(kind, v, c, t);
    let bf = fast_bound(kind, v, v_max, c, t);
    (v * t - bs, v * t + bf)
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 5.0;
    const V: f64 = 1.0; // declared speed, Example 1
    const VMAX: f64 = 1.5; // maximum speed, Example 1

    /// Example 1 (first continuation): dl slow bound rises at 1 mi/min for
    /// the first ~3 minutes, then stays at √10 ≈ 3.16 forever.
    #[test]
    fn example1_dl_slow_bound() {
        let cap = (2.0_f64 * V * C).sqrt();
        assert!((cap - 3.16).abs() < 0.01);
        assert_eq!(slow_bound(BoundKind::Delayed, V, C, 1.0), 1.0);
        assert_eq!(slow_bound(BoundKind::Delayed, V, C, 2.0), 2.0);
        assert!((slow_bound(BoundKind::Delayed, V, C, 3.0) - 3.0).abs() < 1e-12);
        // After the crossover (≈3.16 min) the bound is constant.
        for t in [4.0, 10.0, 15.0] {
            assert!((slow_bound(BoundKind::Delayed, V, C, t) - cap).abs() < 1e-12);
        }
        assert!((slow_crossover_time(V, C) - cap / V).abs() < 1e-12);
    }

    /// Example 1: dl fast bound rises at 0.5 mi/min for ~4.5 minutes, then
    /// stays at √5 ≈ 2.24.
    #[test]
    fn example1_dl_fast_bound() {
        let cap = (2.0_f64 * (VMAX - V) * C).sqrt();
        assert!((cap - 2.24).abs() < 0.01);
        assert_eq!(fast_bound(BoundKind::Delayed, V, VMAX, C, 2.0), 1.0);
        assert!((fast_bound(BoundKind::Delayed, V, VMAX, C, 4.0) - 2.0).abs() < 1e-12);
        for t in [5.0, 10.0] {
            assert!((fast_bound(BoundKind::Delayed, V, VMAX, C, t) - cap).abs() < 1e-12);
        }
        let t_star = fast_crossover_time(V, VMAX, C);
        assert!((t_star - (2.0 * C / 0.5_f64).sqrt()).abs() < 1e-12);
        assert!((t_star - 4.47).abs() < 0.01);
    }

    /// Example 1 (second continuation): the ail slow bound rises for ~3
    /// minutes and then *decreases* as 2C/t = 10/t.
    #[test]
    fn example1_ail_bounds_decrease() {
        assert_eq!(slow_bound(BoundKind::Immediate, V, C, 1.0), 1.0);
        assert_eq!(slow_bound(BoundKind::Immediate, V, C, 2.0), 2.0);
        // Paper: "for t ≥ 4, it is 10/t".
        for t in [4.0, 5.0, 8.0, 20.0] {
            assert!((slow_bound(BoundKind::Immediate, V, C, t) - 10.0 / t).abs() < 1e-12);
        }
        // Fast bound decreases too: "for t ≥ 5, it is 10/t".
        assert_eq!(fast_bound(BoundKind::Immediate, V, VMAX, C, 2.0), 1.0);
        for t in [5.0, 8.0, 20.0] {
            assert!((fast_bound(BoundKind::Immediate, V, VMAX, C, t) - 10.0 / t).abs() < 1e-12);
        }
    }

    /// The bounds are continuous at the crossover and zero at t = 0.
    #[test]
    fn bounds_zero_at_origin_and_continuous() {
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            assert_eq!(slow_bound(kind, V, C, 0.0), 0.0);
            assert_eq!(fast_bound(kind, V, VMAX, C, 0.0), 0.0);
            assert_eq!(combined_bound(kind, V, VMAX, C, 0.0), 0.0);
            let t_star = slow_crossover_time(V, C);
            let before = slow_bound(kind, V, C, t_star - 1e-9);
            let after = slow_bound(kind, V, C, t_star + 1e-9);
            assert!((before - after).abs() < 1e-6);
        }
    }

    /// Combined bound dominates both one-sided bounds (it uses
    /// D = max{v, V−v} ≥ each individual rate).
    #[test]
    fn combined_dominates() {
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            for t in [0.1, 1.0, 3.0, 10.0, 60.0] {
                let cb = combined_bound(kind, V, VMAX, C, t);
                assert!(cb + 1e-12 >= slow_bound(kind, V, C, t), "{kind:?} t={t}");
                assert!(
                    cb + 1e-12 >= fast_bound(kind, V, VMAX, C, t),
                    "{kind:?} t={t}"
                );
            }
        }
    }

    /// Immediate bound is never above the delayed bound after the
    /// crossover — the reason the paper calls ail superior for
    /// uncertainty.
    #[test]
    fn immediate_bound_beats_delayed_after_crossover() {
        let t_star = slow_crossover_time(V, C);
        for t in [t_star + 0.1, t_star + 1.0, t_star * 3.0] {
            assert!(
                slow_bound(BoundKind::Immediate, V, C, t)
                    <= slow_bound(BoundKind::Delayed, V, C, t) + 1e-12
            );
        }
    }

    /// Stopped object (v = 0): it cannot be slow at all; fast bound governs.
    #[test]
    fn zero_declared_speed() {
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            assert_eq!(slow_bound(kind, 0.0, C, 5.0), 0.0);
            assert!(fast_bound(kind, 0.0, VMAX, C, 5.0) > 0.0);
        }
        assert_eq!(slow_crossover_time(0.0, C), f64::INFINITY);
    }

    /// Declared speed at the maximum (v = V): no fast headroom.
    #[test]
    fn declared_at_max_speed() {
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            assert_eq!(fast_bound(kind, VMAX, VMAX, C, 5.0), 0.0);
        }
        assert_eq!(fast_crossover_time(VMAX, VMAX, C), f64::INFINITY);
    }

    /// Uncertainty interval brackets the nominal position v·t.
    #[test]
    fn uncertainty_interval_brackets_nominal() {
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            for t in [0.0, 0.5, 2.0, 5.0, 12.0] {
                let (l, u) = uncertainty_interval(kind, V, VMAX, C, t);
                let nominal = V * t;
                assert!(l <= nominal + 1e-12);
                assert!(u >= nominal - 1e-12);
                assert!(u - l <= 2.0 * combined_bound(kind, V, VMAX, C, t) + 1e-9);
            }
        }
    }

    /// The slow bound can never exceed distance actually claimable: v·t.
    #[test]
    fn slow_bound_at_most_vt() {
        for kind in [BoundKind::Delayed, BoundKind::Immediate] {
            for t in [0.1, 1.0, 2.0, 7.0] {
                assert!(slow_bound(kind, V, C, t) <= V * t + 1e-12);
            }
        }
    }
}
