//! Adaptive policy switching (§3.1).
//!
//! "Since the update policy is a position subattribute, each position
//! update may change the policy. … a policy for which the predicted speed
//! is the current speed may be appropriate for highway driving in
//! non-rush hour (when the speed fluctuates only mildly), whereas a
//! policy for which the predicted speed is the average speed may be
//! appropriate for city driving, where the speed fluctuates sharply."
//!
//! [`AdaptivePolicy`] implements exactly that: it watches the coefficient
//! of variation of recent speeds and, at each update point (the only
//! instants the paper allows a policy change), switches between a
//! mild-regime quintuple (current-speed predictor) and a sharp-regime
//! quintuple (average-speed predictor).

use std::collections::VecDeque;

use crate::engine::{Policy, PolicyEngine, PositionUpdate, Quintuple};
use crate::error::PolicyError;

/// Default speed-observation window (ticks) for regime detection.
pub const DEFAULT_WINDOW: usize = 120;
/// Default coefficient-of-variation boundary between "mild" and "sharp"
/// fluctuation. City stop-and-go traces run well above 0.5; highway
/// cruising well below.
pub const DEFAULT_CV_THRESHOLD: f64 = 0.35;

/// A meta-policy that switches quintuples at update points based on the
/// observed speed-fluctuation regime.
#[derive(Debug, Clone)]
pub struct AdaptivePolicy {
    engine: PolicyEngine,
    mild: Quintuple,
    sharp: Quintuple,
    route_len: f64,
    direction_sign: f64,
    window: VecDeque<f64>,
    window_cap: usize,
    cv_threshold: f64,
    switches: usize,
}

impl AdaptivePolicy {
    /// Creates an adaptive policy with the paper's suggested pairing:
    /// **cil** for mild regimes, **ail** for sharp regimes.
    pub fn new(
        update_cost: f64,
        route_len: f64,
        direction_sign: f64,
        initial: PositionUpdate,
    ) -> Result<Self, PolicyError> {
        Self::with_quintuples(
            Quintuple::cil(update_cost),
            Quintuple::ail(update_cost),
            route_len,
            direction_sign,
            initial,
        )
    }

    /// Creates an adaptive policy with explicit mild/sharp quintuples.
    ///
    /// # Errors
    ///
    /// Propagates engine construction failures.
    pub fn with_quintuples(
        mild: Quintuple,
        sharp: Quintuple,
        route_len: f64,
        direction_sign: f64,
        initial: PositionUpdate,
    ) -> Result<Self, PolicyError> {
        // Start in the mild configuration; the first update re-evaluates.
        let engine = PolicyEngine::new(mild, route_len, direction_sign, initial)?;
        sharp.validate()?;
        Ok(AdaptivePolicy {
            engine,
            mild,
            sharp,
            route_len,
            direction_sign,
            window: VecDeque::with_capacity(DEFAULT_WINDOW),
            window_cap: DEFAULT_WINDOW,
            cv_threshold: DEFAULT_CV_THRESHOLD,
            switches: 0,
        })
    }

    /// Coefficient of variation (σ/μ) of the recent speed window; 0 when
    /// there is not enough data or the mean speed is ~0 (a long stop is a
    /// regime of its own — the average-speed predictor handles it, so a
    /// zero mean maps to "sharp").
    pub fn speed_cv(&self) -> f64 {
        if self.window.len() < self.window_cap / 2 {
            return 0.0;
        }
        let n = self.window.len() as f64;
        let mean = self.window.iter().sum::<f64>() / n;
        if mean < 1e-6 {
            return f64::INFINITY;
        }
        let var = self
            .window
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// The quintuple currently in force.
    pub fn current_quintuple(&self) -> &Quintuple {
        self.engine.quintuple()
    }

    /// How many times the policy has switched regimes.
    pub fn switches(&self) -> usize {
        self.switches
    }

    fn pick_regime(&self) -> Quintuple {
        if self.speed_cv() > self.cv_threshold {
            self.sharp
        } else {
            self.mild
        }
    }
}

impl Policy for AdaptivePolicy {
    fn label(&self) -> String {
        format!("adaptive({})", self.engine.quintuple().label())
    }

    fn update_cost(&self) -> f64 {
        self.engine.quintuple().update_cost
    }

    fn tick(
        &mut self,
        now: f64,
        actual_arc: f64,
        current_speed: f64,
    ) -> Result<Option<PositionUpdate>, PolicyError> {
        if self.window.len() == self.window_cap {
            self.window.pop_front();
        }
        self.window.push_back(current_speed);

        let fired = self.engine.tick(now, actual_arc, current_speed)?;
        if let Some(update) = fired {
            // The paper allows a policy change exactly at update points.
            let wanted = self.pick_regime();
            if wanted != *self.engine.quintuple() {
                self.engine =
                    PolicyEngine::new(wanted, self.route_len, self.direction_sign, update)?;
                self.switches += 1;
            }
        }
        Ok(fired)
    }

    fn database_arc(&self, now: f64) -> f64 {
        self.engine.database_arc(now)
    }

    fn last_update(&self) -> PositionUpdate {
        self.engine.last_update()
    }

    fn uncertainty(&self, now: f64, v_max: f64) -> f64 {
        self.engine.uncertainty(now, v_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 5.0;

    fn adaptive() -> AdaptivePolicy {
        AdaptivePolicy::new(
            C,
            10_000.0,
            1.0,
            PositionUpdate {
                time: 0.0,
                arc: 0.0,
                speed: 1.0,
            },
        )
        .unwrap()
    }

    /// Drives the policy with a given speed function for `minutes`,
    /// returning (updates, final policy label).
    fn drive(p: &mut AdaptivePolicy, minutes: f64, speed_at: impl Fn(f64) -> f64) -> usize {
        let dt = 1.0 / 60.0;
        let mut arc = 0.0;
        let mut updates = 0;
        let n = (minutes / dt) as usize;
        for i in 1..=n {
            let t = i as f64 * dt;
            let v = speed_at(t);
            arc += v * dt;
            if p.tick(t, arc, v).unwrap().is_some() {
                updates += 1;
            }
        }
        updates
    }

    #[test]
    fn starts_mild_stays_mild_on_highway() {
        let mut p = adaptive();
        assert_eq!(p.current_quintuple().label(), "cil");
        // Mild fluctuation around 1 mi/min (±5 %).
        drive(&mut p, 20.0, |t| 1.0 + 0.05 * (t * 3.0).sin());
        assert_eq!(p.current_quintuple().label(), "cil");
        assert_eq!(p.switches(), 0);
    }

    #[test]
    fn switches_to_sharp_in_stop_and_go() {
        let mut p = adaptive();
        // Violent stop-and-go: 1 minute at 1.0, 1 minute stopped.
        let updates = drive(&mut p, 30.0, |t| {
            if (t as usize).is_multiple_of(2) {
                1.0
            } else {
                0.0
            }
        });
        assert!(updates > 0, "stop-and-go must trigger updates");
        assert!(
            p.switches() >= 1,
            "regime detector should have switched at least once"
        );
        assert_eq!(p.current_quintuple().label(), "ail");
    }

    #[test]
    fn cv_detector_classifies_regimes() {
        let mut p = adaptive();
        for _ in 0..DEFAULT_WINDOW {
            p.window.push_back(1.0);
        }
        assert!(p.speed_cv() < 0.01);
        p.window.clear();
        for i in 0..DEFAULT_WINDOW {
            p.window.push_back(if i % 2 == 0 { 1.0 } else { 0.0 });
        }
        assert!(p.speed_cv() > 0.9);
        // All-stopped window: infinite CV → sharp regime.
        p.window.clear();
        for _ in 0..DEFAULT_WINDOW {
            p.window.push_back(0.0);
        }
        assert_eq!(p.speed_cv(), f64::INFINITY);
    }

    #[test]
    fn delegates_policy_interface() {
        let p = adaptive();
        assert_eq!(p.update_cost(), C);
        assert!(p.label().starts_with("adaptive("));
        assert_eq!(p.database_arc(3.0), 3.0);
        assert_eq!(p.last_update().arc, 0.0);
        assert!(p.uncertainty(2.0, 1.5) > 0.0);
    }

    #[test]
    fn bounds_still_hold_while_adapting() {
        let mut p = adaptive();
        let dt = 1.0 / 60.0;
        let mut arc = 0.0;
        for i in 1..=(20 * 60) {
            let t = i as f64 * dt;
            let v = if (t as usize).is_multiple_of(3) {
                0.0
            } else {
                1.2
            };
            arc += v * dt;
            let prev_bound = p.uncertainty(t - dt, 1.5);
            let dev = (arc - p.database_arc(t)).abs();
            let bound = p.uncertainty(t, 1.5).max(prev_bound);
            assert!(
                dev <= bound + 1.5 * dt + 1e-9,
                "t={t}: deviation {dev} > bound {bound}"
            );
            p.tick(t, arc, v).unwrap();
        }
    }
}
