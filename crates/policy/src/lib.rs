//! # modb-policy — cost-based position-update policies
//!
//! The primary contribution of Wolfson et al. (ICDE 1998), §3: a moving
//! object decides *when* to refresh its database position by comparing the
//! cost of imprecision against the cost of an update message.
//!
//! - [`Quintuple`]: the paper's policy object — *(deviation cost function,
//!   update cost, estimator, fitting method, predicted speed)* — with
//!   constructors for the three named policies **dl**, **ail**, **cil**.
//! - [`PolicyEngine`]: executes a quintuple onboard the moving object.
//! - [`optimal_threshold`]: Proposition 1, `k_opt = √(a²b² + 2aC) − ab`.
//! - [`slow_bound`] / [`fast_bound`] / [`combined_bound`]: the DBMS-side
//!   deviation bounds of Propositions 2–4 and Corollary 1.
//! - [`baselines`]: the traditional non-temporal method, periodic dead
//!   reckoning, and the fixed-threshold alternative of §6.
//!
//! Everything is route-relative (arc distances in miles, time in minutes);
//! binding to concrete routes happens in `modb-core`.

#![warn(missing_docs)]

mod adaptive;
pub mod baselines;
mod bounds;
mod cost;
mod decision;
mod engine;
mod error;
mod estimator;
mod fitting;
mod predictor;
mod threshold;

pub use adaptive::{AdaptivePolicy, DEFAULT_CV_THRESHOLD, DEFAULT_WINDOW};
pub use bounds::{
    combined_bound, fast_bound, fast_crossover_time, slow_bound, slow_crossover_time,
    uncertainty_interval, BoundKind,
};
pub use cost::DeviationCost;
pub use decision::{CostComparisonDecision, Horizon};
pub use engine::{Policy, PolicyEngine, PositionUpdate, Quintuple};
pub use error::PolicyError;
pub use estimator::{EstimatorKind, FittedEstimator};
pub use fitting::{DeviationTrace, FittingMethod, ZERO_DEVIATION_EPS};
pub use predictor::{SpeedObservation, SpeedPredictor};
pub use threshold::{
    cost_rate, cost_rate_general, optimal_threshold, optimal_threshold_immediate,
    optimal_threshold_numeric, threshold_time_form,
};
