//! Errors for the update-policy layer.

use std::fmt;

/// Errors raised when configuring or driving an update policy.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// The update cost `C` must be positive and finite: a zero cost makes
    /// the optimal threshold zero (update every instant) and a negative
    /// cost is meaningless.
    InvalidUpdateCost(f64),
    /// A cost-function parameter (rate, threshold, penalty) must be
    /// positive and finite.
    InvalidCostParameter(&'static str, f64),
    /// The route length must be positive and finite.
    InvalidRouteLength(f64),
    /// Observations must be fed in non-decreasing time order.
    TimeWentBackwards {
        /// The engine's latest observed time.
        last: f64,
        /// The offending earlier time.
        now: f64,
    },
    /// A reported value (arc position, speed) was NaN/∞ or negative.
    InvalidObservation(&'static str, f64),
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::InvalidUpdateCost(c) => {
                write!(f, "update cost must be positive and finite, got {c}")
            }
            PolicyError::InvalidCostParameter(name, v) => {
                write!(
                    f,
                    "cost parameter `{name}` must be positive and finite, got {v}"
                )
            }
            PolicyError::InvalidRouteLength(l) => {
                write!(f, "route length must be positive and finite, got {l}")
            }
            PolicyError::TimeWentBackwards { last, now } => {
                write!(
                    f,
                    "observation at t={now} precedes last observation t={last}"
                )
            }
            PolicyError::InvalidObservation(name, v) => {
                write!(f, "observation `{name}` invalid: {v}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(PolicyError::InvalidUpdateCost(-1.0)
            .to_string()
            .contains("-1"));
        assert!(PolicyError::TimeWentBackwards {
            last: 5.0,
            now: 3.0
        }
        .to_string()
        .contains("t=3"));
        assert!(PolicyError::InvalidObservation("speed", f64::NAN)
            .to_string()
            .contains("speed"));
    }
}
