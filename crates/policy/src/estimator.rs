//! Estimator functions (§3.1–3.2).
//!
//! An estimator is a "well-behaved" function `f(t)` with `f(0) = 0` used to
//! approximate the deviation as a function of time since the last update.
//! The paper uses the **delayed linear** family
//!
//! ```text
//! f(t) = a·(t − b)   for t ≥ b
//! f(t) = 0           for 0 ≤ t < b
//! ```
//!
//! with the **immediate linear** (`b = 0`) as the special case used by the
//! ail/cil policies.

/// Which estimator family a policy fits the deviation with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EstimatorKind {
    /// Delayed linear: zero for `b` time units, then slope `a` (dl policy).
    DelayedLinear,
    /// Immediate linear: slope `a` from the instant of the update
    /// (ail/cil policies).
    ImmediateLinear,
}

/// A delayed-linear function with concrete coefficients — the result of
/// fitting an [`EstimatorKind`] to an observed deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FittedEstimator {
    /// Slope `a ≥ 0` (miles of deviation per minute).
    pub slope: f64,
    /// Delay `b ≥ 0` (minutes of zero deviation after an update).
    pub delay: f64,
}

impl FittedEstimator {
    /// An immediate-linear fit (delay 0).
    pub fn immediate(slope: f64) -> Self {
        FittedEstimator { slope, delay: 0.0 }
    }

    /// Evaluates `f(t)`.
    pub fn eval(&self, t: f64) -> f64 {
        (self.slope * (t - self.delay)).max(0.0)
    }

    /// `∫₀^τ f(t) dt` — the predicted uniform deviation cost over a horizon
    /// of `τ` minutes after an update.
    pub fn integral(&self, tau: f64) -> f64 {
        let ramp = (tau - self.delay).max(0.0);
        0.5 * self.slope * ramp * ramp
    }

    /// Time at which the estimator first reaches deviation `k`
    /// (`∞` when the slope is zero and `k > 0`).
    pub fn time_to_reach(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        if self.slope <= 0.0 {
            return f64::INFINITY;
        }
        self.delay + k / self.slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_respects_delay() {
        let f = FittedEstimator {
            slope: 2.0,
            delay: 3.0,
        };
        assert_eq!(f.eval(0.0), 0.0);
        assert_eq!(f.eval(2.9), 0.0);
        assert_eq!(f.eval(3.0), 0.0);
        assert_eq!(f.eval(4.0), 2.0);
        assert_eq!(f.eval(5.5), 5.0);
    }

    #[test]
    fn immediate_has_zero_delay() {
        let f = FittedEstimator::immediate(1.5);
        assert_eq!(f.delay, 0.0);
        assert_eq!(f.eval(2.0), 3.0);
    }

    #[test]
    fn integral_is_triangle_area() {
        let f = FittedEstimator {
            slope: 2.0,
            delay: 1.0,
        };
        assert_eq!(f.integral(1.0), 0.0);
        // From t=1 to t=3 the ramp rises to 4: area = ½·2·4 = 4.
        assert_eq!(f.integral(3.0), 4.0);
        let g = FittedEstimator::immediate(1.0);
        assert_eq!(g.integral(2.0), 2.0);
    }

    #[test]
    fn time_to_reach() {
        let f = FittedEstimator {
            slope: 0.5,
            delay: 2.0,
        };
        assert_eq!(f.time_to_reach(1.0), 4.0);
        assert_eq!(f.time_to_reach(0.0), 0.0);
        let flat = FittedEstimator::immediate(0.0);
        assert_eq!(flat.time_to_reach(1.0), f64::INFINITY);
    }

    #[test]
    fn integral_matches_numeric() {
        let f = FittedEstimator {
            slope: 0.7,
            delay: 1.3,
        };
        let tau = 6.0;
        let mut acc = 0.0;
        let dt = 1e-5;
        let mut t = 0.0;
        while t < tau {
            acc += f.eval(t) * dt;
            t += dt;
        }
        assert!((acc - f.integral(tau)).abs() < 1e-3);
    }
}
