//! The general cost-comparison decision procedure of §3.1.
//!
//! The paper's generic prescription: the fitted estimator `g(t)` predicts
//! the future deviation as `g(t)` if an update is sent now and `g(t) + k`
//! if not; "an update is sent if the difference between the
//! deviation-costs exceeds the update cost". The named policies use the
//! closed-form thresholds of Proposition 1 instead; this module implements
//! the general procedure for arbitrary deviation cost functions and
//! prediction horizons — and proves (in tests) that with the
//! *paper-equivalent horizon* `τ = b + k/(2a)` it reproduces Proposition 1
//! exactly for the uniform cost.

use crate::cost::DeviationCost;
use crate::estimator::FittedEstimator;

/// How far into the future the deviation forecast extends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Horizon {
    /// A fixed look-ahead in minutes.
    Fixed(f64),
    /// `τ = b + k/(2a)` — half the time the estimator needs to rebuild
    /// the current deviation after an update, plus the delay. With the
    /// uniform cost this makes the generic procedure coincide with
    /// Proposition 1's optimal threshold (see the equivalence test).
    PaperEquivalent,
}

/// The generic update decision: compare predicted deviation costs with
/// and without an update over a horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostComparisonDecision {
    /// Deviation cost function.
    pub cost: DeviationCost,
    /// Update (message) cost `C`.
    pub update_cost: f64,
    /// Forecast horizon.
    pub horizon: Horizon,
}

impl CostComparisonDecision {
    /// Resolves the horizon for the current fit and deviation.
    pub fn horizon_minutes(&self, fit: &FittedEstimator, k: f64) -> f64 {
        match self.horizon {
            Horizon::Fixed(tau) => tau.max(0.0),
            Horizon::PaperEquivalent => {
                if fit.slope <= 0.0 {
                    // Deviation is predicted not to grow: an infinite
                    // horizon; represented by a long-but-finite window so
                    // the benefit of clearing a standing deviation k > 0
                    // is still recognised.
                    1e6
                } else {
                    fit.delay + k / (2.0 * fit.slope)
                }
            }
        }
    }

    /// Predicted deviation-cost *difference* over the horizon between not
    /// updating (future deviation `g(t) + k`) and updating now (future
    /// deviation `g(t)`).
    pub fn benefit(&self, fit: &FittedEstimator, k: f64) -> f64 {
        debug_assert!(k >= 0.0);
        let tau = self.horizon_minutes(fit, k);
        match self.cost {
            DeviationCost::Uniform { rate } => {
                // ∫₀^τ [(g(t) + k) − g(t)] dt = k·τ.
                rate * k * tau
            }
            DeviationCost::Step { threshold, penalty } => {
                // Time the deviation spends at or above the threshold,
                // within [0, τ], with and without the update.
                let time_above = |offset: f64| -> f64 {
                    // deviation(t) = g(t) + offset, g delayed-linear.
                    if offset >= threshold {
                        return tau;
                    }
                    if fit.slope <= 0.0 {
                        return 0.0;
                    }
                    // g(t) + offset = threshold at
                    // t = delay + (threshold − offset)/slope.
                    let t_cross = fit.delay + (threshold - offset) / fit.slope;
                    (tau - t_cross).max(0.0)
                };
                penalty * (time_above(k) - time_above(0.0))
            }
        }
    }

    /// The decision: send an update iff the predicted benefit reaches the
    /// update cost.
    pub fn should_update(&self, fit: &FittedEstimator, k: f64) -> bool {
        self.benefit(fit, k) + 1e-12 >= self.update_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::optimal_threshold;

    /// With the paper-equivalent horizon and the uniform cost, the generic
    /// procedure fires exactly at Proposition 1's optimal threshold:
    /// benefit(k) = k·(b + k/(2a)) ≥ C  ⇔  k² + 2abk − 2aC ≥ 0
    ///           ⇔  k ≥ √(a²b² + 2aC) − ab.
    #[test]
    fn paper_equivalent_horizon_reproduces_prop1() {
        let decision = |a: f64, b: f64, c: f64, k: f64| {
            CostComparisonDecision {
                cost: DeviationCost::UNIT_UNIFORM,
                update_cost: c,
                horizon: Horizon::PaperEquivalent,
            }
            .should_update(&FittedEstimator { slope: a, delay: b }, k)
        };
        for &(a, b, c) in &[
            (1.0, 2.0, 5.0),
            (0.5, 0.0, 5.0),
            (2.0, 1.0, 0.5),
            (0.1, 10.0, 50.0),
            (3.0, 0.25, 12.0),
        ] {
            let k_opt = optimal_threshold(a, b, c);
            assert!(
                decision(a, b, c, k_opt * 1.0001),
                "should fire just above k_opt (a={a} b={b} c={c})"
            );
            assert!(
                !decision(a, b, c, k_opt * 0.9999),
                "should hold just below k_opt (a={a} b={b} c={c})"
            );
        }
    }

    #[test]
    fn uniform_benefit_is_k_tau() {
        let d = CostComparisonDecision {
            cost: DeviationCost::UNIT_UNIFORM,
            update_cost: 5.0,
            horizon: Horizon::Fixed(4.0),
        };
        let fit = FittedEstimator::immediate(0.5);
        assert!((d.benefit(&fit, 2.0) - 8.0).abs() < 1e-12);
        assert!(d.should_update(&fit, 2.0)); // 8 ≥ 5
        assert!(!d.should_update(&fit, 1.0)); // 4 < 5
    }

    #[test]
    fn step_benefit_counts_threshold_time() {
        let d = CostComparisonDecision {
            cost: DeviationCost::Step {
                threshold: 1.0,
                penalty: 2.0,
            },
            update_cost: 5.0,
            horizon: Horizon::Fixed(10.0),
        };
        let fit = FittedEstimator::immediate(0.5);
        // Without update (k = 1.5 ≥ h): above threshold the whole horizon
        // → 10 min. With update: crosses at t = 2 → 8 min above.
        // Benefit = 2·(10 − 8) = 4 < 5 → hold.
        assert!((d.benefit(&fit, 1.5) - 4.0).abs() < 1e-12);
        assert!(!d.should_update(&fit, 1.5));
        // Flat estimator, k below threshold: no benefit at all.
        let flat = FittedEstimator::immediate(0.0);
        assert_eq!(d.benefit(&flat, 0.5), 0.0);
    }

    #[test]
    fn step_benefit_with_k_below_threshold() {
        let d = CostComparisonDecision {
            cost: DeviationCost::Step {
                threshold: 2.0,
                penalty: 3.0,
            },
            update_cost: 1.0,
            horizon: Horizon::Fixed(10.0),
        };
        let fit = FittedEstimator {
            slope: 1.0,
            delay: 1.0,
        };
        // Without update: crosses 2 − 0.5 = 1.5 above delay → t = 2.5,
        // above for 7.5. With update: t = 3, above for 7.
        // Benefit = 3 · 0.5 = 1.5 ≥ 1 → fire.
        assert!((d.benefit(&fit, 0.5) - 1.5).abs() < 1e-12);
        assert!(d.should_update(&fit, 0.5));
    }

    #[test]
    fn flat_estimator_paper_horizon_still_clears_standing_deviation() {
        let d = CostComparisonDecision {
            cost: DeviationCost::UNIT_UNIFORM,
            update_cost: 5.0,
            horizon: Horizon::PaperEquivalent,
        };
        let flat = FittedEstimator::immediate(0.0);
        // A standing deviation with no predicted growth: over the long
        // horizon the benefit k·τ is enormous, so update.
        assert!(d.should_update(&flat, 0.5));
        // But a zero deviation never triggers anything.
        assert!(!d.should_update(&flat, 0.0));
    }

    #[test]
    fn fixed_horizon_clamps_negative() {
        let d = CostComparisonDecision {
            cost: DeviationCost::UNIT_UNIFORM,
            update_cost: 5.0,
            horizon: Horizon::Fixed(-3.0),
        };
        assert_eq!(
            d.horizon_minutes(&FittedEstimator::immediate(1.0), 1.0),
            0.0
        );
        assert!(!d.should_update(&FittedEstimator::immediate(1.0), 1.0));
    }
}
