//! Baseline update policies the paper compares against.
//!
//! - [`TraditionalPolicy`]: the non-temporal DBMS of §1 — the database
//!   stores a static position (no speed extrapolation), so the object must
//!   update whenever it has moved more than the tolerated imprecision.
//!   The headline claim is that the position-attribute policies need only
//!   ~15 % of this policy's updates.
//! - [`PeriodicPolicy`]: fixed-interval updates with dead reckoning.
//! - [`FixedThresholdPolicy`]: §6's alternative — "define a priori a bound
//!   B on the deviation, with a policy in which the moving object sends a
//!   position update message when the deviation exceeds B". Its bound is
//!   fixed and independent of the update cost, which is the paper's
//!   criticism of it.

use crate::engine::{Policy, PositionUpdate};
use crate::error::PolicyError;

fn validate_obs(now: f64, last_seen: f64, arc: f64, speed: f64) -> Result<(), PolicyError> {
    if now < last_seen {
        return Err(PolicyError::TimeWentBackwards {
            last: last_seen,
            now,
        });
    }
    if !arc.is_finite() || arc < 0.0 {
        return Err(PolicyError::InvalidObservation("actual_arc", arc));
    }
    if !speed.is_finite() || speed < 0.0 {
        return Err(PolicyError::InvalidObservation("current_speed", speed));
    }
    Ok(())
}

/// The traditional non-temporal method: the database records a static
/// point; the object refreshes it whenever the actual position drifts more
/// than `tolerance` miles from the stored point.
#[derive(Debug, Clone)]
pub struct TraditionalPolicy {
    tolerance: f64,
    update_cost: f64,
    last: PositionUpdate,
    last_seen: f64,
}

impl TraditionalPolicy {
    /// Creates the policy with a drift `tolerance` (miles) and the message
    /// cost `C` (used only for cost accounting — the decision ignores it,
    /// which is exactly the paper's point).
    ///
    /// # Errors
    ///
    /// Rejects non-positive tolerance or cost.
    pub fn new(
        tolerance: f64,
        update_cost: f64,
        initial: PositionUpdate,
    ) -> Result<Self, PolicyError> {
        if tolerance <= 0.0 || !tolerance.is_finite() {
            return Err(PolicyError::InvalidCostParameter("tolerance", tolerance));
        }
        if update_cost <= 0.0 || !update_cost.is_finite() {
            return Err(PolicyError::InvalidUpdateCost(update_cost));
        }
        // The stored position is static: declared speed 0.
        let last = PositionUpdate {
            speed: 0.0,
            ..initial
        };
        Ok(TraditionalPolicy {
            tolerance,
            update_cost,
            last,
            last_seen: initial.time,
        })
    }

    /// The configured drift tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }
}

impl Policy for TraditionalPolicy {
    fn label(&self) -> String {
        "traditional".into()
    }

    fn update_cost(&self) -> f64 {
        self.update_cost
    }

    fn tick(
        &mut self,
        now: f64,
        actual_arc: f64,
        current_speed: f64,
    ) -> Result<Option<PositionUpdate>, PolicyError> {
        validate_obs(now, self.last_seen, actual_arc, current_speed)?;
        self.last_seen = now;
        if (actual_arc - self.last.arc).abs() + 1e-12 >= self.tolerance {
            let u = PositionUpdate {
                time: now,
                arc: actual_arc,
                speed: 0.0,
            };
            self.last = u;
            return Ok(Some(u));
        }
        Ok(None)
    }

    fn database_arc(&self, _now: f64) -> f64 {
        self.last.arc
    }

    fn last_update(&self) -> PositionUpdate {
        self.last
    }

    fn uncertainty(&self, _now: f64, _v_max: f64) -> f64 {
        self.tolerance
    }
}

/// Dead reckoning on a fixed timer: an update every `period` minutes,
/// declaring the current speed.
#[derive(Debug, Clone)]
pub struct PeriodicPolicy {
    period: f64,
    update_cost: f64,
    route_len: f64,
    direction_sign: f64,
    last: PositionUpdate,
    last_seen: f64,
}

impl PeriodicPolicy {
    /// Creates the policy with the update `period` in minutes.
    ///
    /// # Errors
    ///
    /// Rejects non-positive period, cost, or route length.
    pub fn new(
        period: f64,
        update_cost: f64,
        route_len: f64,
        direction_sign: f64,
        initial: PositionUpdate,
    ) -> Result<Self, PolicyError> {
        if period <= 0.0 || !period.is_finite() {
            return Err(PolicyError::InvalidCostParameter("period", period));
        }
        if update_cost <= 0.0 || !update_cost.is_finite() {
            return Err(PolicyError::InvalidUpdateCost(update_cost));
        }
        if route_len <= 0.0 || !route_len.is_finite() {
            return Err(PolicyError::InvalidRouteLength(route_len));
        }
        Ok(PeriodicPolicy {
            period,
            update_cost,
            route_len,
            direction_sign: if direction_sign < 0.0 { -1.0 } else { 1.0 },
            last: initial,
            last_seen: initial.time,
        })
    }
}

impl Policy for PeriodicPolicy {
    fn label(&self) -> String {
        "periodic".into()
    }

    fn update_cost(&self) -> f64 {
        self.update_cost
    }

    fn tick(
        &mut self,
        now: f64,
        actual_arc: f64,
        current_speed: f64,
    ) -> Result<Option<PositionUpdate>, PolicyError> {
        validate_obs(now, self.last_seen, actual_arc, current_speed)?;
        self.last_seen = now;
        if now - self.last.time + 1e-12 >= self.period {
            let u = PositionUpdate {
                time: now,
                arc: actual_arc,
                speed: current_speed,
            };
            self.last = u;
            return Ok(Some(u));
        }
        Ok(None)
    }

    fn database_arc(&self, now: f64) -> f64 {
        let elapsed = (now - self.last.time).max(0.0);
        (self.last.arc + self.direction_sign * self.last.speed * elapsed).clamp(0.0, self.route_len)
    }

    fn last_update(&self) -> PositionUpdate {
        self.last
    }

    fn uncertainty(&self, now: f64, v_max: f64) -> f64 {
        // Between timer fires the deviation can grow at most at rate
        // D = max{v, V−v} for min(t, period) minutes.
        let v = self.last.speed;
        let d = v.max((v_max - v).max(0.0));
        let t = (now - self.last.time).max(0.0).min(self.period);
        d * t
    }
}

/// §6's a-priori dead-reckoning alternative: update exactly when the
/// deviation exceeds the fixed bound `B`, declaring the current speed.
#[derive(Debug, Clone)]
pub struct FixedThresholdPolicy {
    bound: f64,
    update_cost: f64,
    route_len: f64,
    direction_sign: f64,
    last: PositionUpdate,
    last_seen: f64,
}

impl FixedThresholdPolicy {
    /// Creates the policy with the a-priori deviation bound `B` (miles).
    ///
    /// # Errors
    ///
    /// Rejects non-positive bound, cost, or route length.
    pub fn new(
        bound: f64,
        update_cost: f64,
        route_len: f64,
        direction_sign: f64,
        initial: PositionUpdate,
    ) -> Result<Self, PolicyError> {
        if bound <= 0.0 || !bound.is_finite() {
            return Err(PolicyError::InvalidCostParameter("bound", bound));
        }
        if update_cost <= 0.0 || !update_cost.is_finite() {
            return Err(PolicyError::InvalidUpdateCost(update_cost));
        }
        if route_len <= 0.0 || !route_len.is_finite() {
            return Err(PolicyError::InvalidRouteLength(route_len));
        }
        Ok(FixedThresholdPolicy {
            bound,
            update_cost,
            route_len,
            direction_sign: if direction_sign < 0.0 { -1.0 } else { 1.0 },
            last: initial,
            last_seen: initial.time,
        })
    }

    /// The fixed deviation bound `B`.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

impl Policy for FixedThresholdPolicy {
    fn label(&self) -> String {
        "fixed-threshold".into()
    }

    fn update_cost(&self) -> f64 {
        self.update_cost
    }

    fn tick(
        &mut self,
        now: f64,
        actual_arc: f64,
        current_speed: f64,
    ) -> Result<Option<PositionUpdate>, PolicyError> {
        validate_obs(now, self.last_seen, actual_arc, current_speed)?;
        self.last_seen = now;
        let deviation = (actual_arc - self.database_arc(now)).abs();
        if deviation + 1e-12 >= self.bound {
            let u = PositionUpdate {
                time: now,
                arc: actual_arc,
                speed: current_speed,
            };
            self.last = u;
            return Ok(Some(u));
        }
        Ok(None)
    }

    fn database_arc(&self, now: f64) -> f64 {
        let elapsed = (now - self.last.time).max(0.0);
        (self.last.arc + self.direction_sign * self.last.speed * elapsed).clamp(0.0, self.route_len)
    }

    fn last_update(&self) -> PositionUpdate {
        self.last
    }

    fn uncertainty(&self, _now: f64, _v_max: f64) -> f64 {
        // "In the dead-reckoning method the bound on the error is fixed"
        // (§3.3).
        self.bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start() -> PositionUpdate {
        PositionUpdate {
            time: 0.0,
            arc: 0.0,
            speed: 1.0,
        }
    }

    #[test]
    fn traditional_updates_every_tolerance_miles() {
        let mut p = TraditionalPolicy::new(0.5, 5.0, start()).unwrap();
        // Drive at 1 mi/min for 3 minutes in 0.01-min ticks: drift resets
        // every 0.5 miles → 6 updates.
        let mut updates = 0;
        let mut t = 0.0;
        while t < 3.0 - 1e-9 {
            t += 0.01;
            if p.tick(t, t, 1.0).unwrap().is_some() {
                updates += 1;
            }
        }
        assert_eq!(updates, 6);
        // Database position is static between updates.
        assert_eq!(p.database_arc(t + 100.0), p.last_update().arc);
        assert_eq!(p.last_update().speed, 0.0);
        assert_eq!(p.uncertainty(t, 2.0), 0.5);
        assert_eq!(p.label(), "traditional");
    }

    #[test]
    fn traditional_stationary_object_never_updates() {
        let mut p = TraditionalPolicy::new(0.5, 5.0, start()).unwrap();
        for i in 1..=100 {
            assert!(p.tick(i as f64 * 0.1, 0.0, 0.0).unwrap().is_none());
        }
    }

    #[test]
    fn periodic_fires_on_timer() {
        let mut p = PeriodicPolicy::new(2.0, 5.0, 1_000.0, 1.0, start()).unwrap();
        let mut fire_times = Vec::new();
        let mut t = 0.0;
        while t < 7.0 {
            t += 0.01;
            if p.tick(t, t, 1.0).unwrap().is_some() {
                fire_times.push(t);
            }
        }
        assert_eq!(fire_times.len(), 3);
        for (i, ft) in fire_times.iter().enumerate() {
            assert!(
                (ft - 2.0 * (i as f64 + 1.0)).abs() < 0.02,
                "fire {i} at {ft}"
            );
        }
        // Dead reckoning between fires.
        let last = p.last_update();
        assert!((p.database_arc(last.time + 0.5) - (last.arc + 0.5)).abs() < 1e-9);
        // Uncertainty is capped by the period.
        assert_eq!(
            p.uncertainty(last.time + 100.0, 1.5),
            1.0 * 2.0_f64.min(100.0)
        );
    }

    #[test]
    fn fixed_threshold_fires_at_bound() {
        let mut p = FixedThresholdPolicy::new(1.0, 5.0, 1_000.0, 1.0, start()).unwrap();
        // Declared speed 1, actual stopped: deviation grows at 1 mi/min,
        // update at t = 1.
        let mut fired_at = None;
        let mut t = 0.0;
        while t < 5.0 {
            t += 0.001;
            if p.tick(t, 0.0, 0.0).unwrap().is_some() {
                fired_at = Some(t);
                break;
            }
        }
        let ft = fired_at.expect("should fire");
        assert!((ft - 1.0).abs() < 0.01);
        // Bound is fixed regardless of time or cost.
        assert_eq!(p.uncertainty(100.0, 3.0), 1.0);
        assert_eq!(p.bound(), 1.0);
    }

    #[test]
    fn constructors_validate() {
        assert!(TraditionalPolicy::new(0.0, 5.0, start()).is_err());
        assert!(TraditionalPolicy::new(1.0, 0.0, start()).is_err());
        assert!(PeriodicPolicy::new(0.0, 5.0, 10.0, 1.0, start()).is_err());
        assert!(PeriodicPolicy::new(1.0, 5.0, 0.0, 1.0, start()).is_err());
        assert!(FixedThresholdPolicy::new(-1.0, 5.0, 10.0, 1.0, start()).is_err());
    }

    #[test]
    fn baselines_reject_bad_observations() {
        let mut p = TraditionalPolicy::new(0.5, 5.0, start()).unwrap();
        p.tick(1.0, 0.1, 1.0).unwrap();
        assert!(p.tick(0.5, 0.1, 1.0).is_err());
        assert!(p.tick(2.0, f64::NAN, 1.0).is_err());
        let mut q = PeriodicPolicy::new(1.0, 5.0, 10.0, 1.0, start()).unwrap();
        assert!(q.tick(1.0, 1.0, -2.0).is_err());
    }

    #[test]
    fn backward_direction_dead_reckons_downward() {
        let initial = PositionUpdate {
            time: 0.0,
            arc: 10.0,
            speed: 1.0,
        };
        let p = FixedThresholdPolicy::new(1.0, 5.0, 20.0, -1.0, initial).unwrap();
        assert_eq!(p.database_arc(4.0), 6.0);
        assert_eq!(p.database_arc(100.0), 0.0);
    }
}
