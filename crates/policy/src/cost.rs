//! Deviation cost functions (§3.1).
//!
//! The cost of the deviation between two time points is given by the
//! *deviation cost function* `COST_d(t1, t2)`. The paper analyses the
//! **uniform** function (equation 1): `∫ d(t) dt` — one cost unit per mile
//! of deviation per minute — and mentions the **step** function: zero while
//! the deviation stays below a threshold `h`, a fixed penalty rate
//! otherwise. Both are implemented; the named dl/ail/cil policies use the
//! uniform function, the step variant powers an extension policy.

use crate::error::PolicyError;

/// A deviation cost function, evaluated incrementally tick by tick.
///
/// Simulations accumulate `tick_cost(d, dt)` over each tick where the
/// deviation is (approximately) `d`; for the uniform function this is the
/// rectangle rule for equation 1's integral, exact when the deviation is
/// piecewise-linear and the tick small.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviationCost {
    /// Equation 1: `COST_d(t1, t2) = rate · ∫ d(t) dt`. The paper
    /// normalises `rate = 1` ("the cost of a unit of deviation per unit of
    /// time is one"); `C` is then the ratio of update cost to that unit.
    Uniform {
        /// Cost per mile of deviation per minute.
        rate: f64,
    },
    /// Zero penalty while `d(t) < threshold`, `penalty` per minute
    /// otherwise.
    Step {
        /// Deviation threshold `h` (miles).
        threshold: f64,
        /// Penalty per minute once the deviation reaches `h`.
        penalty: f64,
    },
}

impl DeviationCost {
    /// The paper's canonical uniform function with unit rate.
    pub const UNIT_UNIFORM: DeviationCost = DeviationCost::Uniform { rate: 1.0 };

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// [`PolicyError::InvalidCostParameter`] for non-positive or non-finite
    /// parameters.
    pub fn validate(&self) -> Result<(), PolicyError> {
        match *self {
            DeviationCost::Uniform { rate } => {
                if rate <= 0.0 || !rate.is_finite() {
                    return Err(PolicyError::InvalidCostParameter("rate", rate));
                }
            }
            DeviationCost::Step { threshold, penalty } => {
                if threshold <= 0.0 || !threshold.is_finite() {
                    return Err(PolicyError::InvalidCostParameter("threshold", threshold));
                }
                if penalty <= 0.0 || !penalty.is_finite() {
                    return Err(PolicyError::InvalidCostParameter("penalty", penalty));
                }
            }
        }
        Ok(())
    }

    /// Cost accrued over one tick of length `dt` minutes during which the
    /// deviation is `deviation` miles.
    pub fn tick_cost(&self, deviation: f64, dt: f64) -> f64 {
        debug_assert!(deviation >= 0.0 && dt >= 0.0);
        match *self {
            DeviationCost::Uniform { rate } => rate * deviation * dt,
            DeviationCost::Step { threshold, penalty } => {
                if deviation >= threshold {
                    penalty * dt
                } else {
                    0.0
                }
            }
        }
    }

    /// Closed-form cost of a *delayed-linear* deviation (delay `b`, slope
    /// `a`) accrued from an update at time 0 until the deviation reaches
    /// `k` — the quantity minimised in Proposition 1.
    ///
    /// For the uniform function this is `rate · k² / (2a)` (the triangle
    /// under the ramp); for the step function it is `penalty ·
    /// max(0, (k − h)/a)` (time spent at or above the threshold).
    pub fn cycle_cost(&self, a: f64, _b: f64, k: f64) -> f64 {
        debug_assert!(a > 0.0 && k >= 0.0);
        match *self {
            DeviationCost::Uniform { rate } => rate * k * k / (2.0 * a),
            DeviationCost::Step { threshold, penalty } => penalty * ((k - threshold) / a).max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(DeviationCost::UNIT_UNIFORM.validate().is_ok());
        assert!(DeviationCost::Uniform { rate: 0.0 }.validate().is_err());
        assert!(DeviationCost::Uniform { rate: f64::NAN }
            .validate()
            .is_err());
        assert!(DeviationCost::Step {
            threshold: 1.0,
            penalty: 1.0
        }
        .validate()
        .is_ok());
        assert!(DeviationCost::Step {
            threshold: -1.0,
            penalty: 1.0
        }
        .validate()
        .is_err());
        assert!(DeviationCost::Step {
            threshold: 1.0,
            penalty: 0.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn uniform_tick_cost_is_area() {
        let c = DeviationCost::UNIT_UNIFORM;
        assert_eq!(c.tick_cost(2.0, 0.5), 1.0);
        assert_eq!(c.tick_cost(0.0, 0.5), 0.0);
        let scaled = DeviationCost::Uniform { rate: 3.0 };
        assert_eq!(scaled.tick_cost(2.0, 0.5), 3.0);
    }

    #[test]
    fn step_tick_cost_thresholds() {
        let c = DeviationCost::Step {
            threshold: 1.0,
            penalty: 4.0,
        };
        assert_eq!(c.tick_cost(0.99, 1.0), 0.0);
        assert_eq!(c.tick_cost(1.0, 1.0), 4.0);
        assert_eq!(c.tick_cost(5.0, 0.25), 1.0);
    }

    #[test]
    fn uniform_cycle_cost_matches_integral() {
        // Deviation ramps 0 → k at slope a: area = k²/(2a). Cross-check by
        // numeric integration.
        let (a, b, k) = (0.5, 2.0, 1.7);
        let c = DeviationCost::UNIT_UNIFORM;
        let analytic = c.cycle_cost(a, b, k);
        let mut numeric = 0.0;
        let dt = 1e-4;
        let t_end = b + k / a;
        let mut t = 0.0;
        while t < t_end {
            let d = (a * (t - b)).max(0.0);
            numeric += c.tick_cost(d.min(k), dt);
            t += dt;
        }
        assert!((analytic - numeric).abs() < 1e-2, "{analytic} vs {numeric}");
    }

    #[test]
    fn step_cycle_cost_counts_time_over_threshold() {
        let c = DeviationCost::Step {
            threshold: 1.0,
            penalty: 2.0,
        };
        // Slope 0.5: deviation reaches 1.0 at t = b + 2, reaches k = 2.0 at
        // t = b + 4 → 2 minutes above threshold → cost 4.
        assert_eq!(c.cycle_cost(0.5, 3.0, 2.0), 4.0);
        // Never reaches threshold → zero.
        assert_eq!(c.cycle_cost(0.5, 3.0, 0.5), 0.0);
    }
}
