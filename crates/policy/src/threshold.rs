//! Optimal update thresholds (Proposition 1 and equation 3).
//!
//! Assume that following each update the deviation is delayed-linear with
//! delay `b` and slope `a`, and each update costs `C`. One update-to-update
//! cycle that fires at threshold `k` lasts `b + k/a` minutes and accrues
//! uniform deviation cost `k²/(2a)`, so the long-run cost per minute is
//!
//! ```text
//! rate(k) = (C + k²/(2a)) / (b + k/a)
//! ```
//!
//! Minimising over `k` gives **Proposition 1**:
//! `k_opt = sqrt(a²b² + 2aC) − ab`, with the immediate-linear special case
//! `k_opt = sqrt(2aC)` and the equivalent time form `k_opt = 2C/t`
//! (equation 3, for the simple fitting method where `a = k/t`).

use crate::cost::DeviationCost;

/// Proposition 1: the optimal update threshold for a delayed-linear
/// deviation with delay `b ≥ 0`, slope `a > 0`, and update cost `C > 0`
/// under the uniform deviation cost function.
///
/// ```
/// // The paper's Example 1: a = 1 mi/min, b = 2 min, C = 5 → k ≈ 1.74.
/// let k = modb_policy::optimal_threshold(1.0, 2.0, 5.0);
/// assert!((k - 1.74).abs() < 0.01);
/// ```
pub fn optimal_threshold(a: f64, b: f64, c: f64) -> f64 {
    debug_assert!(a > 0.0 && b >= 0.0 && c > 0.0);
    (a * a * b * b + 2.0 * a * c).sqrt() - a * b
}

/// The immediate-linear special case (`b = 0`): `k_opt = sqrt(2aC)`.
pub fn optimal_threshold_immediate(a: f64, c: f64) -> f64 {
    debug_assert!(a > 0.0 && c > 0.0);
    (2.0 * a * c).sqrt()
}

/// Equation 3: with the simple fitting method (`a = k/t`), the
/// immediate-linear threshold test `k ≥ sqrt(2aC)` is equivalent to
/// `k ≥ 2C/t`. This returns that time-form threshold.
pub fn threshold_time_form(c: f64, t: f64) -> f64 {
    debug_assert!(c > 0.0 && t > 0.0);
    2.0 * c / t
}

/// Long-run total cost per minute when updating at threshold `k` — the
/// objective Proposition 1 minimises. Exposed for analysis, tests, and the
/// cost-rate plots.
pub fn cost_rate(k: f64, a: f64, b: f64, c: f64) -> f64 {
    debug_assert!(k > 0.0 && a > 0.0 && b >= 0.0 && c > 0.0);
    (c + k * k / (2.0 * a)) / (b + k / a)
}

/// Long-run cost per minute for an arbitrary deviation cost function —
/// generalises [`cost_rate`] using [`DeviationCost::cycle_cost`].
pub fn cost_rate_general(cost: &DeviationCost, k: f64, a: f64, b: f64, c: f64) -> f64 {
    debug_assert!(k > 0.0 && a > 0.0 && b >= 0.0 && c > 0.0);
    (c + cost.cycle_cost(a, b, k)) / (b + k / a)
}

/// Numerically minimises [`cost_rate_general`] over `k ∈ (0, k_max]` by
/// golden-section search — used for deviation cost functions without a
/// closed-form optimum (e.g. the step function).
pub fn optimal_threshold_numeric(cost: &DeviationCost, a: f64, b: f64, c: f64, k_max: f64) -> f64 {
    debug_assert!(a > 0.0 && b >= 0.0 && c > 0.0 && k_max > 0.0);
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut lo = 1e-9 * k_max;
    let mut hi = k_max;
    let mut x1 = hi - phi * (hi - lo);
    let mut x2 = lo + phi * (hi - lo);
    let mut f1 = cost_rate_general(cost, x1, a, b, c);
    let mut f2 = cost_rate_general(cost, x2, a, b, c);
    for _ in 0..200 {
        if f1 < f2 {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - phi * (hi - lo);
            f1 = cost_rate_general(cost, x1, a, b, c);
        } else {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + phi * (hi - lo);
            f2 = cost_rate_general(cost, x2, a, b, c);
        }
        if hi - lo < 1e-12 * k_max {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 1 of the paper: a = 1 mi/min, b = 2 min, C = 5 →
    /// k_opt = √(4 + 10) − 2 = 1.7417 ("3.74 − 2 = 1.74").
    #[test]
    fn example1_threshold() {
        let k = optimal_threshold(1.0, 2.0, 5.0);
        assert!((k - (14.0_f64.sqrt() - 2.0)).abs() < 1e-12);
        assert!((k - 1.74).abs() < 0.01, "paper reports 1.74, got {k}");
    }

    #[test]
    fn immediate_case_reduces_to_sqrt_2ac() {
        for (a, c) in [(0.5, 5.0), (1.0, 1.0), (2.0, 10.0)] {
            assert!(
                (optimal_threshold(a, 0.0, c) - optimal_threshold_immediate(a, c)).abs() < 1e-12
            );
            assert!((optimal_threshold_immediate(a, c) - (2.0 * a * c).sqrt()).abs() < 1e-12);
        }
    }

    /// §3.2: k_opt^{a,b} ≤ k_opt^{a,0} — the delayed threshold never
    /// exceeds the immediate one.
    #[test]
    fn delayed_threshold_not_larger_than_immediate() {
        for a in [0.1, 0.5, 1.0, 3.0] {
            for b in [0.0, 0.5, 2.0, 10.0] {
                for c in [0.5, 5.0, 50.0] {
                    assert!(
                        optimal_threshold(a, b, c) <= optimal_threshold_immediate(a, c) + 1e-12,
                        "a={a} b={b} c={c}"
                    );
                }
            }
        }
    }

    /// Equation 3: with a = k/t, the tests k ≥ √(2aC) and k ≥ 2C/t agree.
    #[test]
    fn time_form_equivalence() {
        for c in [1.0, 5.0, 20.0] {
            for t in [0.5, 1.0, 4.0, 30.0] {
                for k in [0.01, 0.1, 1.0, 10.0] {
                    let a = k / t;
                    let slope_form = k >= optimal_threshold_immediate(a, c) - 1e-12;
                    let time_form = k >= threshold_time_form(c, t) - 1e-12;
                    assert_eq!(slope_form, time_form, "c={c} t={t} k={k}");
                }
            }
        }
    }

    /// Proposition 1's k_opt is the argmin of the cost rate (numeric
    /// verification over a grid).
    #[test]
    fn threshold_minimises_cost_rate() {
        for &(a, b, c) in &[
            (1.0, 2.0, 5.0),
            (0.5, 0.0, 5.0),
            (2.0, 1.0, 0.5),
            (0.1, 10.0, 50.0),
        ] {
            let k_opt = optimal_threshold(a, b, c);
            let best = cost_rate(k_opt, a, b, c);
            let mut k = k_opt / 50.0;
            while k < k_opt * 50.0 {
                assert!(
                    cost_rate(k, a, b, c) >= best - 1e-9,
                    "cost_rate({k}) < cost_rate(k_opt={k_opt}) for a={a} b={b} c={c}"
                );
                k *= 1.07;
            }
        }
    }

    /// The numeric optimiser agrees with the closed form for the uniform
    /// cost function.
    #[test]
    fn numeric_matches_closed_form_uniform() {
        let cost = DeviationCost::UNIT_UNIFORM;
        for &(a, b, c) in &[(1.0, 2.0, 5.0), (0.5, 0.0, 5.0), (2.0, 1.0, 0.5)] {
            let closed = optimal_threshold(a, b, c);
            let numeric = optimal_threshold_numeric(&cost, a, b, c, 100.0);
            assert!(
                (closed - numeric).abs() < 1e-6,
                "a={a} b={b} c={c}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    /// For the step cost the optimal threshold sits above the step's own
    /// threshold (below it there is no penalty at all, so waiting is free)
    /// and the numeric optimiser finds a cost rate no worse than nearby
    /// candidates.
    #[test]
    fn numeric_step_cost_sanity() {
        let cost = DeviationCost::Step {
            threshold: 1.0,
            penalty: 2.0,
        };
        let (a, b, c) = (0.5, 1.0, 5.0);
        let k = optimal_threshold_numeric(&cost, a, b, c, 100.0);
        assert!(
            k >= 1.0 - 1e-6,
            "optimal step threshold {k} below the free zone"
        );
        let best = cost_rate_general(&cost, k, a, b, c);
        for candidate in [0.5, 1.0, 2.0, 5.0, 20.0, 80.0] {
            assert!(best <= cost_rate_general(&cost, candidate, a, b, c) + 1e-9);
        }
    }

    #[test]
    fn cost_rate_general_matches_specific_for_uniform() {
        let cost = DeviationCost::UNIT_UNIFORM;
        let (k, a, b, c) = (1.3, 0.7, 2.0, 5.0);
        assert!((cost_rate(k, a, b, c) - cost_rate_general(&cost, k, a, b, c)).abs() < 1e-12);
    }
}
