//! The update-policy engine: the paper's quintuple, executed onboard.
//!
//! A *position-update policy* is the quintuple *(deviation cost function,
//! update cost, estimator function, fitting method, predicted speed)*
//! (§3.1). [`Quintuple`] is that object; [`PolicyEngine`] runs it tick by
//! tick on the moving object's side, deciding when to send a
//! [`PositionUpdate`]. The named policies of the paper — **dl**, **ail**,
//! **cil** — are [`Quintuple`] constructors.

use crate::bounds::{combined_bound, BoundKind};
use crate::cost::DeviationCost;
use crate::error::PolicyError;
use crate::estimator::EstimatorKind;
use crate::fitting::{DeviationTrace, FittingMethod, ZERO_DEVIATION_EPS};
use crate::predictor::{SpeedObservation, SpeedPredictor};
use crate::threshold::{optimal_threshold, optimal_threshold_numeric};

/// A position update sent from the moving object to the database: "values
/// for at least the subattributes P.starttime, P.speed, P.x.startposition
/// and P.y.startposition" (§3.1). Positions are route-relative here; the
/// DBMS layer resolves them to coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionUpdate {
    /// Update timestamp — becomes `P.starttime`.
    pub time: f64,
    /// Arc position on the route — becomes the start-position pair.
    pub arc: f64,
    /// Declared speed — becomes `P.speed`.
    pub speed: f64,
}

/// The paper's policy quintuple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quintuple {
    /// Deviation cost function (§3.1; equation 1 for the named policies).
    pub deviation_cost: DeviationCost,
    /// Update cost `C` in deviation-cost units.
    pub update_cost: f64,
    /// Estimator family.
    pub estimator: EstimatorKind,
    /// Fitting method.
    pub fitting: FittingMethod,
    /// Predicted-speed selection.
    pub predictor: SpeedPredictor,
}

impl Quintuple {
    /// The **delayed-linear (dl)** policy: (uniform cost, C,
    /// delayed-linear estimator, simple fitting, current speed).
    pub fn dl(update_cost: f64) -> Self {
        Quintuple {
            deviation_cost: DeviationCost::UNIT_UNIFORM,
            update_cost,
            estimator: EstimatorKind::DelayedLinear,
            fitting: FittingMethod::Simple,
            predictor: SpeedPredictor::Current,
        }
    }

    /// The **average immediate-linear (ail)** policy: (uniform cost, C,
    /// immediate-linear estimator, simple fitting, average speed).
    pub fn ail(update_cost: f64) -> Self {
        Quintuple {
            deviation_cost: DeviationCost::UNIT_UNIFORM,
            update_cost,
            estimator: EstimatorKind::ImmediateLinear,
            fitting: FittingMethod::Simple,
            predictor: SpeedPredictor::AverageSinceUpdate,
        }
    }

    /// The **current immediate-linear (cil)** policy: like ail but
    /// declaring the current speed (§3.4).
    pub fn cil(update_cost: f64) -> Self {
        Quintuple {
            deviation_cost: DeviationCost::UNIT_UNIFORM,
            update_cost,
            estimator: EstimatorKind::ImmediateLinear,
            fitting: FittingMethod::Simple,
            predictor: SpeedPredictor::Current,
        }
    }

    /// Validates the quintuple's numeric parameters.
    ///
    /// # Errors
    ///
    /// [`PolicyError::InvalidUpdateCost`] or
    /// [`PolicyError::InvalidCostParameter`].
    pub fn validate(&self) -> Result<(), PolicyError> {
        if self.update_cost <= 0.0 || !self.update_cost.is_finite() {
            return Err(PolicyError::InvalidUpdateCost(self.update_cost));
        }
        self.deviation_cost.validate()
    }

    /// The [`BoundKind`] the DBMS uses for this quintuple's deviation
    /// bounds.
    pub fn bound_kind(&self) -> BoundKind {
        match self.estimator {
            EstimatorKind::DelayedLinear => BoundKind::Delayed,
            EstimatorKind::ImmediateLinear => BoundKind::Immediate,
        }
    }

    /// Short label ("dl", "ail", "cil", or a descriptive composite for
    /// non-canonical quintuples).
    pub fn label(&self) -> String {
        match (self.estimator, self.predictor, self.deviation_cost) {
            (
                EstimatorKind::DelayedLinear,
                SpeedPredictor::Current,
                DeviationCost::Uniform { .. },
            ) => "dl".to_string(),
            (
                EstimatorKind::ImmediateLinear,
                SpeedPredictor::AverageSinceUpdate,
                DeviationCost::Uniform { .. },
            ) => "ail".to_string(),
            (
                EstimatorKind::ImmediateLinear,
                SpeedPredictor::Current,
                DeviationCost::Uniform { .. },
            ) => "cil".to_string(),
            _ => {
                let est = match self.estimator {
                    EstimatorKind::DelayedLinear => "delayed",
                    EstimatorKind::ImmediateLinear => "immediate",
                };
                let cost = match self.deviation_cost {
                    DeviationCost::Uniform { .. } => "uniform",
                    DeviationCost::Step { .. } => "step",
                };
                format!("{est}-{}-{cost}", self.predictor.label())
            }
        }
    }
}

/// Anything that decides when a moving object updates its database
/// position. Implemented by [`PolicyEngine`] (the paper's cost-based
/// policies) and by the baselines in [`crate::baselines`].
pub trait Policy {
    /// Display label for reports.
    fn label(&self) -> String;

    /// The message cost `C` this policy is configured with.
    fn update_cost(&self) -> f64;

    /// Feed one observation: the time, the object's actual route arc, and
    /// its current speed. Returns the update sent now, if any.
    ///
    /// # Errors
    ///
    /// [`PolicyError::TimeWentBackwards`] /
    /// [`PolicyError::InvalidObservation`] on malformed input.
    fn tick(
        &mut self,
        now: f64,
        actual_arc: f64,
        current_speed: f64,
    ) -> Result<Option<PositionUpdate>, PolicyError>;

    /// The database position (arc) the DBMS computes at `now` from the
    /// last update — §2's database-position semantics.
    fn database_arc(&self, now: f64) -> f64;

    /// The last update sent (initially the trip-start update).
    fn last_update(&self) -> PositionUpdate;

    /// DBMS-side bound on the deviation at `now`, given the trip's maximum
    /// speed. `f64::INFINITY` when the policy provides no bound.
    fn uncertainty(&self, now: f64, v_max: f64) -> f64;
}

/// Executes a [`Quintuple`] for one moving object on one route.
///
/// The engine sees exactly what the onboard computer sees: its own GPS arc
/// position and speed each tick, plus the parameters of the last update it
/// sent. It recomputes the database position, tracks the deviation trace,
/// fits the estimator, and applies the optimal-threshold test of
/// Proposition 1.
#[derive(Debug, Clone)]
pub struct PolicyEngine {
    quintuple: Quintuple,
    route_len: f64,
    direction_sign: f64,
    first: PositionUpdate,
    last: PositionUpdate,
    trace: DeviationTrace,
    last_seen: f64,
    updates_sent: usize,
}

impl PolicyEngine {
    /// Creates an engine after the trip-start update `initial` (the paper:
    /// "at the beginning of the trip the moving object writes all the
    /// sub-attributes").
    ///
    /// `direction_sign` is `+1.0` for forward travel, `-1.0` for backward
    /// (see `modb_routes::Direction::sign`).
    ///
    /// # Errors
    ///
    /// Propagates quintuple validation failures and rejects a bad route
    /// length.
    pub fn new(
        quintuple: Quintuple,
        route_len: f64,
        direction_sign: f64,
        initial: PositionUpdate,
    ) -> Result<Self, PolicyError> {
        quintuple.validate()?;
        if route_len <= 0.0 || !route_len.is_finite() {
            return Err(PolicyError::InvalidRouteLength(route_len));
        }
        if !initial.arc.is_finite() || initial.arc < 0.0 {
            return Err(PolicyError::InvalidObservation("initial.arc", initial.arc));
        }
        if !initial.speed.is_finite() || initial.speed < 0.0 {
            return Err(PolicyError::InvalidObservation(
                "initial.speed",
                initial.speed,
            ));
        }
        Ok(PolicyEngine {
            quintuple,
            route_len,
            direction_sign: if direction_sign < 0.0 { -1.0 } else { 1.0 },
            first: initial,
            last: initial,
            trace: DeviationTrace::new(8192, ZERO_DEVIATION_EPS),
            last_seen: initial.time,
            updates_sent: 0,
        })
    }

    /// The quintuple this engine executes.
    pub fn quintuple(&self) -> &Quintuple {
        &self.quintuple
    }

    /// Number of updates sent since construction (excluding the initial
    /// trip-start update).
    pub fn updates_sent(&self) -> usize {
        self.updates_sent
    }

    /// Current deviation given the actual arc — available to the onboard
    /// computer at any time (§3.1).
    pub fn deviation(&self, now: f64, actual_arc: f64) -> f64 {
        (actual_arc - self.database_arc(now)).abs()
    }

    /// The optimal update threshold for the currently fitted estimator, if
    /// one can be fitted.
    pub fn current_threshold(&self) -> Option<f64> {
        let fit = self
            .quintuple
            .fitting
            .fit(self.quintuple.estimator, &self.trace)?;
        Some(self.threshold_for(fit.slope, fit.delay))
    }

    fn threshold_for(&self, a: f64, b: f64) -> f64 {
        match self.quintuple.deviation_cost {
            DeviationCost::Uniform { .. } => optimal_threshold(a, b, self.quintuple.update_cost),
            DeviationCost::Step { threshold, .. } => {
                // No closed form: search numerically. The optimum is never
                // far above the step threshold plus the closed-form uniform
                // optimum, so bound the search generously.
                let k_max = (threshold + optimal_threshold(a, b, self.quintuple.update_cost))
                    .max(threshold * 4.0)
                    * 4.0;
                optimal_threshold_numeric(
                    &self.quintuple.deviation_cost,
                    a,
                    b,
                    self.quintuple.update_cost,
                    k_max,
                )
            }
        }
    }
}

impl Policy for PolicyEngine {
    fn label(&self) -> String {
        self.quintuple.label()
    }

    fn update_cost(&self) -> f64 {
        self.quintuple.update_cost
    }

    fn tick(
        &mut self,
        now: f64,
        actual_arc: f64,
        current_speed: f64,
    ) -> Result<Option<PositionUpdate>, PolicyError> {
        if now < self.last_seen {
            return Err(PolicyError::TimeWentBackwards {
                last: self.last_seen,
                now,
            });
        }
        if !actual_arc.is_finite() || actual_arc < 0.0 {
            return Err(PolicyError::InvalidObservation("actual_arc", actual_arc));
        }
        if !current_speed.is_finite() || current_speed < 0.0 {
            return Err(PolicyError::InvalidObservation(
                "current_speed",
                current_speed,
            ));
        }
        self.last_seen = now;

        let k = self.deviation(now, actual_arc);
        let t = now - self.last.time;
        self.trace.push(t, k);

        // §3.2: "if k = 0, then the moving object does not do anything".
        let Some(fit) = self
            .quintuple
            .fitting
            .fit(self.quintuple.estimator, &self.trace)
        else {
            return Ok(None);
        };

        let threshold = self.threshold_for(fit.slope, fit.delay);
        if k + 1e-12 < threshold {
            return Ok(None);
        }

        // Send an update: current position plus the predicted speed.
        let average_since_update = if t > 0.0 {
            (actual_arc - self.last.arc).abs() / t
        } else {
            current_speed
        };
        let trip_elapsed = now - self.first.time;
        let trip_average = if trip_elapsed > 0.0 {
            (actual_arc - self.first.arc).abs() / trip_elapsed
        } else {
            current_speed
        };
        let speed = self.quintuple.predictor.predict(&SpeedObservation {
            current: current_speed,
            average_since_update,
            trip_average,
        });
        let update = PositionUpdate {
            time: now,
            arc: actual_arc,
            speed,
        };
        self.last = update;
        self.trace.reset();
        self.updates_sent += 1;
        Ok(Some(update))
    }

    fn database_arc(&self, now: f64) -> f64 {
        let elapsed = (now - self.last.time).max(0.0);
        (self.last.arc + self.direction_sign * self.last.speed * elapsed).clamp(0.0, self.route_len)
    }

    fn last_update(&self) -> PositionUpdate {
        self.last
    }

    fn uncertainty(&self, now: f64, v_max: f64) -> f64 {
        let t = (now - self.last.time).max(0.0);
        match self.quintuple.fitting {
            // Propositions 2–4 are proved for the simple fitting method:
            // their derivation uses a = k/(t−b), which other fitting
            // methods do not satisfy. For those, only the kinematic
            // envelope D·t is guaranteed.
            FittingMethod::Simple => combined_bound(
                self.quintuple.bound_kind(),
                self.last.speed,
                v_max,
                self.quintuple.update_cost,
                t,
            ),
            _ => {
                let v = self.last.speed;
                let d = v.max((v_max - v).max(0.0));
                d * t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: f64 = 5.0;
    const ROUTE_LEN: f64 = 1_000.0;
    const DT: f64 = 1.0 / 600.0; // 0.1 s ticks for sharp timing tests

    fn start() -> PositionUpdate {
        PositionUpdate {
            time: 0.0,
            arc: 0.0,
            speed: 1.0,
        }
    }

    fn engine(q: Quintuple) -> PolicyEngine {
        PolicyEngine::new(q, ROUTE_LEN, 1.0, start()).unwrap()
    }

    /// Plays Example 1: drive at exactly 1 mi/min for 2 minutes, then stop.
    /// Returns the time of the first update sent by the engine.
    fn play_example1(mut e: PolicyEngine) -> (f64, PositionUpdate) {
        let mut t = 0.0;
        loop {
            t += DT;
            assert!(t < 30.0, "no update fired in 30 minutes");
            let (arc, speed) = if t <= 2.0 { (t, 1.0) } else { (2.0, 0.0) };
            if let Some(u) = e.tick(t, arc, speed).unwrap() {
                return (t, u);
            }
        }
    }

    /// Example 1 (§3.2): the dl policy updates when the deviation reaches
    /// 1.74 miles — one minute and ~44 seconds into the stop.
    #[test]
    fn example1_dl_fires_at_paper_threshold() {
        let (t, u) = play_example1(engine(Quintuple::dl(C)));
        let expected_t = 2.0 + (14.0_f64.sqrt() - 2.0); // 3.7417 min
        assert!(
            (t - expected_t).abs() < 3.0 * DT,
            "dl fired at {t}, paper says {expected_t}"
        );
        // dl declares the *current* speed: the vehicle is stopped.
        assert_eq!(u.speed, 0.0);
        assert_eq!(u.arc, 2.0);
    }

    /// The ail policy in the same scenario fires when (t−2)·t ≥ 2C, i.e.
    /// at t = 1 + √11 ≈ 4.3166, and declares the average speed.
    #[test]
    fn example1_ail_fires_later_with_average_speed() {
        let (t, u) = play_example1(engine(Quintuple::ail(C)));
        let expected_t = 1.0 + 11.0_f64.sqrt();
        assert!(
            (t - expected_t).abs() < 3.0 * DT,
            "ail fired at {t}, analytic {expected_t}"
        );
        // Average speed since update: 2 miles in ~4.32 min ≈ 0.463.
        assert!((u.speed - 2.0 / expected_t).abs() < 0.01);
    }

    /// cil fires at the same time as ail (same estimator/threshold) but
    /// declares the current (zero) speed.
    #[test]
    fn example1_cil_fires_like_ail_with_current_speed() {
        let (t_ail, _) = play_example1(engine(Quintuple::ail(C)));
        let (t_cil, u) = play_example1(engine(Quintuple::cil(C)));
        assert!((t_ail - t_cil).abs() < 2.0 * DT);
        assert_eq!(u.speed, 0.0);
    }

    /// No deviation → never updates, regardless of policy.
    #[test]
    fn exact_travel_never_updates() {
        for q in [Quintuple::dl(C), Quintuple::ail(C), Quintuple::cil(C)] {
            let mut e = engine(q);
            let mut t = 0.0;
            while t < 60.0 {
                t += 0.01;
                assert!(e.tick(t, t, 1.0).unwrap().is_none());
            }
            assert_eq!(e.updates_sent(), 0);
        }
    }

    /// Zero elapsed time since the last update never divides: a deviation
    /// that appears at the very instant of the previous update (the
    /// zero-Δt case a same-timestamp position update produces) either
    /// stays silent — the estimators cannot fit a zero-length ramp — or
    /// fires with a finite declared speed, never NaN/inf.
    #[test]
    fn same_instant_deviation_never_yields_infinite_speed() {
        for q in [Quintuple::dl(C), Quintuple::ail(C), Quintuple::cil(C)] {
            let mut e = engine(q);
            // Tick at t = 0 — the exact time of the trip-start update —
            // with a large instantaneous deviation.
            let fired = e.tick(0.0, 500.0, 1.0).unwrap();
            if let Some(u) = fired {
                assert!(u.speed.is_finite(), "declared speed {}", u.speed);
            }
            // Repeated same-instant ticks are fine too.
            for _ in 0..3 {
                if let Some(u) = e.tick(0.0, 500.0, 1.0).unwrap() {
                    assert!(u.speed.is_finite());
                }
            }
        }
    }

    /// Database position extrapolates at the declared speed and clamps at
    /// the route end.
    #[test]
    fn database_arc_semantics() {
        let e = engine(Quintuple::dl(C));
        assert_eq!(e.database_arc(0.0), 0.0);
        assert_eq!(e.database_arc(5.0), 5.0);
        assert_eq!(e.database_arc(2_000.0), ROUTE_LEN);
        // Backward travel.
        let eb = PolicyEngine::new(
            Quintuple::dl(C),
            ROUTE_LEN,
            -1.0,
            PositionUpdate {
                time: 0.0,
                arc: 10.0,
                speed: 1.0,
            },
        )
        .unwrap();
        assert_eq!(eb.database_arc(4.0), 6.0);
        assert_eq!(eb.database_arc(100.0), 0.0);
    }

    /// After an update the deviation trace resets: deviation is measured
    /// against the new database position.
    #[test]
    fn deviation_resets_after_update() {
        let mut e = engine(Quintuple::cil(C));
        let (t_fire, u) = {
            let mut t = 0.0;
            loop {
                t += DT;
                let (arc, speed) = if t <= 2.0 { (t, 1.0) } else { (2.0, 0.0) };
                if let Some(u) = e.tick(t, arc, speed).unwrap() {
                    break (t, u);
                }
            }
        };
        assert_eq!(e.last_update(), u);
        assert!(e.deviation(t_fire, 2.0) < 1e-9);
        assert_eq!(e.updates_sent(), 1);
    }

    /// Observations must move forward in time.
    #[test]
    fn time_cannot_go_backwards() {
        let mut e = engine(Quintuple::dl(C));
        e.tick(1.0, 1.0, 1.0).unwrap();
        assert!(matches!(
            e.tick(0.5, 1.0, 1.0),
            Err(PolicyError::TimeWentBackwards { .. })
        ));
    }

    #[test]
    fn invalid_observations_rejected() {
        let mut e = engine(Quintuple::dl(C));
        assert!(e.tick(1.0, f64::NAN, 1.0).is_err());
        assert!(e.tick(1.0, -1.0, 1.0).is_err());
        assert!(e.tick(1.0, 1.0, -0.5).is_err());
        assert!(e.tick(1.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn construction_validation() {
        assert!(PolicyEngine::new(Quintuple::dl(0.0), 10.0, 1.0, start()).is_err());
        assert!(PolicyEngine::new(Quintuple::dl(C), 0.0, 1.0, start()).is_err());
        assert!(PolicyEngine::new(
            Quintuple::dl(C),
            10.0,
            1.0,
            PositionUpdate {
                time: 0.0,
                arc: -1.0,
                speed: 1.0
            }
        )
        .is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(Quintuple::dl(C).label(), "dl");
        assert_eq!(Quintuple::ail(C).label(), "ail");
        assert_eq!(Quintuple::cil(C).label(), "cil");
        let custom = Quintuple {
            deviation_cost: DeviationCost::Step {
                threshold: 0.5,
                penalty: 1.0,
            },
            update_cost: C,
            estimator: EstimatorKind::ImmediateLinear,
            fitting: FittingMethod::LeastSquares,
            predictor: SpeedPredictor::TripAverage,
        };
        assert_eq!(custom.label(), "immediate-trip-avg-step");
    }

    /// The engine's uncertainty equals the §3.3 combined bound for its
    /// estimator kind.
    #[test]
    fn uncertainty_matches_bounds_module() {
        use crate::bounds;
        let e = engine(Quintuple::ail(C));
        for t in [0.5, 2.0, 5.0] {
            let expected = bounds::combined_bound(BoundKind::Immediate, 1.0, 1.5, C, t);
            assert_eq!(e.uncertainty(t, 1.5), expected);
        }
        let d = engine(Quintuple::dl(C));
        for t in [0.5, 2.0, 5.0] {
            let expected = bounds::combined_bound(BoundKind::Delayed, 1.0, 1.5, C, t);
            assert_eq!(d.uncertainty(t, 1.5), expected);
        }
    }

    /// Non-simple fitting methods fall back to the kinematic envelope,
    /// because Propositions 2–4 assume simple fitting.
    #[test]
    fn least_squares_uncertainty_is_kinematic() {
        let q = Quintuple {
            fitting: FittingMethod::LeastSquares,
            ..Quintuple::ail(C)
        };
        let e = engine(q);
        // D = max(v, V − v) = max(1, 0.5) = 1 → bound = t.
        for t in [0.5, 2.0, 10.0] {
            assert_eq!(e.uncertainty(t, 1.5), t);
        }
        // Simple fitting keeps the paper bound (decays after crossover).
        let simple = engine(Quintuple::ail(C));
        assert!(simple.uncertainty(10.0, 1.5) < 10.0);
    }

    /// A step-cost quintuple runs end to end and fires eventually.
    #[test]
    fn step_cost_policy_fires() {
        let q = Quintuple {
            deviation_cost: DeviationCost::Step {
                threshold: 0.5,
                penalty: 2.0,
            },
            update_cost: C,
            estimator: EstimatorKind::ImmediateLinear,
            fitting: FittingMethod::Simple,
            predictor: SpeedPredictor::Current,
        };
        let mut e = engine(q);
        let mut t = 0.0;
        let mut fired = None;
        while t < 30.0 {
            t += DT;
            let (arc, speed) = if t <= 2.0 { (t, 1.0) } else { (2.0, 0.0) };
            if let Some(u) = e.tick(t, arc, speed).unwrap() {
                fired = Some((t, u));
                break;
            }
        }
        let (t, _) = fired.expect("step-cost policy should eventually update");
        // Must be past the free zone: deviation at least the step threshold.
        assert!(t - 2.0 >= 0.5);
    }
}
