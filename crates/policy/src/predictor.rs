//! Predicted-speed selection (§3.1).
//!
//! "The predicted-speed is the speed that will be stored in the
//! subattribute `P.speed` at each update." The paper names three
//! past-based choices — the current speed, the average speed since the
//! last update, and the average speed since the beginning of the trip —
//! and allows externally supplied forecasts; all four are provided.

/// How the speed declared in a position update is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedPredictor {
    /// The instantaneous speed at the update (dl and cil policies).
    Current,
    /// Average speed since the last update (ail policy).
    AverageSinceUpdate,
    /// Average speed since the beginning of the trip.
    TripAverage,
    /// An externally supplied forecast (known traffic patterns, upcoming
    /// terrain, or user input — §3.1). The engine uses this fixed value at
    /// every update until it is changed.
    Forecast(f64),
}

/// The speed observations available to the predictor at update time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedObservation {
    /// Instantaneous speed right now (miles/minute).
    pub current: f64,
    /// Average speed since the last update.
    pub average_since_update: f64,
    /// Average speed since the trip started.
    pub trip_average: f64,
}

impl SpeedPredictor {
    /// The speed to declare in the update.
    pub fn predict(&self, obs: &SpeedObservation) -> f64 {
        let v = match *self {
            SpeedPredictor::Current => obs.current,
            SpeedPredictor::AverageSinceUpdate => obs.average_since_update,
            SpeedPredictor::TripAverage => obs.trip_average,
            SpeedPredictor::Forecast(v) => v,
        };
        debug_assert!(v.is_finite() && v >= 0.0, "predicted speed {v}");
        v.max(0.0)
    }

    /// Short name used in reports and plots.
    pub fn label(&self) -> &'static str {
        match self {
            SpeedPredictor::Current => "current",
            SpeedPredictor::AverageSinceUpdate => "avg-since-update",
            SpeedPredictor::TripAverage => "trip-avg",
            SpeedPredictor::Forecast(_) => "forecast",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> SpeedObservation {
        SpeedObservation {
            current: 1.0,
            average_since_update: 0.6,
            trip_average: 0.8,
        }
    }

    #[test]
    fn each_predictor_selects_its_source() {
        assert_eq!(SpeedPredictor::Current.predict(&obs()), 1.0);
        assert_eq!(SpeedPredictor::AverageSinceUpdate.predict(&obs()), 0.6);
        assert_eq!(SpeedPredictor::TripAverage.predict(&obs()), 0.8);
        assert_eq!(SpeedPredictor::Forecast(0.45).predict(&obs()), 0.45);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            SpeedPredictor::Current.label(),
            SpeedPredictor::AverageSinceUpdate.label(),
            SpeedPredictor::TripAverage.label(),
            SpeedPredictor::Forecast(1.0).label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }
}
