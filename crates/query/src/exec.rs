//! Query evaluation against a [`Database`].

use modb_core::{CoreError, Database, NearestAnswer, ObjectId, PositionAnswer, RangeAnswer};
use modb_geom::{Point, Polygon, Rect};
use modb_index::QueryRegion;
use std::fmt;

use crate::ast::{ObjectRef, Query, RegionSpec, TimeSpec};

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// No moving object with this name.
    UnknownName(String),
    /// The region was geometrically invalid (degenerate polygon etc.).
    InvalidRegion(String),
    /// DBMS-level failure.
    Core(CoreError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownName(n) => write!(f, "no moving object named `{n}`"),
            ExecError::InvalidRegion(msg) => write!(f, "invalid query region: {msg}"),
            ExecError::Core(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ExecError {
    fn from(e: CoreError) -> Self {
        ExecError::Core(e)
    }
}

/// The result of executing a query.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// A position answer with its deviation bound.
    Position(PositionAnswer),
    /// A may/must range answer.
    Range(RangeAnswer),
    /// A k-nearest answer with certain/possible ranking.
    Nearest(NearestAnswer),
}

impl QueryResult {
    /// The range answer, if this is one.
    pub fn as_range(&self) -> Option<&RangeAnswer> {
        match self {
            QueryResult::Range(r) => Some(r),
            _ => None,
        }
    }

    /// The position answer, if this is one.
    pub fn as_position(&self) -> Option<&PositionAnswer> {
        match self {
            QueryResult::Position(p) => Some(p),
            _ => None,
        }
    }

    /// The nearest answer, if this is one.
    pub fn as_nearest(&self) -> Option<&NearestAnswer> {
        match self {
            QueryResult::Nearest(n) => Some(n),
            _ => None,
        }
    }
}

fn resolve(db: &Database, obj: &ObjectRef) -> Result<ObjectId, ExecError> {
    match obj {
        ObjectRef::Id(id) => Ok(*id),
        ObjectRef::Name(name) => db
            .find_moving_by_name(name)
            .map(|o| o.id)
            .ok_or_else(|| ExecError::UnknownName(name.clone())),
    }
}

fn build_region(region: &RegionSpec, time: TimeSpec) -> Result<QueryRegion, ExecError> {
    let polygon = match region {
        RegionSpec::Polygon(pts) => {
            Polygon::new(pts.clone()).map_err(|e| ExecError::InvalidRegion(e.to_string()))?
        }
        RegionSpec::Rect { min, max } => {
            let r = Rect::new(*min, *max);
            if r.width() <= 0.0 || r.height() <= 0.0 {
                return Err(ExecError::InvalidRegion(format!(
                    "rectangle ({}, {}) .. ({}, {}) is degenerate",
                    min.x, min.y, max.x, max.y
                )));
            }
            Polygon::rectangle(&r).map_err(|e| ExecError::InvalidRegion(e.to_string()))?
        }
    };
    Ok(match time {
        TimeSpec::At(t) => QueryRegion::at_instant(polygon, t),
        TimeSpec::During(t0, t1) => QueryRegion::during(polygon, t0, t1),
    })
}

/// Executes a parsed query against the database.
///
/// # Errors
///
/// [`ExecError`] for unknown names, invalid regions, or DBMS failures.
pub fn execute(db: &Database, query: &Query) -> Result<QueryResult, ExecError> {
    match query {
        Query::Position { object, at } => {
            let id = resolve(db, object)?;
            Ok(QueryResult::Position(db.position_of(id, *at)?))
        }
        Query::Range { region, time } => {
            let region = build_region(region, *time)?;
            Ok(QueryResult::Range(db.range_query(&region)?))
        }
        Query::WithinPoint { center, radius, at } => Ok(QueryResult::Range(
            db.within_distance_of_point(Point::new(center.x, center.y), *radius, *at)?,
        )),
        Query::Nearest { k, center, at } => Ok(QueryResult::Nearest(db.nearest(
            Point::new(center.x, center.y),
            *k,
            *at,
        )?)),
        Query::WithinObject { object, radius, at } => {
            let id = resolve(db, object)?;
            Ok(QueryResult::Range(
                db.within_distance_of_object(id, *radius, *at)?,
            ))
        }
    }
}

/// Parses and executes a query string in one step.
///
/// # Errors
///
/// [`crate::QueryError::Parse`] for text that does not parse,
/// [`crate::QueryError::Exec`] for evaluation failures.
pub fn run(db: &Database, src: &str) -> Result<QueryResult, crate::QueryError> {
    let query = crate::parse(src).map_err(crate::QueryError::Parse)?;
    execute(db, &query).map_err(crate::QueryError::Exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{
        DatabaseConfig, MovingObject, PolicyDescriptor, PositionAttribute, StationaryObject,
    };
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};

    fn db() -> Database {
        let route = Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap();
        let network = RouteNetwork::from_routes([route]).unwrap();
        let mut db = Database::new(network, DatabaseConfig::default());
        for (i, arc) in [(1u64, 10.0), (2, 30.0), (3, 60.0)] {
            db.register_moving(MovingObject {
                id: ObjectId(i),
                name: if i == 2 {
                    "ABT312".into()
                } else {
                    format!("veh-{i}")
                },
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(arc, 0.0),
                    start_arc: arc,
                    direction: Direction::Forward,
                    speed: 1.0,
                    policy: PolicyDescriptor::CostBased {
                        kind: BoundKind::Immediate,
                        update_cost: 5.0,
                    },
                },
                max_speed: 1.5,
                trip_end: None,
            })
            .unwrap();
        }
        db.insert_stationary(StationaryObject::new(
            ObjectId(100),
            "depot",
            Point::new(12.0, 0.0),
        ))
        .unwrap();
        db
    }

    #[test]
    fn position_query_by_id_and_name() {
        let d = db();
        let r = run(&d, "RETRIEVE POSITION OF OBJECT 1 AT TIME 5").unwrap();
        let p = r.as_position().unwrap();
        assert_eq!(p.arc, 15.0);
        assert!(p.bound > 0.0);

        let r = run(&d, "RETRIEVE POSITION OF OBJECT 'ABT312' AT TIME 0").unwrap();
        assert_eq!(r.as_position().unwrap().arc, 30.0);
    }

    #[test]
    fn range_query_rect_and_polygon() {
        let d = db();
        let r = run(&d, "RETRIEVE OBJECTS INSIDE RECT (0, -1, 40, 1) AT TIME 0").unwrap();
        let a = r.as_range().unwrap();
        let mut all = a.all();
        all.sort_unstable();
        assert_eq!(all, vec![ObjectId(1), ObjectId(2)]);

        let r = run(
            &d,
            "RETRIEVE OBJECTS INSIDE POLYGON ((55,-2), (70,-2), (70,2), (55,2)) AT TIME 0",
        )
        .unwrap();
        assert_eq!(r.as_range().unwrap().all(), vec![ObjectId(3)]);
    }

    #[test]
    fn during_query() {
        let d = db();
        // Object 1 (starts at 10, speed 1) passes through [18, 22] between
        // t=8 and t=12 — caught by a DURING query over [0, 15].
        let r = run(
            &d,
            "RETRIEVE OBJECTS INSIDE RECT (18, -1, 22, 1) DURING 0 TO 15",
        )
        .unwrap();
        assert!(r.as_range().unwrap().all().contains(&ObjectId(1)));
    }

    #[test]
    fn within_queries() {
        let d = db();
        let r = run(&d, "RETRIEVE OBJECTS WITHIN 5 OF POINT (12, 0) AT TIME 0").unwrap();
        assert!(r.as_range().unwrap().all().contains(&ObjectId(1)));
        let r = run(
            &d,
            "RETRIEVE OBJECTS WITHIN 25 OF OBJECT 'ABT312' AT TIME 0",
        )
        .unwrap();
        let all = r.as_range().unwrap().all();
        assert!(all.contains(&ObjectId(1)));
        assert!(!all.contains(&ObjectId(2)), "anchor excluded");
    }

    #[test]
    fn nearest_query() {
        let d = db();
        // At t = 0 positions are 10, 30, 60; nearest 2 to the origin are
        // objects 1 and 2 in that order.
        let r = run(&d, "RETRIEVE 2 NEAREST OBJECTS TO POINT (0, 0) AT TIME 0").unwrap();
        let n = r.as_nearest().unwrap();
        assert_eq!(n.ranked.len(), 2);
        assert_eq!(n.ranked[0].id, ObjectId(1));
        assert_eq!(n.ranked[1].id, ObjectId(2));
        assert!(n.ranked[0].distance < n.ranked[1].distance);
        // k must be a positive integer.
        assert!(run(&d, "RETRIEVE 0 NEAREST OBJECTS TO POINT (0,0) AT TIME 0").is_err());
        assert!(run(&d, "RETRIEVE 1.5 NEAREST OBJECTS TO POINT (0,0) AT TIME 0").is_err());
    }

    #[test]
    fn error_paths() {
        let d = db();
        assert!(matches!(
            run(&d, "RETRIEVE POSITION OF OBJECT 'ghost' AT TIME 0"),
            Err(crate::QueryError::Exec(ExecError::UnknownName(_)))
        ));
        assert!(matches!(
            run(&d, "RETRIEVE POSITION OF OBJECT 99 AT TIME 0"),
            Err(crate::QueryError::Exec(ExecError::Core(
                CoreError::UnknownObject(_)
            )))
        ));
        assert!(matches!(
            run(&d, "RETRIEVE OBJECTS INSIDE RECT (5, 5, 5, 9) AT TIME 0"),
            Err(crate::QueryError::Exec(ExecError::InvalidRegion(_)))
        ));
        assert!(matches!(
            run(&d, "garbage"),
            Err(crate::QueryError::Parse(_))
        ));
    }

    #[test]
    fn query_matches_api_answers() {
        let d = db();
        let via_text = run(&d, "RETRIEVE OBJECTS INSIDE RECT (0, -1, 100, 1) AT TIME 2").unwrap();
        let region = QueryRegion::at_instant(
            Polygon::rectangle(&Rect::new(Point::new(0.0, -1.0), Point::new(100.0, 1.0))).unwrap(),
            2.0,
        );
        let via_api = d.range_query(&region).unwrap();
        assert_eq!(via_text.as_range().unwrap(), &via_api);
    }
}
