//! Recursive-descent parser for the query language.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query    := RETRIEVE body time?
//!           | RETRIEVE number NEAREST OBJECTS TO POINT point time
//! body     := POSITION OF object
//!           | OBJECTS INSIDE region
//!           | OBJECTS WITHIN number OF POINT point
//!           | OBJECTS WITHIN number OF object
//! object   := OBJECT (number | string)
//! region   := RECT '(' n ',' n ',' n ',' n ')'
//!           | POLYGON '(' point (',' point)+ ')'
//! point    := '(' n ',' n ')'
//! time     := AT TIME number | DURING number TO number
//! ```
//!
//! A missing time clause means "now is 0" is *not* assumed — evaluation
//! requires an explicit time, so the parser defaults to `AT TIME 0` only
//! for `DEFAULT_TIME_ZERO`-style convenience in tests; here we make the
//! clause mandatory for clarity.

use modb_core::ObjectId;
use modb_geom::Point;
use std::fmt;

use crate::ast::{ObjectRef, Query, RegionSpec, TimeSpec};
use crate::lexer::{lex, LexError, Token, TokenKind};

/// Parse failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenizer failure.
    Lex(LexError),
    /// Unexpected token (or end of input).
    Unexpected {
        /// What the parser needed.
        expected: String,
        /// What it found (`None` = end of input).
        found: Option<String>,
        /// Byte offset of the offending token.
        offset: usize,
    },
    /// Input continued past a complete query.
    TrailingInput {
        /// Offset of the first extra token.
        offset: usize,
    },
    /// A polygon needs at least three vertices.
    PolygonTooSmall {
        /// How many vertices were supplied.
        got: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                expected,
                found,
                offset,
            } => match found {
                Some(tok) => write!(f, "expected {expected} at byte {offset}, found `{tok}`"),
                None => write!(
                    f,
                    "expected {expected} at byte {offset}, found end of input"
                ),
            },
            ParseError::TrailingInput { offset } => {
                write!(f, "unexpected trailing input at byte {offset}")
            }
            ParseError::PolygonTooSmall { got } => {
                write!(f, "polygon needs at least 3 vertices, got {got}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::Unexpected {
                expected: expected.into(),
                found: Some(t.kind.to_string()),
                offset: t.offset,
            },
            None => ParseError::Unexpected {
                expected: expected.into(),
                found: None,
                offset: self.src_len,
            },
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == word => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("`{word}`"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            _ => Err(self.err("a number")),
        }
    }

    fn expect_kind(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if &t.kind == kind => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(what)),
        }
    }

    fn parse_point(&mut self) -> Result<Point, ParseError> {
        self.expect_kind(&TokenKind::LParen, "`(`")?;
        let x = self.expect_number()?;
        self.expect_kind(&TokenKind::Comma, "`,`")?;
        let y = self.expect_number()?;
        self.expect_kind(&TokenKind::RParen, "`)`")?;
        Ok(Point::new(x, y))
    }

    fn parse_object_ref(&mut self) -> Result<ObjectRef, ParseError> {
        self.expect_word("OBJECT")?;
        match self.next() {
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => Ok(ObjectRef::Id(ObjectId(n as u64))),
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Ok(ObjectRef::Name(s)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("an object id or 'name'"))
            }
        }
    }

    fn parse_region(&mut self) -> Result<RegionSpec, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == "RECT" => {
                self.pos += 1;
                self.expect_kind(&TokenKind::LParen, "`(`")?;
                let x0 = self.expect_number()?;
                self.expect_kind(&TokenKind::Comma, "`,`")?;
                let y0 = self.expect_number()?;
                self.expect_kind(&TokenKind::Comma, "`,`")?;
                let x1 = self.expect_number()?;
                self.expect_kind(&TokenKind::Comma, "`,`")?;
                let y1 = self.expect_number()?;
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                Ok(RegionSpec::Rect {
                    min: Point::new(x0, y0),
                    max: Point::new(x1, y1),
                })
            }
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == "POLYGON" => {
                self.pos += 1;
                self.expect_kind(&TokenKind::LParen, "`(`")?;
                let mut pts = vec![self.parse_point()?];
                while matches!(
                    self.peek(),
                    Some(Token {
                        kind: TokenKind::Comma,
                        ..
                    })
                ) {
                    self.pos += 1;
                    pts.push(self.parse_point()?);
                }
                self.expect_kind(&TokenKind::RParen, "`)`")?;
                if pts.len() < 3 {
                    return Err(ParseError::PolygonTooSmall { got: pts.len() });
                }
                Ok(RegionSpec::Polygon(pts))
            }
            _ => Err(self.err("`RECT` or `POLYGON`")),
        }
    }

    fn parse_time(&mut self) -> Result<TimeSpec, ParseError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == "AT" => {
                self.pos += 1;
                self.expect_word("TIME")?;
                Ok(TimeSpec::At(self.expect_number()?))
            }
            Some(Token {
                kind: TokenKind::Word(w),
                ..
            }) if w == "DURING" => {
                self.pos += 1;
                let t0 = self.expect_number()?;
                self.expect_word("TO")?;
                let t1 = self.expect_number()?;
                Ok(TimeSpec::During(t0, t1))
            }
            _ => Err(self.err("`AT TIME t` or `DURING t0 TO t1`")),
        }
    }
}

/// Parses a query string.
///
/// ```
/// use modb_query::{parse, Query};
/// let q = parse("RETRIEVE OBJECTS WITHIN 1 OF POINT (5, 6) AT TIME 10")?;
/// assert!(matches!(q, Query::WithinPoint { radius, .. } if radius == 1.0));
/// # Ok::<(), modb_query::ParseError>(())
/// ```
///
/// # Errors
///
/// [`ParseError`] with byte offsets for diagnostics.
pub fn parse(src: &str) -> Result<Query, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
    };
    p.expect_word("RETRIEVE")?;
    let query = match p.peek() {
        Some(Token {
            kind: TokenKind::Word(w),
            ..
        }) if w == "POSITION" => {
            p.pos += 1;
            p.expect_word("OF")?;
            let object = p.parse_object_ref()?;
            let time = p.parse_time()?;
            let at = match time {
                TimeSpec::At(t) => t,
                TimeSpec::During(..) => {
                    return Err(ParseError::Unexpected {
                        expected: "`AT TIME t` (position queries are instantaneous)".into(),
                        found: Some("DURING".into()),
                        offset: 0,
                    })
                }
            };
            Query::Position { object, at }
        }
        Some(Token {
            kind: TokenKind::Word(w),
            ..
        }) if w == "OBJECTS" => {
            p.pos += 1;
            match p.peek() {
                Some(Token {
                    kind: TokenKind::Word(w),
                    ..
                }) if w == "INSIDE" => {
                    p.pos += 1;
                    let region = p.parse_region()?;
                    let time = p.parse_time()?;
                    Query::Range { region, time }
                }
                Some(Token {
                    kind: TokenKind::Word(w),
                    ..
                }) if w == "WITHIN" => {
                    p.pos += 1;
                    let radius = p.expect_number()?;
                    p.expect_word("OF")?;
                    match p.peek() {
                        Some(Token {
                            kind: TokenKind::Word(w),
                            ..
                        }) if w == "POINT" => {
                            p.pos += 1;
                            let center = p.parse_point()?;
                            let time = p.parse_time()?;
                            let TimeSpec::At(at) = time else {
                                return Err(p.err("`AT TIME t` (within queries are instantaneous)"));
                            };
                            Query::WithinPoint { center, radius, at }
                        }
                        Some(Token {
                            kind: TokenKind::Word(w),
                            ..
                        }) if w == "OBJECT" => {
                            let object = p.parse_object_ref()?;
                            let time = p.parse_time()?;
                            let TimeSpec::At(at) = time else {
                                return Err(p.err("`AT TIME t` (within queries are instantaneous)"));
                            };
                            Query::WithinObject { object, radius, at }
                        }
                        _ => return Err(p.err("`POINT` or `OBJECT`")),
                    }
                }
                _ => return Err(p.err("`INSIDE` or `WITHIN`")),
            }
        }
        Some(Token {
            kind: TokenKind::Number(n),
            offset,
        }) => {
            let n = *n;
            let offset = *offset;
            if n < 1.0 || n.fract() != 0.0 {
                return Err(ParseError::Unexpected {
                    expected: "a positive integer k".into(),
                    found: Some(n.to_string()),
                    offset,
                });
            }
            p.pos += 1;
            p.expect_word("NEAREST")?;
            p.expect_word("OBJECTS")?;
            p.expect_word("TO")?;
            p.expect_word("POINT")?;
            let center = p.parse_point()?;
            let time = p.parse_time()?;
            let TimeSpec::At(at) = time else {
                return Err(p.err("`AT TIME t` (nearest queries are instantaneous)"));
            };
            Query::Nearest {
                k: n as usize,
                center,
                at,
            }
        }
        _ => return Err(p.err("`POSITION`, `OBJECTS`, or `k NEAREST`")),
    };
    if let Some(t) = p.peek() {
        return Err(ParseError::TrailingInput { offset: t.offset });
    }
    Ok(query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_position_query() {
        let q = parse("RETRIEVE POSITION OF OBJECT 7 AT TIME 10").unwrap();
        assert_eq!(
            q,
            Query::Position {
                object: ObjectRef::Id(ObjectId(7)),
                at: 10.0
            }
        );
        let q = parse("retrieve position of object 'ABT312' at time 2.5").unwrap();
        assert_eq!(
            q,
            Query::Position {
                object: ObjectRef::Name("ABT312".into()),
                at: 2.5
            }
        );
    }

    #[test]
    fn parse_rect_range_query() {
        let q = parse("RETRIEVE OBJECTS INSIDE RECT (0, 0, 10, 5) AT TIME 3").unwrap();
        assert_eq!(
            q,
            Query::Range {
                region: RegionSpec::Rect {
                    min: Point::new(0.0, 0.0),
                    max: Point::new(10.0, 5.0)
                },
                time: TimeSpec::At(3.0)
            }
        );
    }

    #[test]
    fn parse_polygon_during_query() {
        let q =
            parse("RETRIEVE OBJECTS INSIDE POLYGON ((0,0), (4,0), (4,4), (0,4)) DURING 0 TO 15")
                .unwrap();
        match q {
            Query::Range {
                region: RegionSpec::Polygon(pts),
                time: TimeSpec::During(t0, t1),
            } => {
                assert_eq!(pts.len(), 4);
                assert_eq!((t0, t1), (0.0, 15.0));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parse_within_point_query() {
        let q = parse("RETRIEVE OBJECTS WITHIN 1 OF POINT (5, 6) AT TIME 10").unwrap();
        assert_eq!(
            q,
            Query::WithinPoint {
                center: Point::new(5.0, 6.0),
                radius: 1.0,
                at: 10.0
            }
        );
    }

    #[test]
    fn parse_within_object_query() {
        let q = parse("RETRIEVE OBJECTS WITHIN 3 OF OBJECT 'ABT312' AT TIME 30").unwrap();
        assert_eq!(
            q,
            Query::WithinObject {
                object: ObjectRef::Name("ABT312".into()),
                radius: 3.0,
                at: 30.0
            }
        );
    }

    #[test]
    fn error_messages_are_located() {
        let e = parse("RETRIEVE OBJECTS NEAR (0,0)").unwrap_err();
        assert!(e.to_string().contains("INSIDE"), "{e}");
        let e = parse("RETRIEVE OBJECTS INSIDE RECT (0, 0, 10)").unwrap_err();
        assert!(e.to_string().contains("`,`"), "{e}");
        let e = parse("RETRIEVE POSITION OF OBJECT 1 AT TIME 1 EXTRA").unwrap_err();
        assert!(matches!(e, ParseError::TrailingInput { .. }));
        let e = parse("RETRIEVE OBJECTS INSIDE POLYGON ((0,0), (1,1)) AT TIME 0").unwrap_err();
        assert!(matches!(e, ParseError::PolygonTooSmall { got: 2 }));
        let e = parse("").unwrap_err();
        assert!(e.to_string().contains("RETRIEVE"));
    }

    #[test]
    fn position_query_rejects_during() {
        let e = parse("RETRIEVE POSITION OF OBJECT 1 DURING 0 TO 5").unwrap_err();
        assert!(e.to_string().contains("instantaneous"));
    }
}
