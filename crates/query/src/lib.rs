//! # modb-query — a textual query language for the moving-objects DBMS
//!
//! The paper lists "developing query languages and user interfaces for
//! these databases" as future work (§5, §6) and motivates three query
//! shapes in §1; this crate provides a small language covering all of
//! them:
//!
//! ```text
//! RETRIEVE POSITION OF OBJECT 'ABT312' AT TIME 30
//! RETRIEVE OBJECTS INSIDE RECT (0, 0, 10, 10) AT TIME 5
//! RETRIEVE OBJECTS INSIDE POLYGON ((0,0), (4,0), (4,4)) DURING 0 TO 15
//! RETRIEVE OBJECTS WITHIN 1 OF POINT (5, 6) AT TIME 10      -- taxi query
//! RETRIEVE OBJECTS WITHIN 3 OF OBJECT 'ABT312' AT TIME 30   -- trucking query
//! ```
//!
//! Use [`run`] for parse-and-execute in one step, or [`parse`] +
//! [`execute`] separately. Range answers carry the may/must split and
//! position answers the deviation bound, exactly as the underlying
//! [`modb_core::Database`] API returns them.

#![warn(missing_docs)]

mod ast;
mod batch;
mod exec;
mod lexer;
mod parser;

pub use ast::{ObjectRef, Query, RegionSpec, TimeSpec};
pub use batch::{run_batch, split_statements};
pub use exec::{execute, run, ExecError, QueryResult};
pub use lexer::{lex, LexError, Token, TokenKind};
pub use parser::{parse, ParseError};

/// Either phase of query processing can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The text did not parse.
    Parse(ParseError),
    /// The parsed query could not be evaluated.
    Exec(ExecError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "parse error: {e}"),
            QueryError::Exec(e) => write!(f, "execution error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Parse(e) => Some(e),
            QueryError::Exec(e) => Some(e),
        }
    }
}
