//! Multi-statement scripts: `;`-separated batches of queries.
//!
//! The language itself is single-statement; a REPL line or script file
//! holds several statements separated by `;`. [`split_statements`] does
//! the split (respecting single-quoted object names, where a `;` is
//! literal text), and [`run_batch`] executes every statement in order
//! against one database view, returning a per-statement verdict.
//!
//! The splitter agrees with the lexer on string literals: an
//! unterminated `'` is a [`LexError`] for the whole script (at the
//! offset of the opening quote, like [`crate::lex`]) rather than a
//! silent swallow of every later `;` into one statement.
//!
//! `modb-server`'s query engine uses the same split to fan a batch
//! across its worker pool against one epoch snapshot.

use modb_core::Database;

use crate::exec::QueryResult;
use crate::lexer::LexError;
use crate::{ParseError, QueryError};

/// Splits a script on `;` separators that sit outside single-quoted
/// string literals. Statements are trimmed; empty statements (leading,
/// trailing, or doubled separators) are dropped.
///
/// Fails with a [`LexError`] at the opening quote if a string literal
/// is still open at end of input — the same verdict the lexer would
/// reach on the statement, surfaced for the whole script so a typo'd
/// quote cannot silently fuse every later statement into one.
pub fn split_statements(src: &str) -> Result<Vec<&str>, LexError> {
    let mut statements = Vec::new();
    let mut start = 0;
    let mut string_open: Option<usize> = None;
    for (i, c) in src.char_indices() {
        match c {
            '\'' => match string_open {
                Some(_) => string_open = None,
                None => string_open = Some(i),
            },
            ';' if string_open.is_none() => {
                let stmt = src[start..i].trim();
                if !stmt.is_empty() {
                    statements.push(stmt);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if let Some(offset) = string_open {
        return Err(LexError {
            offset,
            message: "unterminated string literal".into(),
        });
    }
    let tail = src[start..].trim();
    if !tail.is_empty() {
        statements.push(tail);
    }
    Ok(statements)
}

/// Parses and executes every statement of a `;`-separated script against
/// `db`, in order. Each statement gets its own verdict — one bad
/// statement does not abort the rest. A script whose quoting never
/// closes cannot be split at all; that surfaces as a single
/// [`QueryError::Parse`] verdict for the whole batch.
pub fn run_batch(db: &Database, src: &str) -> Vec<Result<QueryResult, QueryError>> {
    match split_statements(src) {
        Ok(statements) => statements
            .into_iter()
            .map(|stmt| crate::run(db, stmt))
            .collect(),
        Err(e) => vec![Err(QueryError::Parse(ParseError::Lex(e)))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_semicolons_dropping_empties() {
        assert_eq!(
            split_statements("a; b ;;\n c ;").unwrap(),
            vec!["a", "b", "c"]
        );
        assert_eq!(split_statements("").unwrap(), Vec::<&str>::new());
        assert_eq!(split_statements(" ;; ").unwrap(), Vec::<&str>::new());
        assert_eq!(split_statements("single").unwrap(), vec!["single"]);
    }

    #[test]
    fn semicolon_inside_string_literal_is_text() {
        assert_eq!(
            split_statements("RETRIEVE POSITION OF OBJECT 'a;b' AT TIME 1; next").unwrap(),
            vec!["RETRIEVE POSITION OF OBJECT 'a;b' AT TIME 1", "next"]
        );
    }

    #[test]
    fn unterminated_literal_is_an_error_not_a_swallow() {
        // The old splitter returned one fused statement here, silently
        // ignoring the second `;` — and the lexer would then reject the
        // fused text anyway. Now the script itself is rejected, at the
        // opening quote.
        let err = split_statements("RETRIEVE POSITION OF OBJECT 'oops AT TIME 1; next; more")
            .unwrap_err();
        assert_eq!(err.offset, 28);
        assert!(err.message.contains("unterminated string literal"));
        // A lone open quote at end of input is the same error.
        assert!(split_statements("a; b'").is_err());
    }

    /// The splitter and the lexer must agree on what a string literal
    /// is: every statement the splitter emits must lex without an
    /// unterminated-literal error, and a script the splitter rejects
    /// must contain a statement the lexer also rejects.
    #[test]
    fn splitter_agrees_with_lexer_on_literals() {
        let good = [
            "RETRIEVE POSITION OF OBJECT 'a;b' AT TIME 1; x",
            "'a' ; 'b;c' ; 'd'",
            "no quotes at all; still fine",
        ];
        for script in good {
            for stmt in split_statements(script).unwrap() {
                if let Err(e) = crate::lex(stmt) {
                    assert!(
                        !e.message.contains("unterminated"),
                        "splitter emitted {stmt:?} which the lexer sees as unterminated"
                    );
                }
            }
        }
        let bad = ["'open", "a; 'b;c", "quote at 'the;very;end"];
        for script in bad {
            let err = split_statements(script).unwrap_err();
            // The tail from the reported quote must be exactly what the
            // lexer rejects as unterminated.
            let lex_err = crate::lex(&script[err.offset..]).unwrap_err();
            assert!(lex_err.message.contains("unterminated string literal"));
        }
    }

    #[test]
    fn run_batch_gives_per_statement_verdicts() {
        use modb_geom::Point;
        use modb_routes::{Route, RouteId, RouteNetwork};
        let network = RouteNetwork::from_routes([Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
        )
        .unwrap()])
        .unwrap();
        let db = Database::new(network, modb_core::DatabaseConfig::default());
        let results = run_batch(
            &db,
            "RETRIEVE OBJECTS INSIDE RECT (0, 0, 10, 10) AT TIME 5; nonsense;",
        );
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(QueryError::Parse(_))));
    }

    #[test]
    fn run_batch_surfaces_unterminated_literal_as_one_parse_error() {
        use modb_geom::Point;
        use modb_routes::{Route, RouteId, RouteNetwork};
        let network = RouteNetwork::from_routes([Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
        )
        .unwrap()])
        .unwrap();
        let db = Database::new(network, modb_core::DatabaseConfig::default());
        let results = run_batch(&db, "RETRIEVE POSITION OF OBJECT 'oops AT TIME 1; next");
        assert_eq!(results.len(), 1);
        assert!(matches!(&results[0], Err(QueryError::Parse(_))));
    }
}
