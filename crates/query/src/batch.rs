//! Multi-statement scripts: `;`-separated batches of queries.
//!
//! The language itself is single-statement; a REPL line or script file
//! holds several statements separated by `;`. [`split_statements`] does
//! the split (respecting single-quoted object names, where a `;` is
//! literal text), and [`run_batch`] executes every statement in order
//! against one database view, returning a per-statement verdict.
//!
//! `modb-server`'s query engine uses the same split to fan a batch
//! across its worker pool against one epoch snapshot.

use modb_core::Database;

use crate::exec::QueryResult;
use crate::QueryError;

/// Splits a script on `;` separators that sit outside single-quoted
/// string literals. Statements are trimmed; empty statements (leading,
/// trailing, or doubled separators) are dropped.
pub fn split_statements(src: &str) -> Vec<&str> {
    let mut statements = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in src.char_indices() {
        match c {
            '\'' => in_string = !in_string,
            ';' if !in_string => {
                let stmt = src[start..i].trim();
                if !stmt.is_empty() {
                    statements.push(stmt);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = src[start..].trim();
    if !tail.is_empty() {
        statements.push(tail);
    }
    statements
}

/// Parses and executes every statement of a `;`-separated script against
/// `db`, in order. Each statement gets its own verdict — one bad
/// statement does not abort the rest.
pub fn run_batch(db: &Database, src: &str) -> Vec<Result<QueryResult, QueryError>> {
    split_statements(src)
        .into_iter()
        .map(|stmt| crate::run(db, stmt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_semicolons_dropping_empties() {
        assert_eq!(
            split_statements("a; b ;;\n c ;"),
            vec!["a", "b", "c"]
        );
        assert_eq!(split_statements(""), Vec::<&str>::new());
        assert_eq!(split_statements(" ;; "), Vec::<&str>::new());
        assert_eq!(split_statements("single"), vec!["single"]);
    }

    #[test]
    fn semicolon_inside_string_literal_is_text() {
        assert_eq!(
            split_statements("RETRIEVE POSITION OF OBJECT 'a;b' AT TIME 1; next"),
            vec!["RETRIEVE POSITION OF OBJECT 'a;b' AT TIME 1", "next"]
        );
    }

    #[test]
    fn run_batch_gives_per_statement_verdicts() {
        use modb_geom::Point;
        use modb_routes::{Route, RouteId, RouteNetwork};
        let network = RouteNetwork::from_routes([Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
        )
        .unwrap()])
        .unwrap();
        let db = Database::new(network, modb_core::DatabaseConfig::default());
        let results = run_batch(
            &db,
            "RETRIEVE OBJECTS INSIDE RECT (0, 0, 10, 10) AT TIME 5; nonsense;",
        );
        assert_eq!(results.len(), 2);
        assert!(results[0].is_ok());
        assert!(matches!(results[1], Err(QueryError::Parse(_))));
    }
}
