//! The query AST.

use modb_core::ObjectId;
use modb_geom::Point;

/// When a query is evaluated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeSpec {
    /// A single instant (`AT TIME t`). `t` may be now or the future.
    At(f64),
    /// A closed interval (`DURING t0 TO t1`).
    During(f64, f64),
}

impl TimeSpec {
    /// The earliest time of the spec.
    pub fn start(&self) -> f64 {
        match *self {
            TimeSpec::At(t) => t,
            TimeSpec::During(t0, _) => t0,
        }
    }
}

/// A spatial region.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionSpec {
    /// An explicit polygon (`INSIDE POLYGON ((x, y), …)`).
    Polygon(Vec<Point>),
    /// An axis-aligned rectangle (`INSIDE RECT (x0, y0, x1, y1)`).
    Rect {
        /// One corner.
        min: Point,
        /// The opposite corner.
        max: Point,
    },
}

/// How an object is referenced in a query: by numeric id or by name.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectRef {
    /// `OBJECT 7`
    Id(ObjectId),
    /// `OBJECT 'ABT312'`
    Name(String),
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `RETRIEVE POSITION OF OBJECT <ref> AT TIME t` — the §3 position
    /// query with its deviation bound.
    Position {
        /// The object queried.
        object: ObjectRef,
        /// Query time.
        at: f64,
    },
    /// `RETRIEVE OBJECTS INSIDE <region> <time>` — the §4 range query
    /// with may/must semantics.
    Range {
        /// The query region G.
        region: RegionSpec,
        /// Instant or interval.
        time: TimeSpec,
    },
    /// `RETRIEVE OBJECTS WITHIN r OF POINT (x, y) AT TIME t` — the taxi
    /// query of §1.
    WithinPoint {
        /// Disc center.
        center: Point,
        /// Radius in miles.
        radius: f64,
        /// Query time.
        at: f64,
    },
    /// `RETRIEVE k NEAREST OBJECTS TO POINT (x, y) AT TIME t` — the
    /// dispatch extension: k-nearest with certain/possible ranking.
    Nearest {
        /// How many neighbours.
        k: usize,
        /// The query point.
        center: Point,
        /// Query time.
        at: f64,
    },
    /// `RETRIEVE OBJECTS WITHIN r OF OBJECT <ref> AT TIME t` — the
    /// trucking query of §1.
    WithinObject {
        /// The anchor moving object.
        object: ObjectRef,
        /// Radius in miles.
        radius: f64,
        /// Query time.
        at: f64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_spec_start() {
        assert_eq!(TimeSpec::At(5.0).start(), 5.0);
        assert_eq!(TimeSpec::During(2.0, 9.0).start(), 2.0);
    }

    #[test]
    fn ast_equality() {
        let a = Query::WithinPoint {
            center: Point::new(1.0, 2.0),
            radius: 1.0,
            at: 0.0,
        };
        assert_eq!(a.clone(), a);
        assert_ne!(ObjectRef::Id(ObjectId(1)), ObjectRef::Name("1".into()));
    }
}
