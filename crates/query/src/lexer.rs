//! Tokenizer for the query language.

use std::fmt;

/// A token with its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset where the token starts.
    pub offset: usize,
}

/// The token kinds of the query language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword or identifier (normalised to uppercase).
    Word(String),
    /// A numeric literal.
    Number(f64),
    /// A quoted string literal (object names).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Word(w) => write!(f, "{w}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
        }
    }
}

/// Lexing failure: an unexpected character or malformed literal.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes a query string. Keywords are case-insensitive; numbers may
/// be negative and fractional; strings are single-quoted.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    offset: i,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    offset: i,
                });
                i += 1;
            }
            ',' => {
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    offset: i,
                });
                i += 1;
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            offset: start,
                            message: "unterminated string literal".into(),
                        });
                    }
                    let ch = bytes[i] as char;
                    i += 1;
                    if ch == '\'' {
                        break;
                    }
                    s.push(ch);
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            '-' | '0'..='9' | '.' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E' | '+' | '-')
                {
                    // Stop a trailing +/- that is not part of an exponent.
                    let ch = bytes[i] as char;
                    if (ch == '+' || ch == '-') && !matches!(bytes[i - 1] as char, 'e' | 'E') {
                        break;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let n: f64 = text.parse().map_err(|_| LexError {
                    offset: start,
                    message: format!("malformed number `{text}`"),
                })?;
                tokens.push(Token {
                    kind: TokenKind::Number(n),
                    offset: start,
                });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '-')
                {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Word(src[start..i].to_uppercase()),
                    offset: start,
                });
            }
            other => {
                return Err(LexError {
                    offset: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_are_uppercased() {
        assert_eq!(
            kinds("retrieve Objects WITHIN"),
            vec![
                TokenKind::Word("RETRIEVE".into()),
                TokenKind::Word("OBJECTS".into()),
                TokenKind::Word("WITHIN".into()),
            ]
        );
    }

    #[test]
    fn numbers_including_negative_and_fraction() {
        assert_eq!(
            kinds("1 -2.5 0.75 1e3"),
            vec![
                TokenKind::Number(1.0),
                TokenKind::Number(-2.5),
                TokenKind::Number(0.75),
                TokenKind::Number(1000.0),
            ]
        );
    }

    #[test]
    fn punctuation_and_points() {
        assert_eq!(
            kinds("(1, 2)"),
            vec![
                TokenKind::LParen,
                TokenKind::Number(1.0),
                TokenKind::Comma,
                TokenKind::Number(2.0),
                TokenKind::RParen,
            ]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(kinds("'ABT312'"), vec![TokenKind::Str("ABT312".into())]);
        assert!(lex("'unterminated").is_err());
    }

    #[test]
    fn errors_carry_offsets() {
        let e = lex("RETRIEVE @").unwrap_err();
        assert_eq!(e.offset, 9);
        assert!(e.to_string().contains("byte 9"));
    }

    #[test]
    fn negative_number_vs_minus_in_word() {
        // Hyphenated identifiers stay one word.
        assert_eq!(
            kinds("fixed-threshold"),
            vec![TokenKind::Word("FIXED-THRESHOLD".into())]
        );
    }
}
