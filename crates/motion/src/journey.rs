//! Multi-leg journeys: trips that change routes.
//!
//! §3.1: "If during the trip the object changes its route, then it sends a
//! position update message that includes the identification of the new
//! route. … the route distance between two points on different routes
//! [is] infinite, [so] this will trigger a position update whenever the
//! object changes routes." A [`Journey`] is a sequence of [`Trip`] legs on
//! (possibly) different routes; the leg boundaries are exactly the
//! route-change update points.

use modb_routes::RouteId;

use crate::error::MotionError;
use crate::trip::Trip;

/// A sequence of trips executed back to back.
#[derive(Debug, Clone, PartialEq)]
pub struct Journey {
    legs: Vec<Trip>,
}

impl Journey {
    /// Builds a journey from consecutive legs.
    ///
    /// # Errors
    ///
    /// [`MotionError::EmptyCurve`] for no legs;
    /// [`MotionError::InvalidTripParameter`] when a leg does not start
    /// when its predecessor ends (within 1e-9 minutes).
    pub fn new(legs: Vec<Trip>) -> Result<Self, MotionError> {
        if legs.is_empty() {
            return Err(MotionError::EmptyCurve);
        }
        for pair in legs.windows(2) {
            if (pair[1].start_time() - pair[0].end_time()).abs() > 1e-9 {
                return Err(MotionError::InvalidTripParameter("leg start_time"));
            }
        }
        Ok(Journey { legs })
    }

    /// The legs, in order.
    pub fn legs(&self) -> &[Trip] {
        &self.legs
    }

    /// Journey start time.
    pub fn start_time(&self) -> f64 {
        self.legs[0].start_time()
    }

    /// Journey end time.
    pub fn end_time(&self) -> f64 {
        self.legs.last().expect("non-empty").end_time()
    }

    /// The leg active at absolute time `t` (the first leg before the
    /// journey, the last after it).
    pub fn leg_at(&self, t: f64) -> &Trip {
        self.legs
            .iter()
            .find(|leg| t < leg.end_time())
            .unwrap_or_else(|| self.legs.last().expect("non-empty"))
    }

    /// The route in use at absolute time `t`.
    pub fn route_at(&self, t: f64) -> RouteId {
        self.leg_at(t).route()
    }

    /// The absolute times at which the object changes routes — the §3.1
    /// forced-update instants (leg boundaries where the route differs).
    pub fn route_change_times(&self) -> Vec<f64> {
        self.legs
            .windows(2)
            .filter(|pair| pair[0].route() != pair[1].route())
            .map(|pair| pair[1].start_time())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed_curve::SpeedCurve;
    use modb_routes::Direction;

    fn leg(route: u64, start_arc: f64, start_time: f64, minutes: usize) -> Trip {
        Trip::new(
            RouteId(route),
            Direction::Forward,
            start_arc,
            start_time,
            SpeedCurve::constant(1.0, minutes, 1.0).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_continuity() {
        assert!(matches!(Journey::new(vec![]), Err(MotionError::EmptyCurve)));
        // Gap between legs.
        assert!(Journey::new(vec![leg(1, 0.0, 0.0, 5), leg(2, 0.0, 6.0, 5)]).is_err());
        // Contiguous legs are fine.
        let j = Journey::new(vec![leg(1, 0.0, 0.0, 5), leg(2, 0.0, 5.0, 5)]).unwrap();
        assert_eq!(j.legs().len(), 2);
        assert_eq!(j.start_time(), 0.0);
        assert_eq!(j.end_time(), 10.0);
    }

    #[test]
    fn leg_and_route_lookup() {
        let j = Journey::new(vec![
            leg(1, 0.0, 0.0, 5),
            leg(2, 3.0, 5.0, 5),
            leg(2, 8.0, 10.0, 5),
        ])
        .unwrap();
        assert_eq!(j.route_at(2.0), RouteId(1));
        assert_eq!(j.route_at(5.0), RouteId(2));
        assert_eq!(j.route_at(7.0), RouteId(2));
        assert_eq!(j.route_at(100.0), RouteId(2)); // after the end
        assert_eq!(j.route_at(-1.0), RouteId(1)); // before the start
    }

    #[test]
    fn route_change_times_only_at_actual_changes() {
        let j = Journey::new(vec![
            leg(1, 0.0, 0.0, 5),
            leg(2, 3.0, 5.0, 5),
            leg(2, 8.0, 10.0, 5), // same route: no change
            leg(3, 0.0, 15.0, 5),
        ])
        .unwrap();
        assert_eq!(j.route_change_times(), vec![5.0, 15.0]);
    }
}
