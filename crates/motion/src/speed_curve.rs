//! Speed curves: the actual speed of a moving object as a function of time.
//!
//! The paper's simulation (§3.4) represents each trip by a *speed-curve* —
//! "the actual-speed of a moving object as a function of time". A
//! [`SpeedCurve`] is that function, sampled at a fixed tick and interpreted
//! as piecewise-constant, with a precomputed distance integral so playback
//! and deviation computation are O(1) per query.

use crate::error::MotionError;

/// A piecewise-constant speed function of time.
///
/// Sample `i` is the speed (miles/minute) held throughout
/// `[i·dt, (i+1)·dt)`. The curve's domain is `[0, duration]`; queries
/// outside the domain clamp (speed 0 after the trip ends).
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedCurve {
    samples: Vec<f64>,
    dt: f64,
    /// `prefix[i]` = distance travelled in `[0, i·dt)`; len = samples + 1.
    prefix: Vec<f64>,
}

impl SpeedCurve {
    /// Builds a curve from speed samples at tick `dt` minutes.
    ///
    /// # Errors
    ///
    /// - [`MotionError::EmptyCurve`] for no samples.
    /// - [`MotionError::InvalidTick`] for `dt ≤ 0` or non-finite.
    /// - [`MotionError::InvalidSpeed`] for negative/non-finite samples.
    pub fn new(samples: Vec<f64>, dt: f64) -> Result<Self, MotionError> {
        if samples.is_empty() {
            return Err(MotionError::EmptyCurve);
        }
        if dt <= 0.0 || !dt.is_finite() {
            return Err(MotionError::InvalidTick(dt));
        }
        if let Some((index, &value)) = samples
            .iter()
            .enumerate()
            .find(|(_, &v)| !v.is_finite() || v < 0.0)
        {
            return Err(MotionError::InvalidSpeed { index, value });
        }
        let mut prefix = Vec::with_capacity(samples.len() + 1);
        prefix.push(0.0);
        for &v in &samples {
            prefix.push(prefix.last().unwrap() + v * dt);
        }
        Ok(SpeedCurve {
            samples,
            dt,
            prefix,
        })
    }

    /// A constant-speed curve of `n` ticks.
    pub fn constant(speed: f64, n: usize, dt: f64) -> Result<Self, MotionError> {
        SpeedCurve::new(vec![speed; n], dt)
    }

    /// The sampling tick (minutes).
    #[inline]
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// The speed samples.
    #[inline]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Trip duration (minutes).
    #[inline]
    pub fn duration(&self) -> f64 {
        self.samples.len() as f64 * self.dt
    }

    /// Speed at time `t` (clamped: 0 before the start is meaningless, so
    /// `t < 0` reads the first sample's interval boundary as 0; after the
    /// end the object has stopped).
    pub fn speed_at(&self, t: f64) -> f64 {
        if t < 0.0 || t >= self.duration() {
            return 0.0;
        }
        let i = ((t / self.dt) as usize).min(self.samples.len() - 1);
        self.samples[i]
    }

    /// Maximum speed over the whole trip — the paper's `V` (§3.3), used in
    /// the fast-deviation bounds.
    pub fn max_speed(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Distance travelled in `[0, t]`, with `t` clamped to the domain.
    ///
    /// O(1): prefix-sum lookup plus the fractional tick.
    pub fn distance_until(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let t = t.min(self.duration());
        let i = ((t / self.dt) as usize).min(self.samples.len() - 1);
        let whole = self.prefix[i];
        let frac = t - i as f64 * self.dt;
        whole + self.samples[i] * frac
    }

    /// Distance travelled in `[t0, t1]` (clamped; `t0 ≤ t1` expected —
    /// inverted intervals yield a negative distance by antisymmetry).
    #[inline]
    pub fn distance_between(&self, t0: f64, t1: f64) -> f64 {
        self.distance_until(t1) - self.distance_until(t0)
    }

    /// Average speed over `[t0, t1]`; 0 for an empty interval.
    pub fn average_speed(&self, t0: f64, t1: f64) -> f64 {
        let span = t1 - t0;
        if span <= 0.0 {
            return 0.0;
        }
        self.distance_between(t0, t1) / span
    }

    /// Total trip distance.
    #[inline]
    pub fn total_distance(&self) -> f64 {
        *self.prefix.last().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> SpeedCurve {
        // 1 mi/min for 2 min, then 0 for 1 min, then 2 for 1 min; dt = 1.
        SpeedCurve::new(vec![1.0, 1.0, 0.0, 2.0], 1.0).unwrap()
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            SpeedCurve::new(vec![], 1.0),
            Err(MotionError::EmptyCurve)
        ));
        assert!(matches!(
            SpeedCurve::new(vec![1.0], 0.0),
            Err(MotionError::InvalidTick(_))
        ));
        assert!(matches!(
            SpeedCurve::new(vec![1.0, -0.5], 1.0),
            Err(MotionError::InvalidSpeed { index: 1, .. })
        ));
        assert!(matches!(
            SpeedCurve::new(vec![f64::NAN], 1.0),
            Err(MotionError::InvalidSpeed { index: 0, .. })
        ));
    }

    #[test]
    fn duration_and_speed_lookup() {
        let c = ramp();
        assert_eq!(c.duration(), 4.0);
        assert_eq!(c.speed_at(0.0), 1.0);
        assert_eq!(c.speed_at(1.5), 1.0);
        assert_eq!(c.speed_at(2.5), 0.0);
        assert_eq!(c.speed_at(3.0), 2.0);
        // Outside the domain the object is stopped.
        assert_eq!(c.speed_at(-1.0), 0.0);
        assert_eq!(c.speed_at(4.0), 0.0);
        assert_eq!(c.speed_at(100.0), 0.0);
    }

    #[test]
    fn distance_integral() {
        let c = ramp();
        assert_eq!(c.distance_until(0.0), 0.0);
        assert_eq!(c.distance_until(1.0), 1.0);
        assert_eq!(c.distance_until(1.5), 1.5);
        assert_eq!(c.distance_until(2.5), 2.0); // stopped during [2,3)
        assert_eq!(c.distance_until(3.5), 3.0);
        assert_eq!(c.distance_until(4.0), 4.0);
        assert_eq!(c.distance_until(99.0), 4.0); // clamped
        assert_eq!(c.total_distance(), 4.0);
    }

    #[test]
    fn distance_between_and_average_speed() {
        let c = ramp();
        assert_eq!(c.distance_between(1.0, 3.0), 1.0);
        assert_eq!(c.average_speed(1.0, 3.0), 0.5);
        // Zero and negative spans never divide: the average is 0, not
        // NaN/inf (the zero-Δt guard a same-instant update relies on).
        assert_eq!(c.average_speed(2.0, 2.0), 0.0);
        assert_eq!(c.average_speed(3.0, 1.0), 0.0);
        // Antisymmetry for inverted intervals.
        assert_eq!(c.distance_between(3.0, 1.0), -1.0);
    }

    #[test]
    fn max_speed_is_v() {
        assert_eq!(ramp().max_speed(), 2.0);
        assert_eq!(SpeedCurve::constant(0.0, 3, 1.0).unwrap().max_speed(), 0.0);
    }

    #[test]
    fn constant_curve() {
        let c = SpeedCurve::constant(1.5, 60, 1.0 / 60.0).unwrap();
        assert!((c.duration() - 1.0).abs() < 1e-12);
        assert!((c.total_distance() - 1.5).abs() < 1e-12);
        assert_eq!(c.speed_at(0.5), 1.5);
    }

    #[test]
    fn fractional_tick_interpolation() {
        let c = SpeedCurve::new(vec![1.0, 3.0], 0.5).unwrap();
        // At t = 0.75 we are 0.25 into the second tick.
        assert!((c.distance_until(0.75) - (0.5 + 3.0 * 0.25)).abs() < 1e-12);
    }
}
