//! Speed-curve generators for the paper's simulation regimes.
//!
//! §3.1 distinguishes "highway driving in non-rush hour (when the speed
//! fluctuates only mildly)" from "city driving, where the speed fluctuates
//! sharply", and Example 1 features a traffic-jam stop. Each regime here is
//! a seeded generator producing a [`SpeedCurve`]; `Mixed` splices regimes to
//! model a realistic one-hour trip.

use rand::Rng;

use crate::gauss::normal;
use crate::speed_curve::SpeedCurve;
use crate::MotionError;

/// Miles/minute for 60 mph — the paper's canonical highway speed.
pub const HIGHWAY_SPEED: f64 = 1.0;
/// Miles/minute for 30 mph city cruising.
pub const CITY_SPEED: f64 = 0.5;
/// Crawling speed inside a jam.
pub const JAM_SPEED: f64 = 0.08;

/// A driving regime that generates speed curves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripProfile {
    /// Mild mean-reverting fluctuation around 60 mph.
    Highway,
    /// Stop-and-go: cruise segments at ~30 mph separated by red-light stops.
    City,
    /// Traffic jam: long stops with occasional crawling.
    Jam,
    /// Random splice of the other regimes — the default trip mix.
    Mixed,
}

impl TripProfile {
    /// All profiles, for sweeping experiments.
    pub const ALL: [TripProfile; 4] = [
        TripProfile::Highway,
        TripProfile::City,
        TripProfile::Jam,
        TripProfile::Mixed,
    ];

    /// Generates a speed curve of `duration` minutes sampled every `dt`
    /// minutes.
    ///
    /// # Errors
    ///
    /// [`MotionError::InvalidTick`] for a bad `dt`, [`MotionError::EmptyCurve`]
    /// when `duration < dt`.
    pub fn generate<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        duration: f64,
        dt: f64,
    ) -> Result<SpeedCurve, MotionError> {
        if dt <= 0.0 || !dt.is_finite() {
            return Err(MotionError::InvalidTick(dt));
        }
        let n = (duration / dt).floor() as usize;
        let samples = match self {
            TripProfile::Highway => highway_samples(rng, n, dt),
            TripProfile::City => city_samples(rng, n, dt),
            TripProfile::Jam => jam_samples(rng, n, dt),
            TripProfile::Mixed => mixed_samples(rng, n, dt),
        };
        SpeedCurve::new(samples, dt)
    }
}

/// Ornstein–Uhlenbeck-style mean-reverting fluctuation around `mu`,
/// clamped to `[0, cap]`.
fn ou_step<R: Rng + ?Sized>(
    rng: &mut R,
    v: f64,
    mu: f64,
    theta: f64,
    sigma: f64,
    dt: f64,
    cap: f64,
) -> f64 {
    let drift = theta * (mu - v) * dt;
    let shock = normal(rng, 0.0, sigma * dt.sqrt());
    (v + drift + shock).clamp(0.0, cap)
}

fn highway_samples<R: Rng + ?Sized>(rng: &mut R, n: usize, dt: f64) -> Vec<f64> {
    let mut v = HIGHWAY_SPEED;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        // Mild fluctuation: sd of a few mph, strong mean reversion.
        v = ou_step(rng, v, HIGHWAY_SPEED, 2.0, 0.08, dt, 1.5 * HIGHWAY_SPEED);
        out.push(v);
    }
    out
}

fn city_samples<R: Rng + ?Sized>(rng: &mut R, n: usize, dt: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut v = CITY_SPEED;
    // Alternate cruise (0.5–1.5 min) and stop (0.2–1 min) phases.
    let mut phase_cruise = true;
    let mut remaining = rng.gen_range(0.5..1.5);
    for _ in 0..n {
        if remaining <= 0.0 {
            phase_cruise = !phase_cruise;
            remaining = if phase_cruise {
                rng.gen_range(0.5..1.5)
            } else {
                rng.gen_range(0.2..1.0)
            };
        }
        if phase_cruise {
            v = ou_step(rng, v, CITY_SPEED, 3.0, 0.15, dt, 1.2 * CITY_SPEED + 0.2);
        } else {
            // Decelerate sharply to a stop.
            v = (v - 1.5 * dt.max(v * 0.5)).max(0.0);
        }
        out.push(v);
        remaining -= dt;
    }
    out
}

fn jam_samples<R: Rng + ?Sized>(rng: &mut R, n: usize, dt: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    let mut stopped = true;
    let mut remaining = rng.gen_range(1.0..4.0);
    let mut v: f64 = 0.0;
    for _ in 0..n {
        if remaining <= 0.0 {
            stopped = !stopped;
            remaining = if stopped {
                rng.gen_range(1.0..4.0)
            } else {
                rng.gen_range(0.3..1.5)
            };
        }
        v = if stopped {
            0.0
        } else {
            ou_step(rng, v.max(0.02), JAM_SPEED, 4.0, 0.05, dt, 3.0 * JAM_SPEED)
        };
        out.push(v);
        remaining -= dt;
    }
    out
}

fn mixed_samples<R: Rng + ?Sized>(rng: &mut R, n: usize, dt: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let seg_minutes = rng.gen_range(5.0..15.0);
        let seg_n = ((seg_minutes / dt) as usize).max(1).min(n - out.len());
        let regime = match rng.gen_range(0..3) {
            0 => TripProfile::Highway,
            1 => TripProfile::City,
            _ => TripProfile::Jam,
        };
        let seg = match regime {
            TripProfile::Highway => highway_samples(rng, seg_n, dt),
            TripProfile::City => city_samples(rng, seg_n, dt),
            TripProfile::Jam => jam_samples(rng, seg_n, dt),
            TripProfile::Mixed => unreachable!("mixed never recurses"),
        };
        out.extend(seg);
    }
    out.truncate(n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen(profile: TripProfile, seed: u64) -> SpeedCurve {
        let mut rng = StdRng::seed_from_u64(seed);
        profile.generate(&mut rng, 60.0, 1.0 / 60.0).unwrap()
    }

    #[test]
    fn all_profiles_produce_valid_hour_curves() {
        for p in TripProfile::ALL {
            let c = gen(p, 1);
            assert!((c.duration() - 60.0).abs() < 1e-9, "{p:?}");
            assert_eq!(c.samples().len(), 3600);
            assert!(
                c.samples().iter().all(|&v| (0.0..=2.0).contains(&v)),
                "{p:?}"
            );
        }
    }

    #[test]
    fn highway_speed_is_mild_around_60mph() {
        let c = gen(TripProfile::Highway, 2);
        let mean = c.total_distance() / c.duration();
        assert!((mean - HIGHWAY_SPEED).abs() < 0.15, "mean speed {mean}");
        // Mild fluctuation: never drops to a complete stop.
        assert!(
            c.samples().iter().all(|&v| v > 0.3),
            "highway should not stop"
        );
    }

    #[test]
    fn city_has_stops_and_cruises() {
        let c = gen(TripProfile::City, 3);
        let stopped = c.samples().iter().filter(|&&v| v < 0.01).count();
        let cruising = c.samples().iter().filter(|&&v| v > 0.3).count();
        assert!(
            stopped > 100,
            "city trip should include stops, got {stopped}"
        );
        assert!(
            cruising > 500,
            "city trip should include cruising, got {cruising}"
        );
    }

    #[test]
    fn jam_is_mostly_stopped() {
        let c = gen(TripProfile::Jam, 4);
        let stopped = c.samples().iter().filter(|&&v| v < 0.01).count();
        assert!(
            stopped as f64 > 0.4 * c.samples().len() as f64,
            "jam should be stopped much of the time, got {stopped}/3600"
        );
        assert!(c.max_speed() < 0.5, "jam speeds stay low");
    }

    #[test]
    fn mixed_splices_regimes() {
        let c = gen(TripProfile::Mixed, 5);
        // A mixed trip should show both fast (highway) and stopped samples.
        assert!(c.max_speed() > 0.7);
        assert!(c.samples().iter().any(|&v| v < 0.01));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(gen(TripProfile::Mixed, 42), gen(TripProfile::Mixed, 42));
        assert_ne!(gen(TripProfile::Mixed, 42), gen(TripProfile::Mixed, 43));
    }

    #[test]
    fn invalid_tick_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(TripProfile::Highway.generate(&mut rng, 60.0, 0.0).is_err());
        assert!(TripProfile::Highway
            .generate(&mut rng, 0.0001, 1.0)
            .is_err());
    }
}
