//! Trips: a speed curve bound to a route, giving actual position over time.
//!
//! A [`Trip`] is the ground truth of the simulation: where the moving
//! object *really* is at each instant. Update policies and the DBMS only
//! ever see what the onboard computer reports; deviations are measured
//! against the trip.

use modb_routes::{Direction, Route, RouteId};

use crate::error::MotionError;
use crate::speed_curve::SpeedCurve;

/// A moving object's actual journey: route, starting point, direction,
/// departure time, and the actual speed over time.
#[derive(Debug, Clone, PartialEq)]
pub struct Trip {
    route: RouteId,
    direction: Direction,
    start_arc: f64,
    start_time: f64,
    curve: SpeedCurve,
}

impl Trip {
    /// Creates a trip.
    ///
    /// # Errors
    ///
    /// [`MotionError::InvalidTripParameter`] when `start_arc` or
    /// `start_time` is negative or non-finite.
    pub fn new(
        route: RouteId,
        direction: Direction,
        start_arc: f64,
        start_time: f64,
        curve: SpeedCurve,
    ) -> Result<Self, MotionError> {
        if !start_arc.is_finite() || start_arc < 0.0 {
            return Err(MotionError::InvalidTripParameter("start_arc"));
        }
        if !start_time.is_finite() || start_time < 0.0 {
            return Err(MotionError::InvalidTripParameter("start_time"));
        }
        Ok(Trip {
            route,
            direction,
            start_arc,
            start_time,
            curve,
        })
    }

    /// The route travelled.
    #[inline]
    pub fn route(&self) -> RouteId {
        self.route
    }

    /// Travel direction along the route.
    #[inline]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Arc position at departure.
    #[inline]
    pub fn start_arc(&self) -> f64 {
        self.start_arc
    }

    /// Departure time (minutes).
    #[inline]
    pub fn start_time(&self) -> f64 {
        self.start_time
    }

    /// Time the trip's speed curve ends.
    #[inline]
    pub fn end_time(&self) -> f64 {
        self.start_time + self.curve.duration()
    }

    /// The actual speed curve.
    #[inline]
    pub fn curve(&self) -> &SpeedCurve {
        &self.curve
    }

    /// Actual speed at absolute time `t` (0 before departure/after arrival).
    #[inline]
    pub fn speed_at(&self, t: f64) -> f64 {
        self.curve.speed_at(t - self.start_time)
    }

    /// Maximum speed over the trip — the paper's `V`.
    #[inline]
    pub fn max_speed(&self) -> f64 {
        self.curve.max_speed()
    }

    /// Distance travelled from departure until absolute time `t`.
    #[inline]
    pub fn distance_travelled(&self, t: f64) -> f64 {
        self.curve.distance_until(t - self.start_time)
    }

    /// Actual arc position on `route` at absolute time `t` (clamped at the
    /// route's ends).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `route` is the trip's route; in release a wrong
    /// route still produces a clamped arc on that route, which is
    /// meaningless — callers resolve the route by [`Trip::route`].
    pub fn arc_at(&self, route: &Route, t: f64) -> f64 {
        debug_assert_eq!(route.id(), self.route, "trip played back on wrong route");
        route.advance(self.start_arc, self.distance_travelled(t), self.direction)
    }

    /// Actual (x, y) position at absolute time `t`.
    pub fn position_at(&self, route: &Route, t: f64) -> modb_geom::Point {
        route.point_at(self.arc_at(route, t))
    }

    /// Average actual speed between two absolute times.
    #[inline]
    pub fn average_speed(&self, t0: f64, t1: f64) -> f64 {
        self.curve
            .average_speed(t0 - self.start_time, t1 - self.start_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_geom::Point;
    use modb_routes::Route;

    fn route() -> Route {
        Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
        )
        .unwrap()
    }

    fn trip(direction: Direction, start_arc: f64) -> Trip {
        // 1 mi/min for 4 minutes, departing at t = 10.
        Trip::new(
            RouteId(1),
            direction,
            start_arc,
            10.0,
            SpeedCurve::constant(1.0, 4, 1.0).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn parameter_validation() {
        let c = SpeedCurve::constant(1.0, 1, 1.0).unwrap();
        assert!(Trip::new(RouteId(1), Direction::Forward, -1.0, 0.0, c.clone()).is_err());
        assert!(Trip::new(RouteId(1), Direction::Forward, 0.0, f64::NAN, c).is_err());
    }

    #[test]
    fn playback_forward() {
        let r = route();
        let t = trip(Direction::Forward, 2.0);
        assert_eq!(t.arc_at(&r, 10.0), 2.0); // departure
        assert_eq!(t.arc_at(&r, 12.0), 4.0);
        assert_eq!(t.arc_at(&r, 14.0), 6.0); // trip over
        assert_eq!(t.arc_at(&r, 30.0), 6.0); // stays put after end
        assert_eq!(t.arc_at(&r, 5.0), 2.0); // before departure
        assert_eq!(t.position_at(&r, 12.0), Point::new(4.0, 0.0));
    }

    #[test]
    fn playback_backward_clamps_at_route_start() {
        let r = route();
        let t = trip(Direction::Backward, 3.0);
        assert_eq!(t.arc_at(&r, 12.0), 1.0);
        assert_eq!(t.arc_at(&r, 14.0), 0.0); // clamped: 3 - 4 < 0
    }

    #[test]
    fn speeds_and_times() {
        let t = trip(Direction::Forward, 0.0);
        assert_eq!(t.speed_at(11.0), 1.0);
        assert_eq!(t.speed_at(9.0), 0.0);
        assert_eq!(t.speed_at(14.5), 0.0);
        assert_eq!(t.end_time(), 14.0);
        assert_eq!(t.max_speed(), 1.0);
        assert_eq!(t.average_speed(10.0, 14.0), 1.0);
        assert_eq!(t.distance_travelled(12.0), 2.0);
    }
}
