//! Positioning-noise models.
//!
//! The paper assumes "each vehicle knows its exact current position, using,
//! for example, an onboard GPS" (§1, footnote 1). [`GpsSampler`] optionally
//! relaxes that assumption with additive Gaussian error on the arc reading,
//! for the robustness ablation in the benchmark suite. The exact sampler
//! (`GpsSampler::exact()`) reproduces the paper's assumption and is the
//! default everywhere.

use rand::Rng;

use crate::gauss::normal;

/// A model of the onboard positioning device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpsSampler {
    /// Standard deviation of the position reading, in miles. `0` means the
    /// paper's exact-GPS assumption.
    sd: f64,
}

impl GpsSampler {
    /// Exact positioning — the paper's assumption.
    pub const fn exact() -> Self {
        GpsSampler { sd: 0.0 }
    }

    /// Gaussian positioning noise with the given standard deviation
    /// (miles). Negative or non-finite values are clamped to 0.
    pub fn noisy(sd: f64) -> Self {
        GpsSampler {
            sd: if sd.is_finite() && sd > 0.0 { sd } else { 0.0 },
        }
    }

    /// The noise standard deviation in miles.
    #[inline]
    pub fn sd(&self) -> f64 {
        self.sd
    }

    /// Returns `true` when this sampler adds no noise.
    #[inline]
    pub fn is_exact(&self) -> bool {
        self.sd == 0.0
    }

    /// Samples a measured arc position given the true arc. The result is
    /// clamped into `[0, route_len]` since a GPS fix map-matched to the
    /// route cannot leave it.
    pub fn sample_arc<R: Rng + ?Sized>(&self, rng: &mut R, true_arc: f64, route_len: f64) -> f64 {
        if self.sd == 0.0 {
            return true_arc;
        }
        normal(rng, true_arc, self.sd).clamp(0.0, route_len)
    }
}

impl Default for GpsSampler {
    fn default() -> Self {
        GpsSampler::exact()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_sampler_is_identity() {
        let s = GpsSampler::exact();
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.is_exact());
        assert_eq!(s.sample_arc(&mut rng, 3.25, 10.0), 3.25);
    }

    #[test]
    fn noisy_sampler_statistics() {
        let s = GpsSampler::noisy(0.1);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| s.sample_arc(&mut rng, 5.0, 10.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.005, "mean {mean}");
        assert!(samples.iter().any(|&x| x != 5.0));
    }

    #[test]
    fn noisy_sampler_clamps_to_route() {
        let s = GpsSampler::noisy(5.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = s.sample_arc(&mut rng, 0.5, 2.0);
            assert!((0.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn invalid_sd_collapses_to_exact() {
        assert!(GpsSampler::noisy(-1.0).is_exact());
        assert!(GpsSampler::noisy(f64::NAN).is_exact());
        assert!(GpsSampler::default().is_exact());
    }
}
