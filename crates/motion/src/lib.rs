//! # modb-motion — ground-truth motion for the simulation testbed
//!
//! The paper's evaluation (§3.4) runs update policies over "a set of
//! one-hour trips", each represented by a *speed-curve*. This crate builds
//! those trips:
//!
//! - [`SpeedCurve`]: actual speed as a function of time, with an O(1)
//!   distance integral.
//! - [`TripProfile`]: seeded generators for the paper's driving regimes —
//!   highway (mild fluctuation), city (sharp stop-and-go), jam, and mixed.
//! - [`Trip`]: a speed curve bound to a route — the simulation's ground
//!   truth position.
//! - [`GpsSampler`]: the paper's exact-GPS assumption, plus an optional
//!   noise model for ablations.
//!
//! Units follow the workspace convention: miles, minutes, miles/minute.

#![warn(missing_docs)]

mod error;
mod gauss;
mod journey;
mod profiles;
mod sampler;
mod speed_curve;
mod trip;

pub use error::MotionError;
pub use gauss::{normal, standard_normal};
pub use journey::Journey;
pub use profiles::{TripProfile, CITY_SPEED, HIGHWAY_SPEED, JAM_SPEED};
pub use sampler::GpsSampler;
pub use speed_curve::SpeedCurve;
pub use trip::Trip;
