//! Gaussian sampling via Box–Muller.
//!
//! The workspace's only random-number dependency is `rand` (see DESIGN.md);
//! normal deviates for speed-curve perturbation and GPS noise are derived
//! from uniforms here rather than pulling in `rand_distr`.

use rand::Rng;

/// Draws a standard-normal deviate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal deviate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(12345);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
