//! Errors for motion construction.

use std::fmt;

/// Errors raised when constructing speed curves or trips.
#[derive(Debug, Clone, PartialEq)]
pub enum MotionError {
    /// A speed curve needs at least one sample.
    EmptyCurve,
    /// The sampling tick must be positive and finite.
    InvalidTick(f64),
    /// Speeds must be finite and non-negative (objects move forward along
    /// their route; reversals are modelled as direction changes with a
    /// route update).
    InvalidSpeed {
        /// Index of the offending sample.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A trip parameter (start time, start arc) was NaN/∞ or negative.
    InvalidTripParameter(&'static str),
}

impl fmt::Display for MotionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MotionError::EmptyCurve => write!(f, "speed curve has no samples"),
            MotionError::InvalidTick(dt) => {
                write!(f, "sampling tick must be positive and finite, got {dt}")
            }
            MotionError::InvalidSpeed { index, value } => {
                write!(f, "speed sample {index} invalid: {value}")
            }
            MotionError::InvalidTripParameter(name) => {
                write!(f, "trip parameter `{name}` must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for MotionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(MotionError::EmptyCurve.to_string().contains("no samples"));
        assert!(MotionError::InvalidTick(0.0).to_string().contains("tick"));
        assert!(MotionError::InvalidSpeed {
            index: 3,
            value: -1.0
        }
        .to_string()
        .contains("sample 3"));
        assert!(MotionError::InvalidTripParameter("start_arc")
            .to_string()
            .contains("start_arc"));
    }
}
