//! Segment tailing for log shipping: an incremental reader that follows
//! the log as the writer grows it.
//!
//! A [`SegmentTailer`] holds a cursor (the LSN of the next record to
//! deliver) and, on each [`SegmentTailer::poll`], reads whatever whole
//! frames have appeared past it — including from the writer's **active
//! tail segment**. The subtlety the tailer owns is distinguishing "not
//! written yet" from "corrupt":
//!
//! - A torn frame at the end of the **last** segment is treated as data
//!   in flight (the writer's `write_all` may race our read), so the poll
//!   simply reports nothing new; the rest of the frame is picked up next
//!   time. This is the same judgement recovery makes about a torn tail,
//!   applied online.
//! - A torn frame in a segment that already has a **successor** can never
//!   complete, so it is reported as [`WalError::CorruptSegment`].
//! - A cursor below the oldest segment on disk means compaction got there
//!   first ([`WalError::SegmentGap`]); the consumer must re-bootstrap
//!   from a snapshot. Leaders prevent this for connected followers with
//!   the ship barrier ([`crate::compact_with_barrier`]).
//!
//! Reads are incremental: the tailer remembers its byte offset in the
//! current segment and only reads the suffix on each poll, so following
//! a hot log costs O(new bytes), not O(segment).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::error::WalError;
use crate::record::{WalRecord, MAX_RECORD_BYTES};
use crate::segment::{list_segments, scan_segment, SEGMENT_HEADER_BYTES};

/// A run of consecutive records delivered by one [`SegmentTailer::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct TailChunk {
    /// LSN of `records[0]`; the chunk covers
    /// `[start_lsn, start_lsn + records.len())`.
    pub start_lsn: u64,
    /// The decoded records, in log order.
    pub records: Vec<WalRecord>,
}

impl TailChunk {
    /// LSN one past the last record in the chunk.
    pub fn end_lsn(&self) -> u64 {
        self.start_lsn + self.records.len() as u64
    }
}

/// Byte position within the segment currently being tailed.
#[derive(Debug, Clone)]
struct Position {
    start_lsn: u64,
    path: PathBuf,
    /// Offset of the next unread frame (≥ the header length); everything
    /// before it has been validated and delivered.
    offset: u64,
}

/// An incremental, CRC-validating reader over a live log directory. See
/// the module docs for torn-tail semantics.
#[derive(Debug)]
pub struct SegmentTailer {
    dir: PathBuf,
    next_lsn: u64,
    pos: Option<Position>,
}

impl SegmentTailer {
    /// A tailer positioned at `start_lsn` in `dir`. Positioning is lazy:
    /// the directory is not touched until the first poll, so the cursor
    /// may point at log that does not exist yet.
    pub fn new(dir: impl Into<PathBuf>, start_lsn: u64) -> Self {
        SegmentTailer {
            dir: dir.into(),
            next_lsn: start_lsn,
            pos: None,
        }
    }

    /// The LSN of the next record a poll would deliver.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Reads up to `max_records` whole records at the cursor. `Ok(None)`
    /// means caught up: nothing new is on disk yet (including the
    /// in-flight-write case of a torn tail on the last segment).
    ///
    /// # Errors
    ///
    /// - [`WalError::SegmentGap`] when the cursor's segment no longer
    ///   exists (compacted away) — re-bootstrap from a snapshot.
    /// - [`WalError::CorruptSegment`] for a torn frame in a non-final
    ///   segment, or a cursor pointing past a finished segment's content.
    /// - I/O failures.
    pub fn poll(&mut self, max_records: usize) -> Result<Option<TailChunk>, WalError> {
        if max_records == 0 {
            return Ok(None);
        }
        // Two passes at most: one at the current position and, when it
        // ends exactly on a finished segment boundary, one on the
        // successor segment.
        for _ in 0..2 {
            if self.pos.is_none() && !self.locate()? {
                return Ok(None);
            }
            let pos = self.pos.as_ref().expect("located above");
            let (records, consumed, torn) = read_frames_from(&pos.path, pos.offset, max_records)?;
            if !records.is_empty() {
                let chunk = TailChunk {
                    start_lsn: self.next_lsn,
                    records,
                };
                let pos = self.pos.as_mut().expect("located above");
                pos.offset += consumed;
                self.next_lsn = chunk.end_lsn();
                return Ok(Some(chunk));
            }
            // Nothing whole at the cursor: either the segment is finished
            // and the log continues in a successor, or we are caught up.
            let segments = list_segments(&self.dir)?;
            let is_last = segments
                .last()
                .is_some_and(|&(start, _)| start == pos.start_lsn);
            if let Some(reason) = torn {
                if is_last {
                    return Ok(None); // write in flight; retry later
                }
                return Err(WalError::CorruptSegment {
                    path: pos.path.clone(),
                    offset: pos.offset,
                    reason,
                });
            }
            if segments
                .iter()
                .any(|&(start, _)| start == self.next_lsn && start > pos.start_lsn)
            {
                // The current segment ended exactly at the cursor and a
                // successor picks up there: switch and read it.
                self.pos = None;
                continue;
            }
            // Caught up — or our file read raced a rotation (the final
            // frames of this segment landed after the read but before
            // the listing). Either way the next poll re-reads the suffix
            // and makes progress, so report nothing new rather than
            // misdiagnose the race.
            return Ok(None);
        }
        Ok(None)
    }

    /// Finds the segment containing `next_lsn` and the byte offset of
    /// that record within it. Returns `false` when the log has not grown
    /// to the cursor yet.
    fn locate(&mut self) -> Result<bool, WalError> {
        let segments = list_segments(&self.dir)?;
        let Some(idx) = segments
            .iter()
            .rposition(|&(start, _)| start <= self.next_lsn)
        else {
            if let Some(&(found, _)) = segments.first() {
                // Everything on disk starts after the cursor: the log
                // below it has been compacted away.
                return Err(WalError::SegmentGap {
                    expected: self.next_lsn,
                    found,
                });
            }
            return Ok(false); // empty directory; the log may appear later
        };
        let (start_lsn, ref path) = segments[idx];
        let last = idx + 1 == segments.len();
        // One full validating scan to find the frame boundary of the
        // cursor record; from then on reads are incremental.
        let scan = match scan_segment(path) {
            Ok(scan) => scan,
            // A rotating writer creates the successor file before its
            // header write lands on disk; a short header on the *last*
            // segment is that write in flight, not corruption — wait,
            // exactly as for a torn tail frame. (A full-length header
            // with bad magic or version stays a hard error: the 20-byte
            // header is written in one call and never rewritten.)
            Err(WalError::CorruptSegment {
                reason: "short header",
                ..
            }) if last => return Ok(false),
            Err(e) => return Err(e),
        };
        let have = scan.records.len() as u64;
        let skip = self.next_lsn - start_lsn;
        if skip > have {
            // The cursor points past this segment's content.
            if last {
                if scan.torn.is_some() {
                    // The missing records may be mid-write; wait.
                    return Ok(false);
                }
                // A clean final segment that is short of the cursor: the
                // cursor is from a different timeline (e.g. a follower
                // ahead of a restored leader). Report it as a gap.
                return Err(WalError::SegmentGap {
                    expected: self.next_lsn,
                    found: start_lsn + have,
                });
            }
            return Err(WalError::CorruptSegment {
                path: path.clone(),
                offset: scan.clean_bytes,
                reason: scan.torn.unwrap_or("segment ends before successor"),
            });
        }
        let offset = SEGMENT_HEADER_BYTES + frame_bytes(path, skip)?;
        self.pos = Some(Position {
            start_lsn,
            path: path.clone(),
            offset,
        });
        Ok(true)
    }
}

/// Byte length of the first `n_frames` whole frames after the header of
/// `path`. The frames were already validated by the caller's scan, so
/// this only walks the length prefixes.
fn frame_bytes(path: &Path, n_frames: u64) -> Result<u64, WalError> {
    if n_frames == 0 {
        return Ok(0);
    }
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let body = &bytes[SEGMENT_HEADER_BYTES as usize..];
    let mut pos = 0usize;
    for _ in 0..n_frames {
        let len =
            u32::from_le_bytes([body[pos], body[pos + 1], body[pos + 2], body[pos + 3]]) as usize;
        pos += 8 + len;
    }
    Ok(pos as u64)
}

/// Reads up to `max_records` whole frames starting at `offset`, returning
/// the records, bytes consumed, and the torn reason when the suffix ends
/// mid-frame. Mirrors [`crate::decode_frames`] but stops at the record
/// cap so a long catch-up is delivered in bounded chunks.
fn read_frames_from(
    path: &Path,
    offset: u64,
    max_records: usize,
) -> Result<(Vec<WalRecord>, u64, Option<&'static str>), WalError> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;

    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() && records.len() < max_records {
        let rest = &buf[pos..];
        if rest.len() < 8 {
            return Ok((records, pos as u64, Some("truncated frame header")));
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len == 0 || len > MAX_RECORD_BYTES {
            return Ok((records, pos as u64, Some("implausible frame length")));
        }
        let len = len as usize;
        if rest.len() < 8 + len {
            return Ok((records, pos as u64, Some("truncated frame payload")));
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            return Ok((records, pos as u64, Some("crc mismatch")));
        }
        match WalRecord::decode_payload(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => return Ok((records, pos as u64, Some("undecodable payload"))),
        }
        pos += 8 + len;
    }
    Ok((records, pos as u64, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalRecord;
    use crate::writer::{FsyncPolicy, WalOptions, WalWriter};
    use modb_core::{ObjectId, UpdateMessage, UpdatePosition};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("modb-wal-ship-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn update(i: u64) -> WalRecord {
        WalRecord::Update {
            id: ObjectId(i % 7),
            msg: UpdateMessage::basic(i as f64, UpdatePosition::Arc(i as f64 * 0.5), 1.0),
        }
    }

    fn small() -> WalOptions {
        WalOptions {
            fsync: FsyncPolicy::Never,
            max_segment_bytes: 256,
        }
    }

    /// Drains the tailer completely; asserts chunk LSNs are contiguous.
    fn drain(tailer: &mut SegmentTailer, max: usize) -> Vec<WalRecord> {
        let mut out = Vec::new();
        while let Some(chunk) = tailer.poll(max).unwrap() {
            assert_eq!(
                chunk.start_lsn,
                tailer.next_lsn() - chunk.records.len() as u64
            );
            out.extend(chunk.records);
        }
        out
    }

    #[test]
    fn follows_appends_across_rotations() {
        let dir = tmp("follow");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        let mut tailer = SegmentTailer::new(&dir, 0);
        assert!(tailer.poll(64).unwrap().is_none(), "nothing yet");
        let mut shipped = Vec::new();
        for round in 0..6u64 {
            for i in 0..10u64 {
                w.append(&update(round * 10 + i)).unwrap();
            }
            shipped.extend(drain(&mut tailer, 7));
            assert_eq!(tailer.next_lsn(), (round + 1) * 10, "round {round}");
        }
        let expected: Vec<WalRecord> = (0..60).map(update).collect();
        assert_eq!(shipped, expected);
        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        assert!(tailer.poll(64).unwrap().is_none(), "caught up");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn starts_mid_log_and_mid_segment() {
        let dir = tmp("mid");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..40u64 {
            w.append(&update(i)).unwrap();
        }
        for start in [0u64, 1, 17, 39, 40] {
            let mut tailer = SegmentTailer::new(&dir, start);
            let got = drain(&mut tailer, 1000);
            let expected: Vec<WalRecord> = (start..40).map(update).collect();
            assert_eq!(got, expected, "start {start}");
            assert_eq!(tailer.next_lsn(), 40);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_of_last_segment_means_wait() {
        let dir = tmp("torn-wait");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..3u64 {
            w.append(&update(i)).unwrap();
        }
        // Simulate a write in flight: half a frame at the end.
        let (_, last) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&last).unwrap();
        let mut frame = Vec::new();
        update(3).encode_frame(&mut frame);
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&last, &bytes).unwrap();

        let mut tailer = SegmentTailer::new(&dir, 0);
        let chunk = tailer.poll(64).unwrap().unwrap();
        assert_eq!(chunk.records.len(), 3, "whole frames delivered");
        assert!(tailer.poll(64).unwrap().is_none(), "torn tail = wait");
        // The rest of the frame arrives: the record is delivered.
        bytes.extend_from_slice(&frame[frame.len() / 2..]);
        std::fs::write(&last, &bytes).unwrap();
        let chunk = tailer.poll(64).unwrap().unwrap();
        assert_eq!(chunk.start_lsn, 3);
        assert_eq!(chunk.records, vec![update(3)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression for a race found by the replication fault harness: a
    /// rotating writer creates the successor segment file before its
    /// header hits the disk. A tailer that lists-then-opens in that
    /// window must wait, not report corruption (which would kill a
    /// perfectly healthy replication session).
    #[test]
    fn half_written_successor_header_means_wait() {
        use crate::segment::{encode_header, segment_file_name};
        let dir = tmp("half-header");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..10u64 {
            w.append(&update(i)).unwrap();
        }
        w.sync().unwrap();
        let mut tailer = SegmentTailer::new(&dir, 0);
        assert_eq!(drain(&mut tailer, 64).len(), 10);

        // Mid-rotation: the successor exists with only part of its
        // header written.
        let header = encode_header(10);
        let successor = dir.join(segment_file_name(10));
        std::fs::write(&successor, &header[..7]).unwrap();
        assert!(
            tailer.poll(64).unwrap().is_none(),
            "header in flight = wait"
        );
        // An empty just-created file is the same case.
        std::fs::write(&successor, []).unwrap();
        assert!(tailer.poll(64).unwrap().is_none(), "empty successor = wait");

        // The rotation completes and records land: the tailer resumes.
        let mut bytes = header;
        for i in 10..13u64 {
            update(i).encode_frame(&mut bytes);
        }
        std::fs::write(&successor, &bytes).unwrap();
        let chunk = tailer.poll(64).unwrap().unwrap();
        assert_eq!(chunk.start_lsn, 10);
        assert_eq!(chunk.records, (10..13).map(update).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_interior_segment_is_corruption() {
        let dir = tmp("torn-interior");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..40u64 {
            w.append(&update(i)).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        let mid = &segments[segments.len() / 2].1;
        let mut bytes = std::fs::read(mid).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xff;
        std::fs::write(mid, &bytes).unwrap();
        let mut tailer = SegmentTailer::new(&dir, 0);
        let err = loop {
            match tailer.poll(4) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("interior corruption must not read as caught-up"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WalError::CorruptSegment { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacted_cursor_is_a_gap() {
        let dir = tmp("gap");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..40u64 {
            w.append(&update(i)).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        std::fs::remove_file(&segments[0].1).unwrap();
        let mut tailer = SegmentTailer::new(&dir, 0);
        assert!(matches!(
            tailer.poll(64),
            Err(WalError::SegmentGap { expected: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_past_the_log_waits_then_gaps() {
        let dir = tmp("future");
        // Empty directory: the log may simply not exist yet.
        std::fs::create_dir_all(&dir).unwrap();
        let mut tailer = SegmentTailer::new(&dir, 5);
        assert!(tailer.poll(64).unwrap().is_none());
        // A clean log shorter than the cursor is a different timeline.
        let mut w = WalWriter::create(&dir, small()).unwrap();
        w.append(&update(0)).unwrap();
        w.sync().unwrap();
        assert!(matches!(
            tailer.poll(64),
            Err(WalError::SegmentGap {
                expected: 5,
                found: 1
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_cap_bounds_delivery() {
        let dir = tmp("cap");
        let mut w = WalWriter::create(&dir, WalOptions::default()).unwrap();
        for i in 0..10u64 {
            w.append(&update(i)).unwrap();
        }
        let mut tailer = SegmentTailer::new(&dir, 0);
        let chunk = tailer.poll(4).unwrap().unwrap();
        assert_eq!(chunk.records.len(), 4);
        assert_eq!(chunk.end_lsn(), 4);
        assert!(tailer.poll(0).unwrap().is_none(), "zero cap reads nothing");
        let rest = drain(&mut tailer, 4);
        assert_eq!(rest.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
