//! Segment tailing for log shipping: an incremental reader that follows
//! the log as the writer grows it.
//!
//! A [`SegmentTailer`] holds a cursor (the LSN of the next record to
//! deliver) and, on each [`SegmentTailer::poll`], reads whatever whole
//! frames have appeared past it — including from the writer's **active
//! tail segment**. The subtlety the tailer owns is distinguishing "not
//! written yet" from "corrupt":
//!
//! - A torn frame at the end of the **last** segment is treated as data
//!   in flight (the writer's `write_all` may race our read), so the poll
//!   simply reports nothing new; the rest of the frame is picked up next
//!   time. This is the same judgement recovery makes about a torn tail,
//!   applied online.
//! - A torn frame in a segment that already has a **successor** can never
//!   complete, so it is reported as [`WalError::CorruptSegment`].
//! - A cursor below the oldest segment on disk means compaction got there
//!   first ([`WalError::SegmentGap`]); the consumer must re-bootstrap
//!   from a snapshot. Leaders prevent this for connected followers with
//!   the ship barrier ([`crate::compact_with_barrier`]).
//!
//! The tailer is format-aware: v1 segments carry one record per frame,
//! v2 segments one *block* per frame ([`crate::block`]). Two delivery
//! shapes exist:
//!
//! - [`SegmentTailer::poll`] decodes — a [`TailChunk`] of records,
//!   whatever the segment format. The local-apply path.
//! - [`SegmentTailer::poll_blocks`] ships the on-disk frame bytes
//!   **verbatim** as a [`RawChunk`], peeking only the per-frame record
//!   counts for LSN accounting. Compressed blocks cross the replication
//!   wire as-is and the follower decompresses on apply — the disk-format
//!   savings are the wire-format savings.
//!
//! Reads are incremental: the tailer remembers its byte offset in the
//! current segment and only reads the suffix on each poll, so following
//! a hot log costs O(new bytes), not O(segment).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

use crate::block::{decode_block, peek_block_count};
use crate::error::WalError;
use crate::record::{split_frame, WalRecord};
use crate::segment::{list_segments, scan_segment, SEGMENT_HEADER_BYTES, SEGMENT_VERSION_V2};

/// A run of consecutive records delivered by one [`SegmentTailer::poll`].
#[derive(Debug, Clone, PartialEq)]
pub struct TailChunk {
    /// LSN of `records[0]`; the chunk covers
    /// `[start_lsn, start_lsn + records.len())`.
    pub start_lsn: u64,
    /// The decoded records, in log order.
    pub records: Vec<WalRecord>,
}

impl TailChunk {
    /// LSN one past the last record in the chunk.
    pub fn end_lsn(&self) -> u64 {
        self.start_lsn + self.records.len() as u64
    }
}

/// A run of whole on-disk frames delivered by
/// [`SegmentTailer::poll_blocks`] — CRC-validated but not decoded, ready
/// to ship verbatim. A chunk never spans segments, so one format version
/// describes all its frames.
#[derive(Debug, Clone, PartialEq)]
pub struct RawChunk {
    /// LSN of the first record in the first frame.
    pub start_lsn: u64,
    /// Total records across the frames (peeked from block headers).
    pub records: u64,
    /// Segment format version the frames were written in
    /// ([`crate::SEGMENT_VERSION`] or [`crate::SEGMENT_VERSION_V2`]).
    pub segment_version: u32,
    /// The frame bytes exactly as stored (`len + crc + payload`, …).
    pub frames: Vec<u8>,
}

impl RawChunk {
    /// LSN one past the last record in the chunk.
    pub fn end_lsn(&self) -> u64 {
        self.start_lsn + self.records
    }
}

/// Byte position within the segment currently being tailed.
#[derive(Debug, Clone)]
struct Position {
    start_lsn: u64,
    path: PathBuf,
    /// The segment's format version, from its header.
    version: u32,
    /// Offset of the next unread frame (≥ the header length); everything
    /// before it has been validated and delivered.
    offset: u64,
}

/// An incremental, CRC-validating reader over a live log directory. See
/// the module docs for torn-tail semantics.
#[derive(Debug)]
pub struct SegmentTailer {
    dir: PathBuf,
    next_lsn: u64,
    pos: Option<Position>,
}

impl SegmentTailer {
    /// A tailer positioned at `start_lsn` in `dir`. Positioning is lazy:
    /// the directory is not touched until the first poll, so the cursor
    /// may point at log that does not exist yet.
    ///
    /// On a v2 segment the cursor may land *inside* a block; blocks are
    /// indivisible on the wire, so the tailer rewinds to the enclosing
    /// block boundary and re-delivers the block's earlier records —
    /// consumers already skip below their applied watermark.
    pub fn new(dir: impl Into<PathBuf>, start_lsn: u64) -> Self {
        SegmentTailer {
            dir: dir.into(),
            next_lsn: start_lsn,
            pos: None,
        }
    }

    /// The LSN of the next record a poll would deliver.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Reads and decodes up to `max_records` whole records at the cursor
    /// (a v2 block is decoded whole, so the cap can overshoot by one
    /// block). `Ok(None)` means caught up: nothing new is on disk yet
    /// (including the in-flight-write case of a torn tail on the last
    /// segment).
    ///
    /// # Errors
    ///
    /// - [`WalError::SegmentGap`] when the cursor's segment no longer
    ///   exists (compacted away) — re-bootstrap from a snapshot.
    /// - [`WalError::CorruptSegment`] for a torn frame in a non-final
    ///   segment, or a cursor pointing past a finished segment's content.
    /// - I/O failures.
    pub fn poll(&mut self, max_records: usize) -> Result<Option<TailChunk>, WalError> {
        if max_records == 0 {
            return Ok(None);
        }
        // Two passes at most: one at the current position and, when it
        // ends exactly on a finished segment boundary, one on the
        // successor segment.
        for _ in 0..2 {
            if self.pos.is_none() && !self.locate()? {
                return Ok(None);
            }
            let pos = self.pos.as_ref().expect("located above");
            let (records, consumed, torn) =
                read_frames_from(&pos.path, pos.version, pos.offset, max_records)?;
            if !records.is_empty() {
                let chunk = TailChunk {
                    start_lsn: self.next_lsn,
                    records,
                };
                let pos = self.pos.as_mut().expect("located above");
                pos.offset += consumed;
                self.next_lsn = chunk.end_lsn();
                return Ok(Some(chunk));
            }
            if !self.advance_past_empty(torn)? {
                return Ok(None);
            }
        }
        Ok(None)
    }

    /// Like [`SegmentTailer::poll`], but delivers the on-disk frame
    /// bytes verbatim (CRC-validated, record counts peeked, payloads
    /// *not* decoded) for shipping. Same torn-tail/gap semantics.
    ///
    /// # Errors
    ///
    /// As for [`SegmentTailer::poll`].
    pub fn poll_blocks(&mut self, max_records: usize) -> Result<Option<RawChunk>, WalError> {
        if max_records == 0 {
            return Ok(None);
        }
        for _ in 0..2 {
            if self.pos.is_none() && !self.locate()? {
                return Ok(None);
            }
            let pos = self.pos.as_ref().expect("located above");
            let raw = read_raw_frames_from(&pos.path, pos.version, pos.offset, max_records)?;
            if raw.records > 0 {
                let chunk = RawChunk {
                    start_lsn: self.next_lsn,
                    records: raw.records,
                    segment_version: pos.version,
                    frames: raw.frames,
                };
                let pos = self.pos.as_mut().expect("located above");
                pos.offset += raw.consumed;
                self.next_lsn = chunk.end_lsn();
                return Ok(Some(chunk));
            }
            if !self.advance_past_empty(raw.torn)? {
                return Ok(None);
            }
        }
        Ok(None)
    }

    /// After a read that yielded no records: decides whether to retry on
    /// a successor segment (`Ok(true)`), report caught-up (`Ok(false)`),
    /// or fail. Shared tail logic of both poll flavours.
    fn advance_past_empty(&mut self, torn: Option<&'static str>) -> Result<bool, WalError> {
        let pos = self.pos.as_ref().expect("positioned");
        // Nothing whole at the cursor: either the segment is finished
        // and the log continues in a successor, or we are caught up.
        let segments = list_segments(&self.dir)?;
        let is_last = segments
            .last()
            .is_some_and(|&(start, _)| start == pos.start_lsn);
        if let Some(reason) = torn {
            if is_last {
                return Ok(false); // write in flight; retry later
            }
            return Err(WalError::CorruptSegment {
                path: pos.path.clone(),
                offset: pos.offset,
                reason,
            });
        }
        if segments
            .iter()
            .any(|&(start, _)| start == self.next_lsn && start > pos.start_lsn)
        {
            // The current segment ended exactly at the cursor and a
            // successor picks up there: switch and read it.
            self.pos = None;
            return Ok(true);
        }
        // Caught up — or our file read raced a rotation (the final
        // frames of this segment landed after the read but before
        // the listing). Either way the next poll re-reads the suffix
        // and makes progress, so report nothing new rather than
        // misdiagnose the race.
        Ok(false)
    }

    /// Finds the segment containing `next_lsn` and the byte offset of
    /// that record within it (rounded down to a block boundary on v2
    /// segments, rewinding `next_lsn` to match). Returns `false` when
    /// the log has not grown to the cursor yet.
    fn locate(&mut self) -> Result<bool, WalError> {
        let segments = list_segments(&self.dir)?;
        let Some(idx) = segments
            .iter()
            .rposition(|&(start, _)| start <= self.next_lsn)
        else {
            if let Some(&(found, _)) = segments.first() {
                // Everything on disk starts after the cursor: the log
                // below it has been compacted away.
                return Err(WalError::SegmentGap {
                    expected: self.next_lsn,
                    found,
                });
            }
            return Ok(false); // empty directory; the log may appear later
        };
        let (start_lsn, ref path) = segments[idx];
        let last = idx + 1 == segments.len();
        // One full validating scan to find the frame boundary of the
        // cursor record; from then on reads are incremental.
        let scan = match scan_segment(path) {
            Ok(scan) => scan,
            // A rotating writer creates the successor file before its
            // header write lands on disk; a short header on the *last*
            // segment is that write in flight, not corruption — wait,
            // exactly as for a torn tail frame. (A full-length header
            // with bad magic or version stays a hard error: the 20-byte
            // header is written in one call and never rewritten.)
            Err(WalError::CorruptSegment {
                reason: "short header",
                ..
            }) if last => return Ok(false),
            Err(e) => return Err(e),
        };
        let have = scan.records.len() as u64;
        let skip = self.next_lsn - start_lsn;
        if skip > have {
            // The cursor points past this segment's content.
            if last {
                if scan.torn.is_some() {
                    // The missing records may be mid-write; wait.
                    return Ok(false);
                }
                // A clean final segment that is short of the cursor: the
                // cursor is from a different timeline (e.g. a follower
                // ahead of a restored leader). Report it as a gap.
                return Err(WalError::SegmentGap {
                    expected: self.next_lsn,
                    found: start_lsn + have,
                });
            }
            return Err(WalError::CorruptSegment {
                path: path.clone(),
                offset: scan.clean_bytes,
                reason: scan.torn.unwrap_or("segment ends before successor"),
            });
        }
        let (frame_bytes, skipped) = skip_offset(path, scan.version, skip)?;
        if skipped < skip {
            // v2 cursor inside a block: blocks are indivisible, so back
            // up to the boundary and re-deliver (consumers dedupe by
            // watermark).
            self.next_lsn = start_lsn + skipped;
        }
        self.pos = Some(Position {
            start_lsn,
            path: path.clone(),
            version: scan.version,
            offset: SEGMENT_HEADER_BYTES + frame_bytes,
        });
        Ok(true)
    }
}

/// Byte length and record count of the longest run of whole frames after
/// the header of `path` that holds **at most** `skip` records. The
/// frames were already validated by the caller's scan, so this only
/// walks length prefixes and (for v2) block-header counts. Returns
/// `(byte_len, records_covered)`; `records_covered < skip` iff the skip
/// target falls inside a v2 block.
fn skip_offset(path: &Path, version: u32, skip: u64) -> Result<(u64, u64), WalError> {
    if skip == 0 {
        return Ok((0, 0));
    }
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let body = &bytes[SEGMENT_HEADER_BYTES as usize..];
    let mut pos = 0usize;
    let mut skipped = 0u64;
    while skipped < skip {
        let Ok(Some((payload, frame_len))) = split_frame(&body[pos..]) else {
            break; // validated by the caller's scan; stop defensively
        };
        let count = if version == SEGMENT_VERSION_V2 {
            match peek_block_count(payload) {
                Ok(n) => n,
                Err(_) => break,
            }
        } else {
            1
        };
        if skipped + count > skip {
            break; // the target LSN is inside this block
        }
        pos += frame_len;
        skipped += count;
    }
    Ok((pos as u64, skipped))
}

/// Reads and decodes up to `max_records` records' worth of whole frames
/// starting at `offset`, returning the records, bytes consumed, and the
/// torn reason when the suffix ends mid-frame. A v2 block is decoded
/// whole, so the cap can overshoot by one block.
fn read_frames_from(
    path: &Path,
    version: u32,
    offset: u64,
    max_records: usize,
) -> Result<(Vec<WalRecord>, u64, Option<&'static str>), WalError> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;

    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() && records.len() < max_records {
        match split_frame(&buf[pos..]) {
            Ok(None) => break,
            Ok(Some((payload, frame_len))) => {
                if version == SEGMENT_VERSION_V2 {
                    match decode_block(payload) {
                        Ok(recs) => records.extend(recs),
                        Err(_) => return Ok((records, pos as u64, Some("undecodable block"))),
                    }
                } else {
                    match WalRecord::decode_payload(payload) {
                        Ok(rec) => records.push(rec),
                        Err(_) => return Ok((records, pos as u64, Some("undecodable payload"))),
                    }
                }
                pos += frame_len;
            }
            Err(reason) => return Ok((records, pos as u64, Some(reason))),
        }
    }
    Ok((records, pos as u64, None))
}

/// What [`read_raw_frames_from`] read: whole validated frames, verbatim.
struct RawFrames {
    /// Records the frames carry (blocks count their contents).
    records: u64,
    /// Bytes consumed from the segment (equals `frames.len()`).
    consumed: u64,
    /// The frame bytes, CRC-validated and unmodified.
    frames: Vec<u8>,
    /// Why reading stopped early, if the tail was torn.
    torn: Option<&'static str>,
}

/// Raw twin of [`read_frames_from`]: validates CRCs and peeks record
/// counts but keeps the frame bytes verbatim.
fn read_raw_frames_from(
    path: &Path,
    version: u32,
    offset: u64,
    max_records: usize,
) -> Result<RawFrames, WalError> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;

    let mut count = 0u64;
    let mut pos = 0usize;
    let mut torn = None;
    while pos < buf.len() && count < max_records as u64 {
        match split_frame(&buf[pos..]) {
            Ok(None) => break,
            Ok(Some((payload, frame_len))) => {
                let n = if version == SEGMENT_VERSION_V2 {
                    match peek_block_count(payload) {
                        Ok(n) => n,
                        Err(_) => {
                            torn = Some("undecodable block");
                            break;
                        }
                    }
                } else {
                    1
                };
                count += n;
                pos += frame_len;
            }
            Err(reason) => {
                torn = Some(reason);
                break;
            }
        }
    }
    buf.truncate(pos);
    Ok(RawFrames {
        records: count,
        consumed: pos as u64,
        frames: buf,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::{encode_block, frame_block};
    use crate::record::WalRecord;
    use crate::writer::{FsyncPolicy, SegmentFormat, WalBatch, WalOptions, WalWriter};
    use modb_core::{ObjectId, UpdateMessage, UpdatePosition};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("modb-wal-ship-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn update(i: u64) -> WalRecord {
        WalRecord::Update {
            id: ObjectId(i % 7),
            msg: UpdateMessage::basic(i as f64, UpdatePosition::Arc(i as f64 * 0.5), 1.0),
        }
    }

    fn small() -> WalOptions {
        WalOptions {
            fsync: FsyncPolicy::Never,
            max_segment_bytes: 256,
            ..WalOptions::default()
        }
    }

    /// A framed one-record v2 block, as the writer would produce it.
    fn v2_frame(rec: &WalRecord) -> Vec<u8> {
        let mut payload = Vec::new();
        encode_block(std::slice::from_ref(rec), true, &mut payload);
        let mut frame = Vec::new();
        frame_block(&payload, &mut frame);
        frame
    }

    /// Drains the tailer completely; asserts chunk LSNs are contiguous.
    fn drain(tailer: &mut SegmentTailer, max: usize) -> Vec<WalRecord> {
        let mut out = Vec::new();
        while let Some(chunk) = tailer.poll(max).unwrap() {
            assert_eq!(
                chunk.start_lsn,
                tailer.next_lsn() - chunk.records.len() as u64
            );
            out.extend(chunk.records);
        }
        out
    }

    #[test]
    fn follows_appends_across_rotations() {
        let dir = tmp("follow");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        let mut tailer = SegmentTailer::new(&dir, 0);
        assert!(tailer.poll(64).unwrap().is_none(), "nothing yet");
        let mut shipped = Vec::new();
        for round in 0..6u64 {
            for i in 0..10u64 {
                w.append(&update(round * 10 + i)).unwrap();
            }
            shipped.extend(drain(&mut tailer, 7));
            assert_eq!(tailer.next_lsn(), (round + 1) * 10, "round {round}");
        }
        let expected: Vec<WalRecord> = (0..60).map(update).collect();
        assert_eq!(shipped, expected);
        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        assert!(tailer.poll(64).unwrap().is_none(), "caught up");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn starts_mid_log_and_mid_segment() {
        let dir = tmp("mid");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..40u64 {
            w.append(&update(i)).unwrap();
        }
        for start in [0u64, 1, 17, 39, 40] {
            let mut tailer = SegmentTailer::new(&dir, start);
            let got = drain(&mut tailer, 1000);
            let expected: Vec<WalRecord> = (start..40).map(update).collect();
            assert_eq!(got, expected, "start {start}");
            assert_eq!(tailer.next_lsn(), 40);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_inside_a_block_rewinds_to_its_boundary() {
        let dir = tmp("mid-block");
        let mut w = WalWriter::create(&dir, WalOptions::default()).unwrap();
        let mut batch = WalBatch::new();
        for i in 0..10u64 {
            batch.push(&update(i));
        }
        w.append_batch(&mut batch).unwrap(); // one 10-record block
        for i in 10..13u64 {
            w.append(&update(i)).unwrap();
        }
        // A cursor at LSN 4 lands inside the block: the tailer rewinds
        // to 0 and re-delivers; the consumer's watermark dedupes.
        let mut tailer = SegmentTailer::new(&dir, 4);
        let chunk = tailer.poll(1000).unwrap().unwrap();
        assert_eq!(chunk.start_lsn, 0);
        assert_eq!(chunk.records.len(), 13);
        // A cursor on the boundary does not rewind.
        let mut tailer = SegmentTailer::new(&dir, 10);
        let chunk = tailer.poll(1000).unwrap().unwrap();
        assert_eq!(chunk.start_lsn, 10);
        assert_eq!(chunk.records, (10..13).map(update).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_of_last_segment_means_wait() {
        let dir = tmp("torn-wait");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..3u64 {
            w.append(&update(i)).unwrap();
        }
        // Simulate a write in flight: half a frame at the end.
        let (_, last) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&last).unwrap();
        let frame = v2_frame(&update(3));
        bytes.extend_from_slice(&frame[..frame.len() / 2]);
        std::fs::write(&last, &bytes).unwrap();

        let mut tailer = SegmentTailer::new(&dir, 0);
        let chunk = tailer.poll(64).unwrap().unwrap();
        assert_eq!(chunk.records.len(), 3, "whole frames delivered");
        assert!(tailer.poll(64).unwrap().is_none(), "torn tail = wait");
        // The rest of the frame arrives: the record is delivered.
        bytes.extend_from_slice(&frame[frame.len() / 2..]);
        std::fs::write(&last, &bytes).unwrap();
        let chunk = tailer.poll(64).unwrap().unwrap();
        assert_eq!(chunk.start_lsn, 3);
        assert_eq!(chunk.records, vec![update(3)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression for a race found by the replication fault harness: a
    /// rotating writer creates the successor segment file before its
    /// header hits the disk. A tailer that lists-then-opens in that
    /// window must wait, not report corruption (which would kill a
    /// perfectly healthy replication session).
    #[test]
    fn half_written_successor_header_means_wait() {
        use crate::segment::{encode_header, segment_file_name};
        let dir = tmp("half-header");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..10u64 {
            w.append(&update(i)).unwrap();
        }
        w.sync().unwrap();
        let mut tailer = SegmentTailer::new(&dir, 0);
        assert_eq!(drain(&mut tailer, 64).len(), 10);

        // Mid-rotation: the successor exists with only part of its
        // header written.
        let header = encode_header(SEGMENT_VERSION_V2, 10);
        let successor = dir.join(segment_file_name(10));
        std::fs::write(&successor, &header[..7]).unwrap();
        assert!(
            tailer.poll(64).unwrap().is_none(),
            "header in flight = wait"
        );
        // An empty just-created file is the same case.
        std::fs::write(&successor, []).unwrap();
        assert!(tailer.poll(64).unwrap().is_none(), "empty successor = wait");

        // The rotation completes and records land: the tailer resumes.
        let mut bytes = header;
        for i in 10..13u64 {
            bytes.extend_from_slice(&v2_frame(&update(i)));
        }
        std::fs::write(&successor, &bytes).unwrap();
        let chunk = tailer.poll(64).unwrap().unwrap();
        assert_eq!(chunk.start_lsn, 10);
        assert_eq!(chunk.records, (10..13).map(update).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_interior_segment_is_corruption() {
        let dir = tmp("torn-interior");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..40u64 {
            w.append(&update(i)).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        let mid = &segments[segments.len() / 2].1;
        let mut bytes = std::fs::read(mid).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xff;
        std::fs::write(mid, &bytes).unwrap();
        let mut tailer = SegmentTailer::new(&dir, 0);
        let err = loop {
            match tailer.poll(4) {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("interior corruption must not read as caught-up"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, WalError::CorruptSegment { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compacted_cursor_is_a_gap() {
        let dir = tmp("gap");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        for i in 0..40u64 {
            w.append(&update(i)).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        std::fs::remove_file(&segments[0].1).unwrap();
        let mut tailer = SegmentTailer::new(&dir, 0);
        assert!(matches!(
            tailer.poll(64),
            Err(WalError::SegmentGap { expected: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cursor_past_the_log_waits_then_gaps() {
        let dir = tmp("future");
        // Empty directory: the log may simply not exist yet.
        std::fs::create_dir_all(&dir).unwrap();
        let mut tailer = SegmentTailer::new(&dir, 5);
        assert!(tailer.poll(64).unwrap().is_none());
        // A clean log shorter than the cursor is a different timeline.
        let mut w = WalWriter::create(&dir, small()).unwrap();
        w.append(&update(0)).unwrap();
        w.sync().unwrap();
        assert!(matches!(
            tailer.poll(64),
            Err(WalError::SegmentGap {
                expected: 5,
                found: 1
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_cap_bounds_delivery() {
        let dir = tmp("cap");
        let mut w = WalWriter::create(&dir, WalOptions::default()).unwrap();
        for i in 0..10u64 {
            w.append(&update(i)).unwrap();
        }
        let mut tailer = SegmentTailer::new(&dir, 0);
        let chunk = tailer.poll(4).unwrap().unwrap();
        assert_eq!(chunk.records.len(), 4);
        assert_eq!(chunk.end_lsn(), 4);
        assert!(tailer.poll(0).unwrap().is_none(), "zero cap reads nothing");
        let rest = drain(&mut tailer, 4);
        assert_eq!(rest.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_version_log_is_followed_end_to_end() {
        let dir = tmp("mixed");
        let mut w = WalWriter::create(
            &dir,
            WalOptions {
                format: SegmentFormat::V1,
                ..small()
            },
        )
        .unwrap();
        for i in 0..10u64 {
            w.append(&update(i)).unwrap();
        }
        drop(w);
        // Upgrade: resume with v2 configured. The v1 tail segment keeps
        // its format; rotation switches.
        let mut w = WalWriter::resume(&dir, small(), 10).unwrap();
        assert_eq!(w.segment_version(), 1, "tail segment stays v1");
        for i in 10..40u64 {
            w.append(&update(i)).unwrap();
        }
        assert_eq!(w.segment_version(), 2, "rotation switched to v2");
        let mut tailer = SegmentTailer::new(&dir, 0);
        let got = drain(&mut tailer, 9);
        assert_eq!(got, (0..40).map(update).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn raw_blocks_match_decoded_records_and_stay_compressed() {
        let dir = tmp("raw");
        let mut w = WalWriter::create(&dir, small()).unwrap();
        let mut batch = WalBatch::new();
        let mut v1_bytes = 0usize;
        for i in 0..50u64 {
            let rec = update(i);
            let mut f = Vec::new();
            rec.encode_frame(&mut f);
            v1_bytes += f.len();
            batch.push(&rec);
            if batch.records() == 10 {
                w.append_batch(&mut batch).unwrap();
            }
        }
        w.append_batch(&mut batch).unwrap();
        let mut raw = SegmentTailer::new(&dir, 0);
        let mut decoded = SegmentTailer::new(&dir, 0);
        let mut shipped_bytes = 0usize;
        let mut records = Vec::new();
        while let Some(chunk) = raw.poll_blocks(8).unwrap() {
            shipped_bytes += chunk.frames.len();
            assert_eq!(chunk.segment_version, 2);
            // What a follower does: decode the shipped frames.
            let (recs, clean, end) = crate::block::decode_block_frames(&chunk.frames);
            assert_eq!(end, crate::record::FrameEnd::Clean);
            assert_eq!(clean, chunk.frames.len());
            assert_eq!(recs.len() as u64, chunk.records);
            records.extend(recs);
        }
        assert_eq!(records, drain(&mut decoded, 1000));
        assert_eq!(records, (0..50).map(update).collect::<Vec<_>>());
        assert!(
            shipped_bytes * 2 < v1_bytes,
            "wire bytes must at least halve: {shipped_bytes} vs {v1_bytes}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
