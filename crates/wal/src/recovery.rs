//! Crash recovery: latest snapshot + log replay + torn-tail repair.
//!
//! Recovery rebuilds the database a crash (or clean shutdown) left
//! behind:
//!
//! 1. Load the newest readable snapshot (`snap-*.snap`); its LSN
//!    high-water mark says which log prefix is already reflected in it.
//! 2. Scan the segments in LSN order, skipping any that lie entirely
//!    below the snapshot, and replay every record with
//!    `lsn ≥ snapshot_lsn` through the ordinary `Database` mutation
//!    methods — so replayed state is re-validated and re-indexed exactly
//!    like live state.
//! 3. Repair the tail: a torn frame in the *last* segment is the
//!    expected signature of a crash mid-append, so the file is truncated
//!    back to its last whole frame and appending can resume. Damage
//!    anywhere else (an interior segment, an interior frame followed by a
//!    later segment) means records the writer had durably acknowledged
//!    are gone, and recovery refuses with [`WalError::CorruptSegment`]
//!    rather than silently dropping them.
//!
//! Replay re-derives update acceptance: the stale / off-route /
//! unknown-object checks depend only on the receiving object's own state
//! and the static route network, and the log preserves per-object order,
//! so an update the live system rejected is rejected again on replay
//! (and counted in [`RecoveryReport::rejected`]).
//!
//! Replay also tolerates *overlap*: a pause-free snapshot may capture
//! mutations at or past its watermark LSN, so those records get replayed
//! against state that already contains them. Re-delivering an applied
//! update is a no-op in `Database::apply_update` (identical attribute),
//! older ones re-reject as stale, and duplicate registrations / removals
//! re-reject — state and history converge to the live outcome either
//! way.

use std::fmt;
use std::path::{Path, PathBuf};

use modb_core::Database;

use crate::error::WalError;
use crate::record::WalRecord;
use crate::segment::{list_segments, scan_segment};
use crate::snapshot::{list_snapshots, read_snapshot};

/// What recovery did, for operator logs and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The snapshot the rebuild started from.
    pub snapshot_path: PathBuf,
    /// Its LSN high-water mark.
    pub snapshot_lsn: u64,
    /// Records replayed and accepted.
    pub replayed: u64,
    /// Records replayed and rejected by the database (stale / off-route /
    /// duplicate / unknown — the same verdicts the live system gave).
    pub rejected: u64,
    /// Records skipped because the snapshot already reflected them.
    pub skipped_records: u64,
    /// Whole segments skipped without scanning (entirely below the
    /// snapshot).
    pub skipped_segments: u64,
    /// Bytes cut from the last segment's torn tail (0 for a clean log).
    pub truncated_bytes: u64,
    /// Why the tail was torn, when it was.
    pub torn: Option<&'static str>,
    /// The LSN the log continues at (pass to `WalWriter::resume`).
    pub next_lsn: u64,
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "recovered from {} (lsn {}): {} replayed, {} rejected, {} skipped; ",
            self.snapshot_path.display(),
            self.snapshot_lsn,
            self.replayed,
            self.rejected,
            self.skipped_records,
        )?;
        match self.torn {
            Some(reason) => write!(
                f,
                "truncated {} torn bytes ({reason}); ",
                self.truncated_bytes
            )?,
            None => write!(f, "clean tail; ")?,
        }
        write!(f, "next lsn {}", self.next_lsn)
    }
}

/// A recovered database plus the report describing how it was rebuilt.
#[derive(Debug)]
pub struct Recovered {
    /// The rebuilt database.
    pub database: Database,
    /// What recovery did.
    pub report: RecoveryReport,
}

/// Replays one record through the database's ordinary mutation methods,
/// classifying the outcome. Returns `true` when the mutation was
/// accepted, `false` when the database rejected it (stale / off-route /
/// duplicate / unknown — the same verdicts the live system gave, which
/// replay re-derives deterministically).
///
/// This is the single application seam shared by [`recover`] and any
/// other log consumer — notably a replication follower replaying shipped
/// records — so replicated state is re-validated and re-indexed exactly
/// like recovered state. Re-delivery at or past a watermark is
/// idempotent: an already-applied update is a no-op, older ones
/// re-reject as stale, and duplicate registrations / removals re-reject.
pub fn apply_record(db: &mut Database, rec: WalRecord) -> bool {
    match rec {
        WalRecord::RegisterMoving(obj) => db.register_moving(obj).is_ok(),
        WalRecord::InsertStationary(obj) => db.insert_stationary(obj).is_ok(),
        WalRecord::Update { id, msg } => db.apply_update(id, &msg).is_ok(),
        WalRecord::RemoveMoving(id) => db.remove_moving(id).is_ok(),
        WalRecord::InsertRoute(route) => db.insert_route(route).is_ok(),
        // A leadership change carries no state mutation — its LSN is the
        // divergence boundary, consumed by the epoch history, not the
        // database.
        WalRecord::LeaderEpoch { .. } => true,
    }
}

/// Recovers the database state persisted in `dir`.
///
/// See the module docs for the procedure. After this returns, resume
/// appending with `WalWriter::resume(dir, opts, report.next_lsn)` — any
/// torn tail has already been truncated away, so the writer continues on
/// a frame boundary.
///
/// # Errors
///
/// - [`WalError::NoSnapshot`] when `dir` holds no readable snapshot (the
///   log alone cannot seed the route network and config).
/// - [`WalError::CorruptSegment`] for damage outside the last segment's
///   tail, or an unreadable segment header that is not itself a torn
///   tail.
/// - [`WalError::SegmentGap`] when consecutive segments do not join up.
/// - I/O failures.
pub fn recover(dir: &Path) -> Result<Recovered, WalError> {
    // Newest readable snapshot wins; older ones are the fallback if the
    // newest is damaged (its write was atomic, but disks rot).
    let snapshots = list_snapshots(dir)?;
    let mut chosen = None;
    for (lsn, path) in snapshots.iter().rev() {
        if let Ok((db, snap_lsn)) = read_snapshot(path) {
            debug_assert_eq!(snap_lsn, *lsn, "file name must match payload lsn");
            chosen = Some((db, snap_lsn, path.clone()));
            break;
        }
    }
    let (mut db, snapshot_lsn, snapshot_path) =
        chosen.ok_or_else(|| WalError::NoSnapshot(dir.to_path_buf()))?;

    let segments = list_segments(dir)?;
    let mut report = RecoveryReport {
        snapshot_path,
        snapshot_lsn,
        replayed: 0,
        rejected: 0,
        skipped_records: 0,
        skipped_segments: 0,
        truncated_bytes: 0,
        torn: None,
        next_lsn: snapshot_lsn,
    };

    // A segment lies entirely below the snapshot exactly when its
    // successor starts at or below the snapshot LSN (the successor's
    // start is the segment's end).
    let first_needed = segments
        .iter()
        .position(|&(start, _)| start > snapshot_lsn)
        .map(|i| i.saturating_sub(1))
        .unwrap_or_else(|| segments.len().saturating_sub(1));
    report.skipped_segments = first_needed as u64;

    let mut cursor: Option<u64> = None;
    for (i, (start_lsn, path)) in segments.iter().enumerate().skip(first_needed) {
        let last = i + 1 == segments.len();
        let scan = match scan_segment(path) {
            Ok(scan) => scan,
            // A crash between creating a segment file and syncing its
            // header leaves a short header in the *last* file: that is a
            // torn tail, not corruption. Anything else is.
            Err(WalError::CorruptSegment {
                reason: "short header",
                ..
            }) if last => {
                std::fs::remove_file(path)?;
                report.torn = Some("short header");
                break;
            }
            Err(e) => return Err(e),
        };
        debug_assert_eq!(scan.start_lsn, *start_lsn, "file name must match header");
        if let Some(expected) = cursor {
            if scan.start_lsn != expected {
                return Err(WalError::SegmentGap {
                    expected,
                    found: scan.start_lsn,
                });
            }
        }
        if let Some(reason) = scan.torn {
            if !last {
                return Err(WalError::CorruptSegment {
                    path: path.clone(),
                    offset: scan.clean_bytes,
                    reason,
                });
            }
            let file_len = std::fs::metadata(path)?.len();
            report.truncated_bytes = file_len - scan.clean_bytes;
            report.torn = Some(reason);
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(scan.clean_bytes)?;
            file.sync_data()?;
        }
        let mut lsn = scan.start_lsn;
        for rec in scan.records {
            if lsn < snapshot_lsn {
                report.skipped_records += 1;
            } else if apply_record(&mut db, rec) {
                report.replayed += 1;
            } else {
                report.rejected += 1;
            }
            lsn += 1;
        }
        cursor = Some(lsn);
    }
    report.next_lsn = cursor.unwrap_or(0).max(snapshot_lsn);

    Ok(Recovered {
        database: db,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::write_snapshot;
    use crate::writer::{FsyncPolicy, WalOptions, WalWriter};
    use modb_core::{
        DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, StationaryObject, UpdateMessage,
        UpdatePosition,
    };
    use modb_geom::Point;
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("modb-wal-recovery-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn network() -> modb_routes::RouteNetwork {
        modb_routes::RouteNetwork::from_routes([Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap()])
        .unwrap()
    }

    fn vehicle(id: u64, arc: f64) -> MovingObject {
        MovingObject {
            id: ObjectId(id),
            name: format!("veh-{id}"),
            attr: modb_core::PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: Point::new(arc, 0.0),
                start_arc: arc,
                direction: Direction::Forward,
                speed: 1.0,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: 5.0,
                },
            },
            max_speed: 1.5,
            trip_end: None,
        }
    }

    /// Applies `rec` to `db` and logs it, mirroring the live system.
    fn apply_and_log(db: &mut Database, w: &mut WalWriter, rec: WalRecord) {
        w.append(&rec).unwrap();
        let _ = apply_record(db, rec);
    }

    /// A scripted workload: returns the reference database, with the log
    /// (and a snapshot at `snapshot_after` records) written into `dir`.
    fn scripted(dir: &Path, snapshot_after: usize, opts: WalOptions) -> Database {
        let mut db = Database::new(network(), DatabaseConfig::default());
        let mut w = WalWriter::create(dir, opts).unwrap();
        write_snapshot(dir, &db, 0).unwrap(); // genesis snapshot
        let records: Vec<WalRecord> = vec![
            WalRecord::RegisterMoving(vehicle(1, 10.0)),
            WalRecord::RegisterMoving(vehicle(2, 40.0)),
            WalRecord::InsertStationary(StationaryObject::new(
                ObjectId(100),
                "depot",
                Point::new(12.0, 0.0),
            )),
            WalRecord::Update {
                id: ObjectId(1),
                msg: UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
            },
            // A stale update: rejected live, rejected again on replay.
            WalRecord::Update {
                id: ObjectId(1),
                msg: UpdateMessage::basic(4.0, UpdatePosition::Arc(15.0), 0.5),
            },
            WalRecord::InsertRoute(
                Route::from_vertices(
                    RouteId(2),
                    "spur",
                    vec![Point::new(0.0, 10.0), Point::new(100.0, 10.0)],
                )
                .unwrap(),
            ),
            WalRecord::Update {
                id: ObjectId(2),
                msg: UpdateMessage::route_change(
                    6.0,
                    RouteId(2),
                    UpdatePosition::Arc(40.0),
                    Direction::Backward,
                    0.8,
                ),
            },
            WalRecord::RemoveMoving(ObjectId(2)),
            WalRecord::RegisterMoving(vehicle(3, 70.0)),
            WalRecord::Update {
                id: ObjectId(3),
                msg: UpdateMessage::basic(8.0, UpdatePosition::Arc(72.0), 1.2),
            },
        ];
        for (i, rec) in records.into_iter().enumerate() {
            apply_and_log(&mut db, &mut w, rec);
            if i + 1 == snapshot_after {
                w.sync().unwrap();
                write_snapshot(dir, &db, w.next_lsn()).unwrap();
            }
        }
        w.sync().unwrap();
        db
    }

    fn assert_same_answers(a: &Database, b: &Database) {
        assert_eq!(a.moving_count(), b.moving_count());
        assert_eq!(a.stationary_count(), b.stationary_count());
        let mut ids: Vec<ObjectId> = a.moving_ids().collect();
        ids.sort_unstable();
        let mut b_ids: Vec<ObjectId> = b.moving_ids().collect();
        b_ids.sort_unstable();
        assert_eq!(ids, b_ids);
        for &id in &ids {
            assert_eq!(a.moving(id).unwrap(), b.moving(id).unwrap());
            assert_eq!(a.history_of(id), b.history_of(id));
            for t in [0.0, 5.0, 10.0] {
                assert_eq!(a.position_of(id, t).unwrap(), b.position_of(id, t).unwrap());
            }
        }
        // Index answers too, not just stored state.
        use modb_geom::{Polygon, Rect};
        use modb_index::QueryRegion;
        for t in [0.0, 6.0, 12.0] {
            let g = Polygon::rectangle(&Rect::new(Point::new(0.0, -20.0), Point::new(100.0, 20.0)))
                .unwrap();
            let ra = a
                .range_query(&QueryRegion::at_instant(g.clone(), t))
                .unwrap();
            let rb = b.range_query(&QueryRegion::at_instant(g, t)).unwrap();
            assert_eq!(ra.must, rb.must);
            assert_eq!(ra.may, rb.may);
        }
    }

    #[test]
    fn recovers_from_genesis_snapshot_plus_full_replay() {
        let dir = tmp("full-replay");
        let reference = scripted(&dir, usize::MAX, WalOptions::default());
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.snapshot_lsn, 0);
        assert_eq!(rec.report.replayed, 9, "10 logged, 1 stale rejected");
        assert_eq!(rec.report.rejected, 1);
        assert_eq!(rec.report.next_lsn, 10);
        assert!(rec.report.torn.is_none());
        assert_same_answers(&rec.database, &reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_snapshot_skips_reflected_records() {
        let dir = tmp("mid-snapshot");
        let reference = scripted(&dir, 6, WalOptions::default());
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.snapshot_lsn, 6);
        assert_eq!(rec.report.skipped_records, 6);
        assert_eq!(rec.report.replayed, 4);
        assert_eq!(rec.report.next_lsn, 10);
        assert_same_answers(&rec.database, &reference);
        // The report prints without panicking and mentions the lsn.
        assert!(rec.report.to_string().contains("next lsn 10"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotated_segments_replay_in_order() {
        let dir = tmp("rotated");
        let opts = WalOptions {
            fsync: FsyncPolicy::Never,
            max_segment_bytes: 200, // force many segments
            ..WalOptions::default()
        };
        let reference = scripted(&dir, 4, opts);
        assert!(list_segments(&dir).unwrap().len() > 1);
        let rec = recover(&dir).unwrap();
        assert!(rec.report.skipped_segments > 0, "early segments skippable");
        assert_same_answers(&rec.database, &reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncated_and_resumable() {
        let dir = tmp("torn-tail");
        let reference = scripted(&dir, usize::MAX, WalOptions::default());
        // Crash mid-append: garbage bytes after the last whole frame.
        let (_, last) = list_segments(&dir).unwrap().pop().unwrap();
        let clean_len = std::fs::metadata(&last).unwrap().len();
        let mut bytes = std::fs::read(&last).unwrap();
        bytes.extend_from_slice(&[0x17, 0x00, 0x00, 0x00, 0xde, 0xad]);
        std::fs::write(&last, &bytes).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.torn, Some("truncated frame header"));
        assert_eq!(rec.report.truncated_bytes, 6);
        assert_eq!(std::fs::metadata(&last).unwrap().len(), clean_len);
        assert_same_answers(&rec.database, &reference);

        // The log resumes on the repaired boundary and stays readable.
        let mut w = WalWriter::resume(&dir, WalOptions::default(), rec.report.next_lsn).unwrap();
        w.append(&WalRecord::RemoveMoving(ObjectId(3))).unwrap();
        w.sync().unwrap();
        let rec2 = recover(&dir).unwrap();
        assert_eq!(rec2.report.next_lsn, rec.report.next_lsn + 1);
        assert!(rec2.database.moving(ObjectId(3)).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interior_corruption_refused() {
        let dir = tmp("interior");
        let opts = WalOptions {
            fsync: FsyncPolicy::Never,
            max_segment_bytes: 200,
            ..WalOptions::default()
        };
        scripted(&dir, usize::MAX, opts);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        // Corrupt a frame in the middle segment: acknowledged records are
        // unrecoverable, so recovery must refuse.
        let mid = &segments[segments.len() / 2].1;
        let mut bytes = std::fs::read(mid).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xff;
        std::fs::write(mid, &bytes).unwrap();
        assert!(matches!(
            recover(&dir),
            Err(WalError::CorruptSegment { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_is_a_gap() {
        let dir = tmp("gap");
        let opts = WalOptions {
            fsync: FsyncPolicy::Never,
            max_segment_bytes: 200,
            ..WalOptions::default()
        };
        scripted(&dir, usize::MAX, opts);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        std::fs::remove_file(&segments[segments.len() / 2].1).unwrap();
        assert!(matches!(recover(&dir), Err(WalError::SegmentGap { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_header_last_segment_deleted() {
        let dir = tmp("short-header");
        let reference = scripted(&dir, usize::MAX, WalOptions::default());
        // Crash between creating the next segment and writing its header.
        std::fs::write(dir.join(crate::segment::segment_file_name(10)), b"MODB").unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.torn, Some("short header"));
        assert!(!dir.join(crate::segment::segment_file_name(10)).exists());
        assert_eq!(rec.report.next_lsn, 10);
        assert_same_answers(&rec.database, &reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_snapshot_is_an_error() {
        let dir = tmp("no-snapshot");
        let mut w = WalWriter::create(&dir, WalOptions::default()).unwrap();
        w.append(&WalRecord::RemoveMoving(ObjectId(1))).unwrap();
        drop(w);
        assert!(matches!(recover(&dir), Err(WalError::NoSnapshot(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_latest_snapshot_falls_back_to_older() {
        let dir = tmp("fallback");
        let reference = scripted(&dir, usize::MAX, WalOptions::default());
        let w_next = 10;
        write_snapshot(&dir, &reference, w_next).unwrap();
        // Damage the newest snapshot; the genesis one still works.
        let snaps = list_snapshots(&dir).unwrap();
        let newest = &snaps.last().unwrap().1;
        let mut bytes = std::fs::read(newest).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(newest, &bytes).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.report.snapshot_lsn, 0, "fell back to genesis");
        assert_eq!(rec.report.next_lsn, 10);
        assert_same_answers(&rec.database, &reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_is_idempotent() {
        let dir = tmp("idempotent");
        let reference = scripted(&dir, 3, WalOptions::default());
        let a = recover(&dir).unwrap();
        let b = recover(&dir).unwrap();
        assert_eq!(a.report, b.report);
        assert_same_answers(&a.database, &b.database);
        assert_same_answers(&a.database, &reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
