//! # modb-wal — durability for the moving-objects database
//!
//! The paper's DBMS ([Wolfson, Chamberlain, Dao, Jiang, Mendez; ICDE
//! 1998]) keeps every position attribute in memory; this crate makes that
//! state survive a crash. Three pieces:
//!
//! - **Write-ahead log** ([`WalWriter`] / [`SharedWal`]): every database
//!   mutation — object registration, position update, removal, route
//!   insertion — is appended as a length-prefixed, CRC32-checksummed
//!   frame ([`WalRecord`]) *before* it is applied. Segment files rotate
//!   at a size threshold; the fsync cadence is a [`FsyncPolicy`]
//!   (`Always` / `EveryN` / `Never`) trading durability against ingest
//!   throughput — the same cost/imprecision lever the paper pulls for
//!   update policies, applied to persistence.
//! - **Snapshots** ([`write_snapshot`] / [`read_snapshot`]): atomic
//!   (write-tmp-rename) point-in-time captures of full database state,
//!   tagged with the log LSN they reflect, bounding replay work.
//! - **Recovery** ([`recover`]): loads the newest readable snapshot,
//!   replays newer log records through the ordinary mutation methods
//!   (so restored state re-validates and re-indexes identically), and
//!   truncates a torn tail left by a crash mid-append instead of
//!   failing — while refusing to skip interior corruption.
//!
//! Update records are logged whether or not the database accepts them;
//! acceptance is re-derived deterministically on replay. The log is
//! therefore also a complete, replayable trace of the update stream —
//! useful on its own for the indexing experiments of §4.
//!
//! ```
//! use modb_wal::{recover, FsyncPolicy, WalOptions, WalRecord, WalWriter, write_snapshot};
//! use modb_core::{Database, DatabaseConfig};
//! # use modb_geom::Point;
//! # use modb_routes::{Route, RouteId, RouteNetwork};
//! # let network = RouteNetwork::from_routes([Route::from_vertices(
//! #     RouteId(1), "main", vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]).unwrap()]).unwrap();
//! let dir = std::env::temp_dir().join(format!("modb-wal-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let db = Database::new(network, DatabaseConfig::default());
//!
//! // Start a log and a genesis snapshot, append mutations…
//! let mut wal = WalWriter::create(&dir, WalOptions::default()).unwrap();
//! write_snapshot(&dir, &db, wal.next_lsn()).unwrap();
//!
//! // …crash…  then rebuild exactly what was logged:
//! drop(wal);
//! let recovered = recover(&dir).unwrap();
//! assert_eq!(recovered.database.moving_count(), db.moving_count());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod block;
pub mod codec;
pub mod commit;
pub mod compact;
pub mod crc32;
pub mod epoch;
pub mod error;
pub mod lz;
pub mod record;
pub mod recovery;
pub mod segment;
pub mod ship;
pub mod snapshot;
pub mod writer;

pub use block::{decode_block, decode_block_frames, encode_block, frame_block, peek_block_count};
pub use codec::{ByteReader, WalCodec};
pub use commit::{GroupCommitHandle, GroupCommitStats, GroupCommitter};
pub use compact::{compact, compact_with_barrier, CompactionReport, DEFAULT_SNAPSHOT_RETENTION};
pub use crc32::crc32;
pub use epoch::{EpochCheck, EpochHistory, EpochSpan, EPOCH_FILE_NAME, GENESIS_EPOCH};
pub use error::WalError;
pub use record::{decode_frames, FrameEnd, WalRecord, MAX_RECORD_BYTES};
pub use recovery::{apply_record, recover, Recovered, RecoveryReport};
pub use segment::{
    list_segments, read_segment_version, scan_segment, SegmentScan, SEGMENT_VERSION,
    SEGMENT_VERSION_V2,
};
pub use ship::{RawChunk, SegmentTailer, TailChunk};
pub use snapshot::{list_snapshots, read_snapshot, write_snapshot};
pub use writer::{FsyncPolicy, SegmentFormat, SharedWal, WalBatch, WalOptions, WalWriter};
