//! Point-in-time snapshots of full [`modb_core::Database`] state.
//!
//! A snapshot bounds recovery time: instead of replaying the log from LSN
//! 0, recovery loads the latest valid snapshot and replays only the
//! records logged after it. Snapshots also carry what the log alone
//! cannot reconstruct — the route network seeded at construction and the
//! [`DatabaseConfig`].
//!
//! File layout (`snap-<lsn>.snap`):
//!
//! ```text
//! [magic: 8 bytes "MODBSNP1"] [version: u32 LE]
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The payload holds the LSN high-water mark (every record with
//! `lsn < snapshot_lsn` is already reflected in the snapshot), the
//! config, the network, the stationary objects, and each moving object
//! with its retained attribute history. Writes are atomic: the bytes go
//! to a `.tmp` file which is fsynced, renamed over the final name, and
//! the directory is fsynced — a crash mid-write leaves either the old
//! state or the new, never a half-written snapshot under the real name.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use modb_core::{Database, DatabaseConfig, MovingObject, PositionAttribute, StationaryObject};
use modb_routes::RouteNetwork;

use crate::codec::{put_u32, put_u64, ByteReader, WalCodec};
use crate::crc32::crc32;
use crate::error::WalError;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"MODBSNP1";
/// Current snapshot format version. Version 2 added
/// `DatabaseConfig::change_log_capacity` to the config codec; version 3
/// replaced the scalar `slab_minutes` with the speed-band layout
/// (`DatabaseConfig::bands`).
pub const SNAPSHOT_VERSION: u32 = 3;

/// File name for the snapshot taken at `lsn` (zero-padded so
/// lexicographic order equals LSN order).
pub fn snapshot_file_name(lsn: u64) -> String {
    format!("snap-{lsn:020}.snap")
}

/// Inverse of [`snapshot_file_name`]; `None` for non-snapshot files.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists the snapshot files in `dir`, sorted by LSN. Non-snapshot files
/// (including in-flight `.tmp` files) are ignored.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut snapshots = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            snapshots.push((lsn, entry.path()));
        }
    }
    snapshots.sort_unstable_by_key(|&(lsn, _)| lsn);
    Ok(snapshots)
}

/// Decoded snapshot payload: `(lsn, config, network, stationary, moving
/// objects with their transaction-time history)`.
type DecodedSnapshot = (
    u64,
    DatabaseConfig,
    RouteNetwork,
    Vec<StationaryObject>,
    Vec<(MovingObject, Vec<PositionAttribute>)>,
);

fn encode_snapshot(db: &Database, lsn: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4096);
    put_u64(&mut payload, lsn);
    db.config().encode(&mut payload);
    db.network().encode(&mut payload);

    // Sort by id so the same state always produces the same bytes
    // (HashMap iteration order is seeded per process).
    let mut stationary: Vec<&StationaryObject> = db.stationary_objects().collect();
    stationary.sort_unstable_by_key(|o| o.id);
    put_u64(&mut payload, stationary.len() as u64);
    for obj in stationary {
        obj.encode(&mut payload);
    }

    let mut moving: Vec<&MovingObject> = db.moving_objects().collect();
    moving.sort_unstable_by_key(|o| o.id);
    put_u64(&mut payload, moving.len() as u64);
    for obj in moving {
        obj.encode(&mut payload);
        let history = db.history_of(obj.id);
        put_u64(&mut payload, history.len() as u64);
        for version in history {
            version.encode(&mut payload);
        }
    }

    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u32(&mut out, SNAPSHOT_VERSION);
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

fn sync_dir(dir: &Path) -> Result<(), WalError> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Writes a snapshot of `db` into `dir` with `lsn` as its high-water
/// mark, atomically (tmp + fsync + rename + dir fsync). Returns the final
/// path. An existing snapshot at the same LSN is replaced — the content
/// is necessarily identical.
///
/// Watermark contract: `db` must reflect **at least** every record with
/// `lsn < snapshot_lsn` — capturing later mutations too is fine, because
/// replay from the watermark re-applies the overlap idempotently
/// (re-delivered updates are no-ops, duplicate registrations re-reject).
/// `DurableDatabase::snapshot` in `modb-server` establishes this by
/// applying mutations before logging them and reading `next_lsn` under
/// the writer lock before capturing state.
///
/// # Errors
///
/// I/O failures.
pub fn write_snapshot(dir: &Path, db: &Database, lsn: u64) -> Result<PathBuf, WalError> {
    fs::create_dir_all(dir)?;
    let bytes = encode_snapshot(db, lsn);
    let final_path = dir.join(snapshot_file_name(lsn));
    let tmp_path = dir.join(format!("{}.tmp", snapshot_file_name(lsn)));
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&tmp_path)?;
    file.write_all(&bytes)?;
    file.sync_data()?;
    drop(file);
    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    Ok(final_path)
}

/// Reads and validates a snapshot file, rebuilding the database through
/// [`Database::from_parts`] (which re-validates and re-indexes every
/// object). Returns the database and the snapshot's LSN high-water mark.
///
/// # Errors
///
/// [`WalError::BadSnapshot`] for magic/version/length/CRC/decode
/// failures; [`WalError::Core`] when the decoded state fails database
/// validation.
pub fn read_snapshot(path: &Path) -> Result<(Database, u64), WalError> {
    let bad = |reason: &'static str| WalError::BadSnapshot {
        path: path.to_path_buf(),
        reason,
    };
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < 20 {
        return Err(bad("short header"));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(bad("bad magic"));
    }
    let mut r = ByteReader::new(&bytes[8..20]);
    let version = r.u32().expect("header length checked");
    let len = r.u32().expect("header length checked") as usize;
    let crc = r.u32().expect("header length checked");
    if version != SNAPSHOT_VERSION {
        return Err(bad("unsupported version"));
    }
    if bytes.len() != 20 + len {
        return Err(bad("length mismatch"));
    }
    let payload = &bytes[20..];
    if crc32(payload) != crc {
        return Err(bad("crc mismatch"));
    }

    let mut r = ByteReader::new(payload);
    let parse = (|| -> Result<DecodedSnapshot, WalError> {
        let lsn = r.u64()?;
        let config = DatabaseConfig::decode(&mut r)?;
        let network = RouteNetwork::decode(&mut r)?;
        let n_stationary = r.u64()? as usize;
        let mut stationary = Vec::with_capacity(n_stationary.min(4096));
        for _ in 0..n_stationary {
            stationary.push(StationaryObject::decode(&mut r)?);
        }
        let n_moving = r.u64()? as usize;
        let mut moving = Vec::with_capacity(n_moving.min(4096));
        for _ in 0..n_moving {
            let obj = MovingObject::decode(&mut r)?;
            let n_versions = r.u64()? as usize;
            let mut versions = Vec::with_capacity(n_versions.min(4096));
            for _ in 0..n_versions {
                versions.push(PositionAttribute::decode(&mut r)?);
            }
            moving.push((obj, versions));
        }
        if !r.is_empty() {
            return Err(WalError::Decode("trailing bytes in snapshot payload"));
        }
        Ok((lsn, config, network, stationary, moving))
    })();
    let (lsn, config, network, stationary, moving) =
        parse.map_err(|_| bad("undecodable payload"))?;
    let db = Database::from_parts(network, config, stationary, moving)?;
    Ok((db, lsn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{ObjectId, PolicyDescriptor, UpdateMessage, UpdatePosition};
    use modb_geom::Point;
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("modb-wal-snapshot-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_db() -> Database {
        let network = RouteNetwork::from_routes([Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap()])
        .unwrap();
        let mut db = Database::new(network, DatabaseConfig::default());
        db.insert_stationary(StationaryObject::new(
            ObjectId(100),
            "depot",
            Point::new(12.0, 0.0),
        ))
        .unwrap();
        for id in 1..=3u64 {
            db.register_moving(MovingObject {
                id: ObjectId(id),
                name: format!("veh-{id}"),
                attr: modb_core::PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(10.0 * id as f64, 0.0),
                    start_arc: 10.0 * id as f64,
                    direction: Direction::Forward,
                    speed: 1.0,
                    policy: PolicyDescriptor::CostBased {
                        kind: BoundKind::Immediate,
                        update_cost: 5.0,
                    },
                },
                max_speed: 1.5,
                trip_end: None,
            })
            .unwrap();
        }
        db.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(14.0), 0.5),
        )
        .unwrap();
        db
    }

    #[test]
    fn names_round_trip() {
        assert_eq!(parse_snapshot_name(&snapshot_file_name(42)), Some(42));
        assert_eq!(parse_snapshot_name("snap-42.snap"), None);
        assert_eq!(parse_snapshot_name("wal-00000000000000000042.log"), None);
        assert_eq!(
            parse_snapshot_name("snap-00000000000000000042.snap.tmp"),
            None,
            "in-flight tmp files are not snapshots"
        );
    }

    #[test]
    fn snapshot_round_trip_preserves_queries() {
        let dir = tmp("round-trip");
        let db = sample_db();
        let path = write_snapshot(&dir, &db, 7).unwrap();
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            snapshot_file_name(7)
        );
        let (restored, lsn) = read_snapshot(&path).unwrap();
        assert_eq!(lsn, 7);
        assert_eq!(restored.moving_count(), db.moving_count());
        assert_eq!(restored.stationary_count(), db.stationary_count());
        assert_eq!(restored.history_of(ObjectId(1)), db.history_of(ObjectId(1)));
        for t in [0.0, 5.0, 9.0] {
            for id in 1..=3u64 {
                assert_eq!(
                    restored.position_of(ObjectId(id), t).unwrap(),
                    db.position_of(ObjectId(id), t).unwrap()
                );
            }
        }
        assert_eq!(
            restored.position_of_as_of(ObjectId(1), 3.0).unwrap(),
            db.position_of_as_of(ObjectId(1), 3.0).unwrap()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn list_finds_latest() {
        let dir = tmp("list");
        let db = sample_db();
        write_snapshot(&dir, &db, 3).unwrap();
        write_snapshot(&dir, &db, 11).unwrap();
        // A stray tmp file (simulated crash mid-write) is ignored.
        std::fs::write(dir.join("snap-00000000000000000099.snap.tmp"), b"junk").unwrap();
        let listed = list_snapshots(&dir).unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].0, 3);
        assert_eq!(listed[1].0, 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_detected() {
        let dir = tmp("corrupt");
        let db = sample_db();
        let path = write_snapshot(&dir, &db, 0).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Truncated.
        std::fs::write(&path, &good[..good.len() - 1]).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(WalError::BadSnapshot {
                reason: "length mismatch",
                ..
            })
        ));
        // Flipped payload byte.
        let mut bad = good.clone();
        let n = bad.len();
        bad[n - 5] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(WalError::BadSnapshot {
                reason: "crc mismatch",
                ..
            })
        ));
        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(WalError::BadSnapshot {
                reason: "bad magic",
                ..
            })
        ));
        // Short file.
        std::fs::write(&path, b"MODB").unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(WalError::BadSnapshot {
                reason: "short header",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn deterministic_bytes() {
        let db = sample_db();
        assert_eq!(encode_snapshot(&db, 5), encode_snapshot(&db, 5));
    }
}
