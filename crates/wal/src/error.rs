//! Errors raised by the durability layer.

use std::fmt;
use std::path::PathBuf;

use modb_core::CoreError;

/// Errors raised by the write-ahead log, snapshots, and recovery.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// A value could not be decoded from its binary form (truncated
    /// buffer, unknown tag, invalid geometry, …).
    Decode(&'static str),
    /// A log segment is damaged somewhere other than its tail — recovery
    /// refuses to silently skip interior records.
    CorruptSegment {
        /// The damaged segment file.
        path: PathBuf,
        /// Byte offset of the damage.
        offset: u64,
        /// What was wrong.
        reason: &'static str,
    },
    /// A snapshot file failed its magic/version/CRC/decode checks.
    BadSnapshot {
        /// The rejected snapshot file.
        path: PathBuf,
        /// What was wrong.
        reason: &'static str,
    },
    /// Recovery found no usable snapshot in the directory (the log alone
    /// cannot seed the route network and configuration).
    NoSnapshot(PathBuf),
    /// Two consecutive segments do not join up (a whole segment file is
    /// missing or misnamed).
    SegmentGap {
        /// LSN the previous segment ended at.
        expected: u64,
        /// Start LSN of the next segment found.
        found: u64,
    },
    /// The directory already holds a log (`create` refuses to clobber it;
    /// use recovery + `resume` instead).
    AlreadyExists(PathBuf),
    /// Rebuilding the database from a snapshot failed validation.
    Core(CoreError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Decode(what) => write!(f, "wal decode error: {what}"),
            WalError::CorruptSegment {
                path,
                offset,
                reason,
            } => write!(
                f,
                "corrupt wal segment {} at byte {offset}: {reason}",
                path.display()
            ),
            WalError::BadSnapshot { path, reason } => {
                write!(f, "bad snapshot {}: {reason}", path.display())
            }
            WalError::NoSnapshot(dir) => {
                write!(f, "no usable snapshot in {}", dir.display())
            }
            WalError::SegmentGap { expected, found } => write!(
                f,
                "wal segment gap: expected a segment starting at lsn {expected}, found {found}"
            ),
            WalError::AlreadyExists(dir) => write!(
                f,
                "wal already exists in {} (recover and resume instead of create)",
                dir.display()
            ),
            WalError::Core(e) => write!(f, "snapshot restore error: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io(e) => Some(e),
            WalError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<CoreError> for WalError {
    fn from(e: CoreError) -> Self {
        WalError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: WalError = std::io::Error::other("disk on fire").into();
        assert!(e.to_string().contains("disk on fire"));
        assert!(e.source().is_some());
        let e = WalError::SegmentGap {
            expected: 10,
            found: 20,
        };
        assert!(e.to_string().contains("lsn 10"));
        assert!(e.source().is_none());
        let e = WalError::Decode("bad tag");
        assert!(e.to_string().contains("bad tag"));
    }
}
