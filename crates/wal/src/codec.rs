//! Hand-rolled binary codecs for the DBMS types that flow through the log
//! and snapshots.
//!
//! The format is little-endian, length-prefixed where variable-sized, and
//! deliberately boring: no compression, no varints, no self-description.
//! Integrity is the frame CRC's job ([`crate::crc32`]); versioning is the
//! container header's job (segment/snapshot magic + version). `f64`s are
//! stored as raw IEEE-754 bits, so encode→decode round-trips are exact —
//! including NaN payloads — which the property tests rely on.

use modb_core::{
    BandConfig, BandSpec, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor,
    PositionAttribute, StationaryObject, UpdateMessage, UpdatePosition, MAX_BANDS,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};

use crate::error::WalError;

/// Cursor over a byte buffer being decoded.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WalError> {
        if self.remaining() < n {
            return Err(WalError::Decode(what));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1, "u8 underflow")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WalError> {
        let b = self.take(4, "u32 underflow")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WalError> {
        let b = self.take(8, "u64 underflow")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` stored as raw IEEE-754 bits.
    pub fn f64(&mut self) -> Result<f64, WalError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, WalError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len, "string underflow")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WalError::Decode("invalid utf-8"))
    }
}

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as raw IEEE-754 bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `u32`-length-prefixed UTF-8 string.
pub fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends an LEB128 varint (7 bits per byte, little-endian groups,
/// high bit = continuation). Small values — the common case for the v2
/// delta stream — cost one byte.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads an LEB128 varint written by [`put_varint`].
///
/// # Errors
///
/// [`WalError::Decode`] on buffer underflow or a varint longer than the
/// 10 bytes a `u64` can need.
pub fn read_varint(r: &mut ByteReader<'_>) -> Result<u64, WalError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = r.u8().map_err(|_| WalError::Decode("varint underflow"))?;
        if shift == 63 && b > 1 {
            return Err(WalError::Decode("varint overflow"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(WalError::Decode("varint overflow"));
        }
    }
}

/// ZigZag-maps a signed value so small magnitudes (of either sign)
/// become small varints: 0, -1, 1, -2, … → 0, 1, 2, 3, …
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A type with a binary wire form.
pub trait WalCodec: Sized {
    /// Appends the binary form to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value from the reader.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError>;
}

impl WalCodec for Point {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.x);
        put_f64(out, self.y);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        Ok(Point::new(r.f64()?, r.f64()?))
    }
}

impl WalCodec for RouteId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        Ok(RouteId(r.u64()?))
    }
}

impl WalCodec for ObjectId {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.0);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        Ok(ObjectId(r.u64()?))
    }
}

impl WalCodec for Direction {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.to_bit());
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        match r.u8()? {
            0 => Ok(Direction::Forward),
            1 => Ok(Direction::Backward),
            _ => Err(WalError::Decode("bad direction tag")),
        }
    }
}

impl WalCodec for BoundKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            BoundKind::Delayed => 0,
            BoundKind::Immediate => 1,
        });
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        match r.u8()? {
            0 => Ok(BoundKind::Delayed),
            1 => Ok(BoundKind::Immediate),
            _ => Err(WalError::Decode("bad bound-kind tag")),
        }
    }
}

impl WalCodec for PolicyDescriptor {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            PolicyDescriptor::CostBased { kind, update_cost } => {
                out.push(0);
                kind.encode(out);
                put_f64(out, update_cost);
            }
            PolicyDescriptor::FixedBound { bound } => {
                out.push(1);
                put_f64(out, bound);
            }
            PolicyDescriptor::Unbounded => out.push(2),
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        match r.u8()? {
            0 => Ok(PolicyDescriptor::CostBased {
                kind: BoundKind::decode(r)?,
                update_cost: r.f64()?,
            }),
            1 => Ok(PolicyDescriptor::FixedBound { bound: r.f64()? }),
            2 => Ok(PolicyDescriptor::Unbounded),
            _ => Err(WalError::Decode("bad policy tag")),
        }
    }
}

impl WalCodec for UpdatePosition {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            UpdatePosition::Arc(a) => {
                out.push(0);
                put_f64(out, a);
            }
            UpdatePosition::Coordinates(p) => {
                out.push(1);
                p.encode(out);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        match r.u8()? {
            0 => Ok(UpdatePosition::Arc(r.f64()?)),
            1 => Ok(UpdatePosition::Coordinates(Point::decode(r)?)),
            _ => Err(WalError::Decode("bad update-position tag")),
        }
    }
}

fn put_option<T: WalCodec>(out: &mut Vec<u8>, v: &Option<T>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            v.encode(out);
        }
    }
}

fn get_option<T: WalCodec>(r: &mut ByteReader<'_>) -> Result<Option<T>, WalError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(T::decode(r)?)),
        _ => Err(WalError::Decode("bad option tag")),
    }
}

/// `Option<f64>` helper (no blanket impl for `f64` to keep the primitive
/// helpers free-standing).
fn put_option_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        None => out.push(0),
        Some(v) => {
            out.push(1);
            put_f64(out, v);
        }
    }
}

fn get_option_f64(r: &mut ByteReader<'_>) -> Result<Option<f64>, WalError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.f64()?)),
        _ => Err(WalError::Decode("bad option tag")),
    }
}

impl WalCodec for UpdateMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.time);
        self.position.encode(out);
        put_f64(out, self.speed);
        put_option(out, &self.route);
        put_option(out, &self.direction);
        put_option(out, &self.policy);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        Ok(UpdateMessage {
            time: r.f64()?,
            position: UpdatePosition::decode(r)?,
            speed: r.f64()?,
            route: get_option(r)?,
            direction: get_option(r)?,
            policy: get_option(r)?,
        })
    }
}

impl WalCodec for PositionAttribute {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.start_time);
        self.route.encode(out);
        self.start_position.encode(out);
        put_f64(out, self.start_arc);
        self.direction.encode(out);
        put_f64(out, self.speed);
        self.policy.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        Ok(PositionAttribute {
            start_time: r.f64()?,
            route: RouteId::decode(r)?,
            start_position: Point::decode(r)?,
            start_arc: r.f64()?,
            direction: Direction::decode(r)?,
            speed: r.f64()?,
            policy: PolicyDescriptor::decode(r)?,
        })
    }
}

impl WalCodec for MovingObject {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        put_string(out, &self.name);
        self.attr.encode(out);
        put_f64(out, self.max_speed);
        put_option_f64(out, self.trip_end);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        Ok(MovingObject {
            id: ObjectId::decode(r)?,
            name: r.string()?,
            attr: PositionAttribute::decode(r)?,
            max_speed: r.f64()?,
            trip_end: get_option_f64(r)?,
        })
    }
}

impl WalCodec for StationaryObject {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        put_string(out, &self.name);
        self.position.encode(out);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        Ok(StationaryObject::new(
            ObjectId::decode(r)?,
            r.string()?,
            Point::decode(r)?,
        ))
    }
}

impl WalCodec for Route {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id().encode(out);
        put_string(out, self.name());
        let vertices = self.polyline().vertices();
        put_u32(out, vertices.len() as u32);
        for v in vertices {
            v.encode(out);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        let id = RouteId::decode(r)?;
        let name = r.string()?;
        let n = r.u32()? as usize;
        // Cap pre-allocation: a corrupt count must not OOM before the
        // per-point underflow checks catch it.
        let mut vertices = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            vertices.push(Point::decode(r)?);
        }
        Route::from_vertices(id, name, vertices)
            .map_err(|_| WalError::Decode("invalid route geometry"))
    }
}

impl WalCodec for RouteNetwork {
    fn encode(&self, out: &mut Vec<u8>) {
        put_u32(out, self.len() as u32);
        for route in self.iter() {
            route.encode(out);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        let n = r.u32()? as usize;
        let mut network = RouteNetwork::new();
        for _ in 0..n {
            network
                .insert(Route::decode(r)?)
                .map_err(|_| WalError::Decode("duplicate route in network"))?;
        }
        Ok(network)
    }
}

impl WalCodec for BandConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        let bands = self.bands();
        put_u32(out, bands.len() as u32);
        for band in bands {
            put_f64(out, band.max_speed);
            put_f64(out, band.slab_minutes);
            put_f64(out, band.fine_horizon);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        let n = r.u32()? as usize;
        if n == 0 || n > MAX_BANDS {
            return Err(WalError::Decode("band count out of range"));
        }
        let mut specs = [BandSpec {
            max_speed: f64::INFINITY,
            slab_minutes: 1.0,
            fine_horizon: f64::INFINITY,
        }; MAX_BANDS];
        for spec in specs.iter_mut().take(n) {
            spec.max_speed = r.f64()?;
            spec.slab_minutes = r.f64()?;
            spec.fine_horizon = r.f64()?;
        }
        BandConfig::from_bands(&specs[..n]).map_err(|_| WalError::Decode("invalid band config"))
    }
}

impl WalCodec for DatabaseConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        put_f64(out, self.map_match_tolerance);
        put_f64(out, self.default_horizon);
        self.bands.encode(out);
        put_f64(out, self.refinement_dt);
        put_u64(out, self.history_capacity as u64);
        put_u64(out, self.change_log_capacity as u64);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WalError> {
        Ok(DatabaseConfig {
            map_match_tolerance: r.f64()?,
            default_horizon: r.f64()?,
            bands: BandConfig::decode(r)?,
            refinement_dt: r.f64()?,
            history_capacity: r.u64()? as usize,
            change_log_capacity: r.u64()? as usize,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WalCodec + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        let back = T::decode(&mut r).unwrap();
        assert_eq!(back, v);
        assert!(r.is_empty(), "trailing bytes after {v:?}");
    }

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX);
        put_f64(&mut buf, -0.0);
        put_string(&mut buf, "véhicule");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.string().unwrap(), "véhicule");
        assert!(r.is_empty());
    }

    #[test]
    fn underflow_errors() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(r.u32().is_err());
        let mut r = ByteReader::new(&[5, 0, 0, 0, b'a']);
        assert!(r.string().is_err(), "declared length exceeds buffer");
    }

    #[test]
    fn domain_types_round_trip() {
        round_trip(Point::new(1.5, -2.5));
        round_trip(RouteId(42));
        round_trip(ObjectId(7));
        round_trip(Direction::Backward);
        round_trip(PolicyDescriptor::CostBased {
            kind: BoundKind::Immediate,
            update_cost: 5.0,
        });
        round_trip(PolicyDescriptor::FixedBound { bound: 0.25 });
        round_trip(PolicyDescriptor::Unbounded);
        round_trip(UpdatePosition::Arc(3.25));
        round_trip(UpdatePosition::Coordinates(Point::new(0.0, -1.0)));
        round_trip(
            UpdateMessage::route_change(
                6.0,
                RouteId(3),
                UpdatePosition::Coordinates(Point::new(1.0, 2.0)),
                Direction::Backward,
                0.5,
            )
            .with_policy(PolicyDescriptor::Unbounded),
        );
        round_trip(UpdateMessage::basic(1.0, UpdatePosition::Arc(2.0), 3.0));
        round_trip(PositionAttribute {
            start_time: 10.0,
            route: RouteId(1),
            start_position: Point::new(3.0, 4.0),
            start_arc: 5.0,
            direction: Direction::Forward,
            speed: 0.9,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Delayed,
                update_cost: 2.0,
            },
        });
        round_trip(MovingObject {
            id: ObjectId(9),
            name: "veh-09".into(),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: Point::new(0.0, 0.0),
                start_arc: 0.0,
                direction: Direction::Forward,
                speed: 1.0,
                policy: PolicyDescriptor::Unbounded,
            },
            max_speed: 1.5,
            trip_end: Some(240.0),
        });
        round_trip(StationaryObject::new(
            ObjectId(1),
            "depot",
            Point::new(1.0, 2.0),
        ));
    }

    #[test]
    fn route_and_network_round_trip() {
        let route = Route::from_vertices(
            RouteId(3),
            "bent",
            vec![
                Point::new(0.0, 0.0),
                Point::new(5.0, 5.0),
                Point::new(10.0, 0.0),
            ],
        )
        .unwrap();
        round_trip(route.clone());
        let network = RouteNetwork::from_routes([
            route,
            Route::from_vertices(
                RouteId(4),
                "straight",
                vec![Point::new(0.0, 1.0), Point::new(9.0, 1.0)],
            )
            .unwrap(),
        ])
        .unwrap();
        let mut buf = Vec::new();
        network.encode(&mut buf);
        let back = RouteNetwork::decode(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.route_ids(), network.route_ids());
        assert_eq!(
            back.get(RouteId(3)).unwrap(),
            network.get(RouteId(3)).unwrap()
        );
    }

    #[test]
    fn config_round_trip() {
        round_trip(DatabaseConfig::default());
        round_trip(DatabaseConfig {
            map_match_tolerance: 0.1,
            default_horizon: 90.0,
            bands: BandConfig::single(2.0),
            refinement_dt: 0.5,
            history_capacity: 7,
            change_log_capacity: 64,
        });
        // Multi-band layouts (incl. per-band horizons) round-trip too.
        round_trip(DatabaseConfig {
            bands: BandConfig::speed_scaled(&[0.5, 1.5], 5.0)
                .unwrap()
                .with_band_horizon(2, 20.0),
            ..DatabaseConfig::default()
        });
    }

    #[test]
    fn band_config_rejects_malformed_bytes() {
        // Zero bands.
        let mut buf = Vec::new();
        put_u32(&mut buf, 0);
        assert!(BandConfig::decode(&mut ByteReader::new(&buf)).is_err());
        // Too many bands.
        let mut buf = Vec::new();
        put_u32(&mut buf, MAX_BANDS as u32 + 1);
        assert!(BandConfig::decode(&mut ByteReader::new(&buf)).is_err());
        // Non-ascending edges.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        for edge in [2.0, f64::INFINITY] {
            put_f64(&mut buf, edge);
            put_f64(&mut buf, 5.0);
            put_f64(&mut buf, f64::INFINITY);
        }
        assert!(BandConfig::decode(&mut ByteReader::new(&buf)).is_ok());
        buf.clear();
        put_u32(&mut buf, 2);
        for edge in [2.0, 1.0] {
            put_f64(&mut buf, edge);
            put_f64(&mut buf, 5.0);
            put_f64(&mut buf, f64::INFINITY);
        }
        assert!(BandConfig::decode(&mut ByteReader::new(&buf)).is_err());
    }

    #[test]
    fn nan_time_round_trips_bit_exact() {
        let msg = UpdateMessage::basic(f64::NAN, UpdatePosition::Arc(1.0), 1.0);
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let back = UpdateMessage::decode(&mut ByteReader::new(&buf)).unwrap();
        assert_eq!(back.time.to_bits(), msg.time.to_bits());
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(Direction::decode(&mut ByteReader::new(&[9])).is_err());
        assert!(PolicyDescriptor::decode(&mut ByteReader::new(&[9])).is_err());
        assert!(UpdatePosition::decode(&mut ByteReader::new(&[9])).is_err());
        assert!(BoundKind::decode(&mut ByteReader::new(&[9])).is_err());
    }

    #[test]
    fn varints_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert!(buf.len() <= 10);
            let mut r = ByteReader::new(&buf);
            assert_eq!(read_varint(&mut r).unwrap(), v);
            assert!(r.is_empty());
        }
        assert_eq!(
            {
                let mut b = Vec::new();
                put_varint(&mut b, 0);
                b.len()
            },
            1,
            "small values cost one byte"
        );
        // Underflow and over-long encodings are rejected.
        assert!(read_varint(&mut ByteReader::new(&[0x80])).is_err());
        assert!(read_varint(&mut ByteReader::new(&[0xff; 11])).is_err());
    }

    #[test]
    fn zigzag_round_trips_and_orders_by_magnitude() {
        for v in [0i64, -1, 1, -2, 2, 1_000, -1_000, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert!(zigzag(-1) < zigzag(2));
        assert_eq!(zigzag(0), 0);
    }
}
