//! v2 log blocks: delta-encoded, optionally LZ-compressed record groups.
//!
//! A v2 segment stores **blocks** where a v1 segment stores records: each
//! CRC frame's payload is one block holding `record_count` records. The
//! block payload is
//!
//! ```text
//! [format: u8]                 0 = plain delta stream, 1 = LZ-compressed
//! [record_count: varint]
//! [uncompressed_len: varint]   — format 1 only
//! [body]                       — the (possibly compressed) delta stream
//! ```
//!
//! **Delta stream.** Position updates dominate the log and are highly
//! repetitive — the same object ids, nearby floats, monotone timestamps
//! (W1 measured ~45 payload bytes each). A basic `Update` (no route /
//! direction / policy change) is therefore stored as a *compact* record:
//! the object id as a zigzag varint delta against the previous record's
//! id, and `time` / position / `speed` as zigzag varints of the wrapping
//! difference of IEEE-754 **bit patterns** against the encoder context —
//! the last values seen *for that object* in this block, falling back to
//! the last values in the stream for an object's first appearance (fleet
//! updates are temporally correlated across objects, so the stream-level
//! fallback is usually a near-zero delta too). Bit-pattern arithmetic
//! makes the round trip exact, NaN payloads included. Everything else
//! (registrations, route inserts, complex updates) is stored *verbatim*:
//! a tag, a length varint, and the unchanged v1 payload.
//!
//! **Restart points.** The encoder context lives and dies with the
//! block: every block boundary is a restart point. Recovery, `compact`,
//! and the replication wire can therefore treat a block as a
//! self-contained unit — decode it with zero history, truncate a torn
//! tail at a frame (= block) boundary, or ship the frame bytes verbatim
//! to a follower that decompresses on apply.

use std::collections::HashMap;

use modb_core::{UpdateMessage, UpdatePosition};

use crate::codec::{put_varint, read_varint, unzigzag, zigzag, ByteReader};
use crate::crc32::crc32;
use crate::error::WalError;
use crate::lz;
use crate::record::{WalRecord, MAX_RECORD_BYTES};

/// Block body is a plain delta stream.
pub const BLOCK_FORMAT_PLAIN: u8 = 0;
/// Block body is an LZ-compressed delta stream (see [`crate::lz`]).
pub const BLOCK_FORMAT_LZ: u8 = 1;

const REC_VERBATIM: u8 = 0;
const REC_COMPACT_ARC: u8 = 1;
const REC_COMPACT_COORDS: u8 = 2;

/// Per-object (and stream-fallback) delta context: the raw bit patterns
/// of the last time / position / speed values.
#[derive(Debug, Clone, Copy, Default)]
struct Ctx {
    time: u64,
    p0: u64,
    p1: u64,
    speed: u64,
}

fn delta(cur: u64, prev: u64) -> u64 {
    zigzag(cur.wrapping_sub(prev) as i64)
}

fn undelta(d: u64, prev: u64) -> u64 {
    prev.wrapping_add(unzigzag(d) as u64)
}

/// Appends the delta-stream form of `records` to `out`. The context
/// starts empty: the stream is self-contained (a restart point).
fn encode_stream(records: &[WalRecord], out: &mut Vec<u8>) {
    let mut last_id = 0u64;
    let mut last = Ctx::default();
    let mut per_object: HashMap<u64, Ctx> = HashMap::new();
    let mut scratch = Vec::new();
    for rec in records {
        match rec {
            WalRecord::Update { id, msg }
                if msg.route.is_none() && msg.direction.is_none() && msg.policy.is_none() =>
            {
                let ctx = per_object.get(&id.0).copied().unwrap_or(last);
                let (tag, p0, p1) = match msg.position {
                    UpdatePosition::Arc(arc) => (REC_COMPACT_ARC, arc.to_bits(), ctx.p1),
                    UpdatePosition::Coordinates(p) => {
                        (REC_COMPACT_COORDS, p.x.to_bits(), p.y.to_bits())
                    }
                };
                out.push(tag);
                put_varint(out, delta(id.0, last_id));
                put_varint(out, delta(msg.time.to_bits(), ctx.time));
                put_varint(out, delta(p0, ctx.p0));
                if tag == REC_COMPACT_COORDS {
                    put_varint(out, delta(p1, ctx.p1));
                }
                put_varint(out, delta(msg.speed.to_bits(), ctx.speed));
                let cur = Ctx {
                    time: msg.time.to_bits(),
                    p0,
                    p1,
                    speed: msg.speed.to_bits(),
                };
                per_object.insert(id.0, cur);
                last = cur;
                last_id = id.0;
            }
            _ => {
                scratch.clear();
                rec.encode_payload(&mut scratch);
                out.push(REC_VERBATIM);
                put_varint(out, scratch.len() as u64);
                out.extend_from_slice(&scratch);
            }
        }
    }
}

/// Decodes a delta stream of exactly `count` records; mirrors
/// [`encode_stream`]'s context rules.
fn decode_stream(body: &[u8], count: u64) -> Result<Vec<WalRecord>, WalError> {
    let mut records = Vec::with_capacity((count as usize).min(body.len()));
    let mut r = ByteReader::new(body);
    let mut last_id = 0u64;
    let mut last = Ctx::default();
    let mut per_object: HashMap<u64, Ctx> = HashMap::new();
    for _ in 0..count {
        let tag = r.u8()?;
        match tag {
            REC_VERBATIM => {
                let len = read_varint(&mut r)? as usize;
                if len > r.remaining() {
                    return Err(WalError::Decode("verbatim record overrun"));
                }
                let mut payload = vec![0u8; len];
                for b in payload.iter_mut() {
                    *b = r.u8().expect("length checked");
                }
                records.push(WalRecord::decode_payload(&payload)?);
            }
            REC_COMPACT_ARC | REC_COMPACT_COORDS => {
                let id = undelta(read_varint(&mut r)?, last_id);
                let ctx = per_object.get(&id).copied().unwrap_or(last);
                let time = undelta(read_varint(&mut r)?, ctx.time);
                let p0 = undelta(read_varint(&mut r)?, ctx.p0);
                let p1 = if tag == REC_COMPACT_COORDS {
                    undelta(read_varint(&mut r)?, ctx.p1)
                } else {
                    ctx.p1
                };
                let speed = undelta(read_varint(&mut r)?, ctx.speed);
                let position = if tag == REC_COMPACT_ARC {
                    UpdatePosition::Arc(f64::from_bits(p0))
                } else {
                    UpdatePosition::Coordinates(modb_geom::Point::new(
                        f64::from_bits(p0),
                        f64::from_bits(p1),
                    ))
                };
                records.push(WalRecord::Update {
                    id: modb_core::ObjectId(id),
                    msg: UpdateMessage::basic(
                        f64::from_bits(time),
                        position,
                        f64::from_bits(speed),
                    ),
                });
                let cur = Ctx {
                    time,
                    p0,
                    p1,
                    speed,
                };
                per_object.insert(id, cur);
                last = cur;
                last_id = id;
            }
            _ => return Err(WalError::Decode("unknown block record tag")),
        }
    }
    if !r.is_empty() {
        return Err(WalError::Decode("trailing bytes in block body"));
    }
    Ok(records)
}

/// Encodes `records` as one block payload (no framing). With `compress`,
/// the LZ stage is applied and kept only when it actually shrinks the
/// stream — the format byte is the pluggability seam.
pub fn encode_block(records: &[WalRecord], compress: bool, out: &mut Vec<u8>) {
    let mut stream = Vec::new();
    encode_stream(records, &mut stream);
    if compress {
        let mut packed = Vec::new();
        lz::compress(&stream, &mut packed);
        // Header overhead of format 1 is the uncompressed_len varint.
        if packed.len() + 10 < stream.len() {
            out.push(BLOCK_FORMAT_LZ);
            put_varint(out, records.len() as u64);
            put_varint(out, stream.len() as u64);
            out.extend_from_slice(&packed);
            return;
        }
    }
    out.push(BLOCK_FORMAT_PLAIN);
    put_varint(out, records.len() as u64);
    out.extend_from_slice(&stream);
}

/// Decodes one block payload back into its records.
///
/// # Errors
///
/// [`WalError::Decode`] on any malformed byte — the caller treats a bad
/// block exactly like a bad v1 frame payload (torn tail / corruption).
pub fn decode_block(payload: &[u8]) -> Result<Vec<WalRecord>, WalError> {
    let mut r = ByteReader::new(payload);
    let format = r.u8()?;
    let count = read_varint(&mut r)?;
    let body = &payload[payload.len() - r.remaining()..];
    match format {
        BLOCK_FORMAT_PLAIN => decode_stream(body, count),
        BLOCK_FORMAT_LZ => {
            let mut r = ByteReader::new(body);
            let uncompressed = read_varint(&mut r)? as usize;
            if uncompressed > MAX_RECORD_BYTES as usize {
                return Err(WalError::Decode("implausible block length"));
            }
            let packed = &body[body.len() - r.remaining()..];
            let stream = lz::decompress(packed, uncompressed)?;
            decode_stream(&stream, count)
        }
        _ => Err(WalError::Decode("unknown block format")),
    }
}

/// Reads the record count from a block payload without decompressing it
/// — what the tailer needs to account LSNs while shipping raw frames.
///
/// # Errors
///
/// [`WalError::Decode`] when the header bytes are malformed.
pub fn peek_block_count(payload: &[u8]) -> Result<u64, WalError> {
    let mut r = ByteReader::new(payload);
    let format = r.u8()?;
    if format != BLOCK_FORMAT_PLAIN && format != BLOCK_FORMAT_LZ {
        return Err(WalError::Decode("unknown block format"));
    }
    read_varint(&mut r)
}

/// Appends the CRC frame (`len + crc + payload`) for one block payload —
/// the same framing v1 records use, so torn-tail detection is shared.
pub fn frame_block(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// v2 analogue of [`crate::decode_frames`]: decodes consecutive *block*
/// frames from `buf`, returning the records of every whole valid block,
/// the byte length of the valid prefix, and how decoding ended. A block
/// that fails to decode behind a valid CRC still ends the valid prefix
/// at its frame boundary — restart points make truncation safe there.
pub fn decode_block_frames(buf: &[u8]) -> (Vec<WalRecord>, usize, crate::record::FrameEnd) {
    use crate::record::{split_frame, FrameEnd};
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        match split_frame(&buf[pos..]) {
            Ok(None) => return (records, pos, FrameEnd::Clean),
            Ok(Some((payload, frame_len))) => match decode_block(payload) {
                Ok(recs) => {
                    records.extend(recs);
                    pos += frame_len;
                }
                Err(_) => {
                    return (
                        records,
                        pos,
                        FrameEnd::Torn {
                            reason: "undecodable block",
                        },
                    )
                }
            },
            Err(reason) => return (records, pos, FrameEnd::Torn { reason }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{ObjectId, UpdateMessage, UpdatePosition};

    fn update(id: u64, time: f64, arc: f64, speed: f64) -> WalRecord {
        WalRecord::Update {
            id: ObjectId(id),
            msg: UpdateMessage::basic(time, UpdatePosition::Arc(arc), speed),
        }
    }

    fn round_trip(records: &[WalRecord]) -> usize {
        for compress in [false, true] {
            let mut payload = Vec::new();
            encode_block(records, compress, &mut payload);
            assert_eq!(peek_block_count(&payload).unwrap(), records.len() as u64);
            assert_eq!(decode_block(&payload).unwrap(), records);
        }
        let mut payload = Vec::new();
        encode_block(records, true, &mut payload);
        payload.len()
    }

    #[test]
    fn empty_and_single_record_blocks() {
        round_trip(&[]);
        round_trip(&[update(3, 1.0, 0.5, 0.7)]);
        round_trip(&[WalRecord::RemoveMoving(ObjectId(9))]);
    }

    #[test]
    fn fleet_round_blocks_shrink_hard() {
        // One W1-style round: many objects, identical time/arc/speed.
        let records: Vec<WalRecord> = (0..64).map(|i| update(i, 0.01, 0.5, 0.7)).collect();
        let v1_bytes: usize = records
            .iter()
            .map(|r| {
                let mut f = Vec::new();
                r.encode_frame(&mut f);
                f.len()
            })
            .sum();
        let v2_bytes = round_trip(&records) + 8; // plus its one frame header
        assert!(
            v2_bytes * 2 < v1_bytes,
            "block must at least halve the bytes: {v2_bytes} vs {v1_bytes}"
        );
    }

    #[test]
    fn per_object_context_and_interleavings() {
        // Two objects interleaved with different trajectories: deltas
        // must track per object, not just the stream tail.
        let mut records = Vec::new();
        for round in 0..10 {
            records.push(update(1, round as f64, round as f64 * 2.0, 1.0));
            records.push(update(2, round as f64 + 0.5, 100.0 - round as f64, 2.0));
        }
        round_trip(&records);
    }

    #[test]
    fn out_of_order_times_and_nan_round_trip_bit_exact() {
        let records = vec![
            update(1, 5.0, 1.0, 1.0),
            update(2, 3.0, 2.0, 1.0), // earlier time, different object
            update(1, f64::NAN, -0.0, f64::INFINITY),
            WalRecord::Update {
                id: ObjectId(1),
                msg: UpdateMessage::basic(
                    6.0,
                    UpdatePosition::Coordinates(modb_geom::Point::new(1.5, -2.5)),
                    0.0,
                ),
            },
        ];
        for compress in [false, true] {
            let mut payload = Vec::new();
            encode_block(&records, compress, &mut payload);
            let back = decode_block(&payload).unwrap();
            match (&back[2], &records[2]) {
                (WalRecord::Update { msg: a, .. }, WalRecord::Update { msg: b, .. }) => {
                    assert_eq!(a.time.to_bits(), b.time.to_bits());
                    assert_eq!(a.speed.to_bits(), b.speed.to_bits());
                }
                _ => unreachable!(),
            }
            assert_eq!(back[3], records[3]);
        }
    }

    #[test]
    fn complex_records_fall_back_to_verbatim() {
        let records = vec![
            update(1, 1.0, 1.0, 1.0),
            WalRecord::Update {
                id: ObjectId(1),
                msg: UpdateMessage {
                    route: Some(modb_routes::RouteId(4)),
                    ..UpdateMessage::basic(2.0, UpdatePosition::Arc(0.0), 1.0)
                },
            },
            update(1, 3.0, 2.0, 1.0),
        ];
        round_trip(&records);
    }

    #[test]
    fn corrupt_blocks_are_rejected() {
        let records: Vec<WalRecord> = (0..32).map(|i| update(i, 1.0, 0.5, 0.7)).collect();
        for compress in [false, true] {
            let mut payload = Vec::new();
            encode_block(&records, compress, &mut payload);
            for cut in 0..payload.len() {
                assert!(decode_block(&payload[..cut]).is_err(), "cut {cut}");
            }
        }
        assert!(decode_block(&[]).is_err());
        assert!(decode_block(&[9, 1]).is_err(), "unknown format");
        assert!(peek_block_count(&[9, 1]).is_err());
    }
}
