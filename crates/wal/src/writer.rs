//! The append path: [`WalWriter`], fsync policies, segment rotation, and
//! the lock-free-friendly [`WalBatch`] buffer.
//!
//! The intended concurrency shape (used by `modb-server`'s ingest
//! workers): each worker owns a private [`WalBatch`] and encodes records
//! into it without any locking; the shared [`SharedWal`] mutex is taken
//! only to hand over a whole batch of pre-framed bytes. Encoding and CRC
//! work therefore happen outside the lock, and the critical section is a
//! single `write_all`.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::block::{encode_block, frame_block};
use crate::error::WalError;
use crate::record::WalRecord;
use crate::segment::{
    encode_header, list_segments, read_segment_version, segment_file_name, SEGMENT_HEADER_BYTES,
    SEGMENT_VERSION, SEGMENT_VERSION_V2,
};

/// When the writer calls `fsync` on the current segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append call (a batch counts as one call). Maximum
    /// durability: an accepted record survives any crash.
    Always,
    /// Sync once at least `n` records have accumulated since the last
    /// sync. A crash loses at most the unsynced window (`n` treated as 1
    /// when 0).
    EveryN(u64),
    /// Never sync explicitly; the OS flushes on its own schedule. A crash
    /// may lose everything since the last rotation.
    Never,
}

/// On-disk format for *newly created* segments. A resumed writer keeps
/// appending to an existing tail segment in that segment's own format
/// until rotation, so a log upgraded in place is a v1 prefix followed by
/// v2 segments — exactly what recovery and the tailer expect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentFormat {
    /// One record per CRC frame (the original format).
    V1,
    /// One delta-encoded, optionally LZ-compressed block of records per
    /// CRC frame (see [`crate::block`]). An `append` seals a one-record
    /// block; an `append_batch` seals the whole batch as one block, so
    /// batch size is the compression window.
    V2,
}

impl SegmentFormat {
    /// The header version number for this format.
    pub fn version(self) -> u32 {
        match self {
            SegmentFormat::V1 => SEGMENT_VERSION,
            SegmentFormat::V2 => SEGMENT_VERSION_V2,
        }
    }
}

/// Writer tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalOptions {
    /// Fsync policy.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one exceeds this many
    /// bytes (checked between appends; a batch never spans segments).
    pub max_segment_bytes: u64,
    /// Format for newly created segments. Defaults to [`SegmentFormat::V2`].
    pub format: SegmentFormat,
    /// Attempt the LZ stage on v2 blocks (kept only when it shrinks the
    /// block). Ignored for v1 segments.
    pub compress: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncPolicy::EveryN(256),
            max_segment_bytes: 16 * 1024 * 1024,
            format: SegmentFormat::V2,
            compress: true,
        }
    }
}

/// A private per-producer buffer of records. Cheap to fill (no locks, no
/// I/O); handed to [`SharedWal::append_batch`] wholesale. The batch
/// carries both the v1 framed bytes (encoded and CRC'd off-lock, the
/// original design) and the records themselves, so a v2 writer can seal
/// the whole batch as one compression block under its lock.
#[derive(Debug, Default)]
pub struct WalBatch {
    buf: Vec<u8>,
    recs: Vec<WalRecord>,
    records: u64,
}

impl WalBatch {
    /// An empty batch.
    pub fn new() -> Self {
        WalBatch::default()
    }

    /// Frames and buffers one record.
    pub fn push(&mut self, rec: &WalRecord) {
        rec.encode_frame(&mut self.buf);
        self.recs.push(rec.clone());
        self.records += 1;
    }

    /// Buffered record count.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Buffered byte count (v1 framed form).
    pub fn bytes(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Drops the buffered content (keeps the allocations).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.recs.clear();
        self.records = 0;
    }
}

fn sync_dir(dir: &Path) -> Result<(), WalError> {
    // Persist the directory entry of a newly created file. Directory
    // fsync is a unix concept; elsewhere rely on the file sync alone.
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Appends framed records to segment files with rotation and a
/// configurable fsync policy. Single-owner; see [`SharedWal`] for the
/// thread-safe handle.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    opts: WalOptions,
    file: File,
    segment_bytes: u64,
    segment_start_lsn: u64,
    /// Format version of the segment currently being appended to — the
    /// configured format for created segments, the on-disk header's for
    /// a resumed one (mixed-version logs stay self-consistent).
    segment_version: u32,
    next_lsn: u64,
    unsynced: u64,
    bytes_appended: u64,
    fsyncs: u64,
}

impl WalWriter {
    /// Starts a fresh log in `dir` (created if missing) at LSN 0.
    ///
    /// # Errors
    ///
    /// [`WalError::AlreadyExists`] when `dir` already holds segments —
    /// recover and [`WalWriter::resume`] instead of clobbering them.
    pub fn create(dir: impl Into<PathBuf>, opts: WalOptions) -> Result<Self, WalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if !list_segments(&dir)?.is_empty() {
            return Err(WalError::AlreadyExists(dir));
        }
        let version = opts.format.version();
        let (file, segment_bytes) = Self::open_segment(&dir, version, 0)?;
        Ok(WalWriter {
            dir,
            opts,
            file,
            segment_bytes,
            segment_start_lsn: 0,
            segment_version: version,
            next_lsn: 0,
            unsynced: 0,
            bytes_appended: 0,
            fsyncs: 0,
        })
    }

    /// Resumes appending after recovery: continues the last segment when
    /// one exists (recovery has already truncated any torn tail) — in
    /// *that segment's* format, whatever `opts.format` says, so a log
    /// written before a format upgrade keeps its v1 tail consistent and
    /// switches to v2 at the next rotation — or starts a new segment at
    /// `next_lsn` in the configured format.
    ///
    /// # Errors
    ///
    /// [`WalError::SegmentGap`] when the last segment starts *after*
    /// `next_lsn` (the directory does not match the recovered state).
    pub fn resume(
        dir: impl Into<PathBuf>,
        opts: WalOptions,
        next_lsn: u64,
    ) -> Result<Self, WalError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        match list_segments(&dir)?.last() {
            Some(&(start_lsn, ref path)) => {
                if start_lsn > next_lsn {
                    return Err(WalError::SegmentGap {
                        expected: next_lsn,
                        found: start_lsn,
                    });
                }
                let segment_version = read_segment_version(path)?;
                let file = OpenOptions::new().append(true).open(path)?;
                let segment_bytes = file.metadata()?.len();
                Ok(WalWriter {
                    dir,
                    opts,
                    file,
                    segment_bytes,
                    segment_start_lsn: start_lsn,
                    segment_version,
                    next_lsn,
                    unsynced: 0,
                    bytes_appended: 0,
                    fsyncs: 0,
                })
            }
            None => {
                let version = opts.format.version();
                let (file, segment_bytes) = Self::open_segment(&dir, version, next_lsn)?;
                Ok(WalWriter {
                    dir,
                    opts,
                    file,
                    segment_bytes,
                    segment_start_lsn: next_lsn,
                    segment_version: version,
                    next_lsn,
                    unsynced: 0,
                    bytes_appended: 0,
                    fsyncs: 0,
                })
            }
        }
    }

    fn open_segment(dir: &Path, version: u32, start_lsn: u64) -> Result<(File, u64), WalError> {
        let path = dir.join(segment_file_name(start_lsn));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        file.write_all(&encode_header(version, start_lsn))?;
        // The header and the directory entry are synced unconditionally:
        // rotation is rare, and a segment whose header never reached disk
        // would strand every record behind it.
        file.sync_data()?;
        sync_dir(dir)?;
        Ok((file, SEGMENT_HEADER_BYTES))
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The writer options.
    pub fn options(&self) -> &WalOptions {
        &self.opts
    }

    /// The format version of the segment currently being appended.
    pub fn segment_version(&self) -> u32 {
        self.segment_version
    }

    /// Appends one record; returns its LSN. On a v2 segment this seals a
    /// one-record block — still self-delimiting, just without a
    /// compression window; batch appends are where v2 pays off.
    ///
    /// # Errors
    ///
    /// I/O failures (the record must be assumed unlogged).
    pub fn append(&mut self, rec: &WalRecord) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let mut frame = self.encode_one(rec);
        if self.maybe_rotate(frame.len())? {
            // The rotation switched segment formats: re-encode for the
            // new segment.
            frame = self.encode_one(rec);
        }
        self.write_bytes(&frame, 1)?;
        Ok(lsn)
    }

    /// One record, framed for the current segment's format.
    fn encode_one(&self, rec: &WalRecord) -> Vec<u8> {
        let mut frame = Vec::with_capacity(128);
        if self.segment_version == SEGMENT_VERSION_V2 {
            let mut payload = Vec::with_capacity(128);
            encode_block(std::slice::from_ref(rec), self.opts.compress, &mut payload);
            frame_block(&payload, &mut frame);
        } else {
            rec.encode_frame(&mut frame);
        }
        frame
    }

    /// Appends a whole batch (see [`WalBatch`]) and clears it. On a v1
    /// segment the pre-framed bytes are written as-is (a single
    /// `write_all`; encoding and CRC happened off-lock); on a v2 segment
    /// the batch is sealed as **one block** — one frame, one restart
    /// point, the batch as the delta/LZ compression window. For fsync
    /// purposes a batch counts record-by-record (so `EveryN` semantics
    /// are unchanged) but is synced at most once.
    ///
    /// # Errors
    ///
    /// I/O failures; the batch is left unconsumed so the caller can retry
    /// or count the loss.
    pub fn append_batch(&mut self, batch: &mut WalBatch) -> Result<(), WalError> {
        if batch.is_empty() {
            return Ok(());
        }
        let mut frame = self.seal_batch(batch);
        let incoming = frame.as_ref().map_or(batch.buf.len(), Vec::len);
        if self.maybe_rotate(incoming)? {
            frame = self.seal_batch(batch);
        }
        let records = batch.records;
        match &frame {
            Some(frame) => self.write_bytes(frame, records)?,
            None => self.write_bytes(&batch.buf, records)?,
        }
        batch.clear();
        Ok(())
    }

    /// The batch sealed as one v2 block frame, or `None` when the
    /// current segment is v1 (whose pre-framed `batch.buf` applies
    /// as-is).
    fn seal_batch(&self, batch: &WalBatch) -> Option<Vec<u8>> {
        if self.segment_version != SEGMENT_VERSION_V2 {
            return None;
        }
        let mut payload = Vec::with_capacity(batch.buf.len() / 2);
        encode_block(&batch.recs, self.opts.compress, &mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame_block(&payload, &mut frame);
        Some(frame)
    }

    /// Rotates if `incoming` more bytes would overflow the segment.
    /// Returns whether the rotation changed the segment format (the
    /// caller must then re-encode).
    fn maybe_rotate(&mut self, incoming: usize) -> Result<bool, WalError> {
        if self.segment_bytes > SEGMENT_HEADER_BYTES
            && self.segment_bytes + incoming as u64 > self.opts.max_segment_bytes
        {
            let before = self.segment_version;
            self.rotate()?;
            return Ok(self.segment_version != before);
        }
        Ok(false)
    }

    fn write_bytes(&mut self, bytes: &[u8], records: u64) -> Result<(), WalError> {
        self.file.write_all(bytes)?;
        self.segment_bytes += bytes.len() as u64;
        self.bytes_appended += bytes.len() as u64;
        self.next_lsn += records;
        self.unsynced += records;
        match self.opts.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        // The finished segment is synced regardless of policy: recovery
        // treats interior (non-last) segments as immutable truth and will
        // not truncate them, so they must be durable before a successor
        // exists.
        self.sync()?;
        // Rotation is where a resumed mixed-format log switches to the
        // configured format: the old segment keeps its version, the new
        // one gets `opts.format`.
        let version = self.opts.format.version();
        let (file, segment_bytes) = Self::open_segment(&self.dir, version, self.next_lsn)?;
        self.file = file;
        self.segment_bytes = segment_bytes;
        self.segment_start_lsn = self.next_lsn;
        self.segment_version = version;
        Ok(())
    }

    /// Forces an fsync of the current segment.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data()?;
        self.unsynced = 0;
        self.fsyncs += 1;
        Ok(())
    }

    /// Total record-payload bytes appended since this writer was opened
    /// (segment headers excluded). Observability counter for the stats
    /// scrape; resets on restart, like the process it describes.
    pub fn bytes_appended(&self) -> u64 {
        self.bytes_appended
    }

    /// Number of explicit data fsyncs issued since this writer was
    /// opened (policy syncs, rotation syncs, and forced
    /// [`WalWriter::sync`] calls; segment-header creation syncs are not
    /// counted).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

/// A cloneable, thread-safe handle to one [`WalWriter`].
#[derive(Debug, Clone)]
pub struct SharedWal {
    inner: Arc<Mutex<WalWriter>>,
}

impl SharedWal {
    /// Wraps a writer for shared use.
    pub fn new(writer: WalWriter) -> Self {
        SharedWal {
            inner: Arc::new(Mutex::new(writer)),
        }
    }

    fn lock(&self) -> MutexGuard<'_, WalWriter> {
        // A panic while holding the lock poisons it; the writer state is
        // still internally consistent (worst case: an un-counted sync),
        // so keep going rather than cascading panics through shutdown.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one record; returns its LSN. See [`WalWriter::append`].
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append(&self, rec: &WalRecord) -> Result<u64, WalError> {
        self.lock().append(rec)
    }

    /// Appends and clears a batch. See [`WalWriter::append_batch`].
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn append_batch(&self, batch: &mut WalBatch) -> Result<(), WalError> {
        self.lock().append_batch(batch)
    }

    /// Forces an fsync.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn sync(&self) -> Result<(), WalError> {
        self.lock().sync()
    }

    /// The LSN the next appended record will get.
    pub fn next_lsn(&self) -> u64 {
        self.lock().next_lsn()
    }

    /// Runs a closure against the locked writer (snapshot coordination).
    pub fn with_writer<R>(&self, f: impl FnOnce(&mut WalWriter) -> R) -> R {
        f(&mut self.lock())
    }

    /// `(bytes_appended, fsyncs)` counters, read under one lock so the
    /// pair is consistent. See [`WalWriter::bytes_appended`] /
    /// [`WalWriter::fsyncs`].
    pub fn io_counters(&self) -> (u64, u64) {
        let w = self.lock();
        (w.bytes_appended(), w.fsyncs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::scan_segment;
    use modb_core::{ObjectId, UpdateMessage, UpdatePosition};

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("modb-wal-writer-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn update(i: u64) -> WalRecord {
        WalRecord::Update {
            id: ObjectId(i % 7),
            msg: UpdateMessage::basic(i as f64, UpdatePosition::Arc(i as f64 * 0.5), 1.0),
        }
    }

    #[test]
    fn append_scan_round_trip() {
        let dir = tmp("round-trip");
        let mut w = WalWriter::create(&dir, WalOptions::default()).unwrap();
        for i in 0..10 {
            assert_eq!(w.append(&update(i)).unwrap(), i);
        }
        assert_eq!(w.next_lsn(), 10);
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        let scan = scan_segment(&segments[0].1).unwrap();
        assert_eq!(scan.start_lsn, 0);
        assert_eq!(scan.records.len(), 10);
        assert!(scan.torn.is_none());
        assert_eq!(scan.records[3], update(3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_produces_contiguous_segments() {
        let dir = tmp("rotation");
        let opts = WalOptions {
            fsync: FsyncPolicy::Never,
            max_segment_bytes: 256,
            ..WalOptions::default()
        };
        let mut w = WalWriter::create(&dir, opts).unwrap();
        for i in 0..50 {
            w.append(&update(i)).unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "tiny cap must force rotation");
        let mut cursor = 0;
        for (start_lsn, path) in &segments {
            assert_eq!(*start_lsn, cursor, "segments must join up");
            let scan = scan_segment(path).unwrap();
            assert_eq!(scan.start_lsn, cursor);
            assert!(scan.torn.is_none());
            cursor += scan.records.len() as u64;
        }
        assert_eq!(cursor, 50);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batches_preserve_order_and_lsns() {
        let dir = tmp("batch");
        let mut w = WalWriter::create(&dir, WalOptions::default()).unwrap();
        let mut batch = WalBatch::new();
        for i in 0..5 {
            batch.push(&update(i));
        }
        assert_eq!(batch.records(), 5);
        assert!(batch.bytes() > 0);
        w.append_batch(&mut batch).unwrap();
        assert!(batch.is_empty(), "append consumes the batch");
        w.append(&update(5)).unwrap();
        assert_eq!(w.next_lsn(), 6);
        let scan = scan_segment(&list_segments(&dir).unwrap()[0].1).unwrap();
        let expected: Vec<WalRecord> = (0..6).map(update).collect();
        assert_eq!(scan.records, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_refuses_existing_log() {
        let dir = tmp("existing");
        let mut w = WalWriter::create(&dir, WalOptions::default()).unwrap();
        w.append(&update(0)).unwrap();
        drop(w);
        assert!(matches!(
            WalWriter::create(&dir, WalOptions::default()),
            Err(WalError::AlreadyExists(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_continues_last_segment() {
        let dir = tmp("resume");
        let mut w = WalWriter::create(&dir, WalOptions::default()).unwrap();
        for i in 0..4 {
            w.append(&update(i)).unwrap();
        }
        drop(w);
        let mut w = WalWriter::resume(&dir, WalOptions::default(), 4).unwrap();
        assert_eq!(w.next_lsn(), 4);
        w.append(&update(4)).unwrap();
        drop(w);
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1, "resume appends in place");
        let scan = scan_segment(&segments[0].1).unwrap();
        assert_eq!(scan.records.len(), 5);
        // Resuming into an empty dir starts a fresh segment at the LSN.
        let dir2 = tmp("resume-fresh");
        let w = WalWriter::resume(&dir2, WalOptions::default(), 9).unwrap();
        assert_eq!(w.next_lsn(), 9);
        drop(w);
        assert_eq!(list_segments(&dir2).unwrap()[0].0, 9);
        // A future segment is an inconsistency.
        assert!(matches!(
            WalWriter::resume(&dir2, WalOptions::default(), 3),
            Err(WalError::SegmentGap {
                expected: 3,
                found: 9
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn fsync_policies_all_write_identically() {
        for (name, fsync) in [
            ("always", FsyncPolicy::Always),
            ("every3", FsyncPolicy::EveryN(3)),
            ("every0", FsyncPolicy::EveryN(0)),
            ("never", FsyncPolicy::Never),
        ] {
            let dir = tmp(&format!("fsync-{name}"));
            let mut w = WalWriter::create(
                &dir,
                WalOptions {
                    fsync,
                    ..WalOptions::default()
                },
            )
            .unwrap();
            for i in 0..7 {
                w.append(&update(i)).unwrap();
            }
            w.sync().unwrap();
            let scan = scan_segment(&list_segments(&dir).unwrap()[0].1).unwrap();
            assert_eq!(scan.records.len(), 7, "policy {name}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn io_counters_track_bytes_and_fsyncs() {
        let dir = tmp("io-counters");
        let mut w = WalWriter::create(
            &dir,
            WalOptions {
                fsync: FsyncPolicy::EveryN(3),
                ..WalOptions::default()
            },
        )
        .unwrap();
        assert_eq!((w.bytes_appended(), w.fsyncs()), (0, 0));
        for i in 0..7 {
            w.append(&update(i)).unwrap();
        }
        // EveryN(3) over 7 records: syncs after records 3 and 6.
        assert_eq!(w.fsyncs(), 2);
        let bytes = w.bytes_appended();
        assert!(bytes > 0, "appended payload bytes must be counted");
        w.sync().unwrap();
        assert_eq!(w.fsyncs(), 3, "forced sync counts");
        assert_eq!(w.bytes_appended(), bytes, "sync appends nothing");
        // Rotation syncs the finished segment.
        let mut w = WalWriter::create(
            tmp("io-counters-rotate"),
            WalOptions {
                fsync: FsyncPolicy::Never,
                max_segment_bytes: 128,
                ..WalOptions::default()
            },
        )
        .unwrap();
        for i in 0..20 {
            w.append(&update(i)).unwrap();
        }
        assert!(w.fsyncs() > 0, "rotation must count its segment sync");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_wal_is_cloneable_and_concurrent() {
        let dir = tmp("shared");
        let wal = SharedWal::new(WalWriter::create(&dir, WalOptions::default()).unwrap());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let wal = wal.clone();
                s.spawn(move || {
                    let mut batch = WalBatch::new();
                    for i in 0..25 {
                        batch.push(&update(t * 100 + i));
                        if batch.records() >= 8 {
                            wal.append_batch(&mut batch).unwrap();
                        }
                    }
                    wal.append_batch(&mut batch).unwrap();
                });
            }
        });
        wal.sync().unwrap();
        assert_eq!(wal.next_lsn(), 100);
        let scan = scan_segment(&list_segments(&dir).unwrap()[0].1).unwrap();
        assert_eq!(scan.records.len(), 100);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
