//! Log segment files: naming, headers, and scanning.
//!
//! The log is a sequence of segment files `wal-<start_lsn>.log`, where the
//! LSN (log sequence number) of a record is its ordinal position in the
//! whole log, starting at 0. A segment holds the records
//! `start_lsn, start_lsn + 1, …` in order; the writer rotates to a new
//! segment once the current one exceeds the configured size.
//!
//! Segment layout:
//!
//! ```text
//! [magic: 8 bytes "MODBWAL1"] [version: u32 LE] [start_lsn: u64 LE]
//! [frame]*                                  — see crate::record framing
//! ```

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

use crate::codec::{put_u32, put_u64, ByteReader};
use crate::error::WalError;
use crate::record::{decode_frames, FrameEnd, WalRecord};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 8] = *b"MODBWAL1";
/// v1 segment format: one record per CRC frame.
pub const SEGMENT_VERSION: u32 = 1;
/// v2 segment format: one delta-encoded (optionally compressed) *block*
/// of records per CRC frame — see [`crate::block`].
pub const SEGMENT_VERSION_V2: u32 = 2;
/// Segment header length in bytes.
pub const SEGMENT_HEADER_BYTES: u64 = 20;

/// File name for the segment starting at `start_lsn` (zero-padded so
/// lexicographic order equals LSN order).
pub fn segment_file_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:020}.log")
}

/// Inverse of [`segment_file_name`]; `None` for non-segment files.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The encoded segment header for a given format version.
pub fn encode_header(version: u32, start_lsn: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEGMENT_HEADER_BYTES as usize);
    out.extend_from_slice(&SEGMENT_MAGIC);
    put_u32(&mut out, version);
    put_u64(&mut out, start_lsn);
    out
}

/// Reads just the format version from a segment's header — what
/// [`crate::WalWriter::resume`] needs to keep appending to an existing
/// tail segment in *its* format rather than the configured one.
///
/// # Errors
///
/// [`WalError::CorruptSegment`] for a short header, bad magic, or an
/// unknown version; I/O failures.
pub fn read_segment_version(path: &Path) -> Result<u32, WalError> {
    let mut head = [0u8; SEGMENT_HEADER_BYTES as usize];
    let mut file = fs::File::open(path)?;
    let mut got = 0usize;
    while got < head.len() {
        let n = file.read(&mut head[got..])?;
        if n == 0 {
            return Err(WalError::CorruptSegment {
                path: path.to_path_buf(),
                offset: 0,
                reason: "short header",
            });
        }
        got += n;
    }
    if head[..8] != SEGMENT_MAGIC {
        return Err(WalError::CorruptSegment {
            path: path.to_path_buf(),
            offset: 0,
            reason: "bad magic",
        });
    }
    let version = u32::from_le_bytes([head[8], head[9], head[10], head[11]]);
    if version != SEGMENT_VERSION && version != SEGMENT_VERSION_V2 {
        return Err(WalError::CorruptSegment {
            path: path.to_path_buf(),
            offset: 8,
            reason: "unsupported version",
        });
    }
    Ok(version)
}

/// Lists the segment files in `dir`, sorted by start LSN. Non-segment
/// files are ignored.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(lsn) = entry.file_name().to_str().and_then(parse_segment_name) {
            segments.push((lsn, entry.path()));
        }
    }
    segments.sort_unstable_by_key(|&(lsn, _)| lsn);
    Ok(segments)
}

/// Result of scanning one segment file.
#[derive(Debug)]
pub struct SegmentScan {
    /// Start LSN from the header.
    pub start_lsn: u64,
    /// Format version from the header ([`SEGMENT_VERSION`] or
    /// [`SEGMENT_VERSION_V2`]).
    pub version: u32,
    /// Records decoded from the valid prefix, in order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + whole frames).
    pub clean_bytes: u64,
    /// Present when the file extends past the valid prefix (torn tail
    /// write or corruption); carries the reason.
    pub torn: Option<&'static str>,
}

/// Reads and validates a whole segment file. Header failures are reported
/// as errors (the caller decides whether the segment is the rewritable
/// tail of the log); frame failures are reported as a torn tail.
pub fn scan_segment(path: &Path) -> Result<SegmentScan, WalError> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SEGMENT_HEADER_BYTES as usize {
        return Err(WalError::CorruptSegment {
            path: path.to_path_buf(),
            offset: 0,
            reason: "short header",
        });
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return Err(WalError::CorruptSegment {
            path: path.to_path_buf(),
            offset: 0,
            reason: "bad magic",
        });
    }
    let mut r = ByteReader::new(&bytes[8..SEGMENT_HEADER_BYTES as usize]);
    let version = r.u32().expect("header length checked");
    let start_lsn = r.u64().expect("header length checked");
    let body = &bytes[SEGMENT_HEADER_BYTES as usize..];
    let (records, clean, end) = match version {
        SEGMENT_VERSION => decode_frames(body),
        SEGMENT_VERSION_V2 => crate::block::decode_block_frames(body),
        _ => {
            return Err(WalError::CorruptSegment {
                path: path.to_path_buf(),
                offset: 8,
                reason: "unsupported version",
            })
        }
    };
    Ok(SegmentScan {
        start_lsn,
        version,
        records,
        clean_bytes: SEGMENT_HEADER_BYTES + clean as u64,
        torn: match end {
            FrameEnd::Clean => None,
            FrameEnd::Torn { reason } => Some(reason),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort() {
        assert_eq!(segment_file_name(0), "wal-00000000000000000000.log");
        assert_eq!(parse_segment_name(&segment_file_name(12345)), Some(12345));
        assert_eq!(parse_segment_name("wal-abc.log"), None);
        assert_eq!(parse_segment_name("snap-00000000000000000000.snap"), None);
        assert_eq!(parse_segment_name("wal-123.log"), None, "unpadded rejected");
        assert!(segment_file_name(9) < segment_file_name(10));
        assert!(segment_file_name(99) < segment_file_name(100));
    }

    #[test]
    fn header_encodes_magic_version_lsn() {
        for version in [SEGMENT_VERSION, SEGMENT_VERSION_V2] {
            let h = encode_header(version, 77);
            assert_eq!(h.len() as u64, SEGMENT_HEADER_BYTES);
            assert_eq!(&h[..8], &SEGMENT_MAGIC);
            let mut r = ByteReader::new(&h[8..]);
            assert_eq!(r.u32().unwrap(), version);
            assert_eq!(r.u64().unwrap(), 77);
        }
    }

    #[test]
    fn version_peek_matches_header() {
        let dir = std::env::temp_dir().join(format!("modb-wal-segver-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for version in [SEGMENT_VERSION, SEGMENT_VERSION_V2] {
            let path = dir.join(segment_file_name(u64::from(version)));
            std::fs::write(&path, encode_header(version, 5)).unwrap();
            assert_eq!(read_segment_version(&path).unwrap(), version);
        }
        let bad = dir.join(segment_file_name(99));
        std::fs::write(&bad, encode_header(9, 5)).unwrap();
        assert!(matches!(
            read_segment_version(&bad),
            Err(WalError::CorruptSegment {
                reason: "unsupported version",
                ..
            })
        ));
        std::fs::write(&bad, &encode_header(1, 5)[..7]).unwrap();
        assert!(matches!(
            read_segment_version(&bad),
            Err(WalError::CorruptSegment {
                reason: "short header",
                ..
            })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
