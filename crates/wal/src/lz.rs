//! A small, dependency-free LZ77 byte codec for the v2 block stage.
//!
//! The delta stream inside a v2 block is already compact, but the
//! workloads the paper cares about are *repetitive* — fleets sending the
//! same speed, the same arc step, the same flag bytes — and an LZ pass
//! squeezes out what delta coding leaves behind. The format is a plain
//! token stream (no entropy stage, no external dictionary):
//!
//! ```text
//! [literal_len: varint] [literal bytes]
//! [match_len:   varint] [distance: varint]   — omitted for the final
//!                                              group when match_len = 0
//! ```
//!
//! repeated until the declared uncompressed length is produced. Matches
//! are at least [`MIN_MATCH`] bytes and may overlap themselves
//! (`distance < match_len` is the classic RLE trick). Compression is
//! greedy with a 4-byte hash table; decompression validates every
//! distance and the final length, so a corrupt stream that survived the
//! CRC (or a hostile one) yields an error, never out-of-bounds output.

use crate::codec::{put_varint, read_varint, ByteReader};
use crate::error::WalError;

/// Shortest match worth emitting: below this a match token (two varints,
/// ≥ 2 bytes) is no cheaper than the literals it replaces.
const MIN_MATCH: usize = 4;
/// Longest lookback. Blocks are far smaller than this in practice; the
/// cap just bounds the varint and the decoder's validation.
const MAX_DISTANCE: usize = 1 << 16;
/// Hash table slots (heads of 4-byte-prefix chains, no chaining — the
/// newest position wins, which is both simplest and best for the short
/// repeat distances delta streams produce).
const HASH_BITS: u32 = 13;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`, appending the token stream to `out`. The caller
/// records the uncompressed length separately (the block header does);
/// an empty input produces an empty stream.
pub fn compress(input: &[u8], out: &mut Vec<u8>) {
    let mut heads = [usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut literal_start = 0usize;
    while pos < input.len() {
        if pos + MIN_MATCH > input.len() {
            break; // tail too short to match; flushed as final literals
        }
        let h = hash4(&input[pos..]);
        let candidate = heads[h];
        heads[h] = pos;
        let found = candidate != usize::MAX
            && pos - candidate <= MAX_DISTANCE
            && input[candidate..candidate + MIN_MATCH] == input[pos..pos + MIN_MATCH];
        if !found {
            pos += 1;
            continue;
        }
        // Extend the match as far as it goes (overlap allowed: compare
        // against already-fixed positions only, byte by byte).
        let distance = pos - candidate;
        let mut len = MIN_MATCH;
        while pos + len < input.len() && input[pos + len] == input[pos + len - distance] {
            len += 1;
        }
        put_varint(out, (pos - literal_start) as u64);
        out.extend_from_slice(&input[literal_start..pos]);
        put_varint(out, len as u64);
        put_varint(out, distance as u64);
        // Index a few positions inside the match so back-to-back repeats
        // keep matching without walking every byte.
        let stop = (pos + len).min(input.len().saturating_sub(MIN_MATCH));
        let mut p = pos + 1;
        while p < stop {
            heads[hash4(&input[p..])] = p;
            p += 2;
        }
        pos += len;
        literal_start = pos;
    }
    if literal_start < input.len() || input.is_empty() {
        put_varint(out, (input.len() - literal_start) as u64);
        out.extend_from_slice(&input[literal_start..]);
        put_varint(out, 0); // final group: no match
    } else if literal_start == input.len() && !input.is_empty() {
        // Stream ended exactly on a match: emit an empty terminal group
        // so the decoder always sees the same shape.
        put_varint(out, 0);
        put_varint(out, 0);
    }
}

/// Decompresses a [`compress`] stream into exactly `expected_len` bytes.
///
/// # Errors
///
/// [`WalError::Decode`] on truncated input, an invalid distance, or a
/// length mismatch.
pub fn decompress(input: &[u8], expected_len: usize) -> Result<Vec<u8>, WalError> {
    let mut out = Vec::with_capacity(expected_len);
    let mut r = ByteReader::new(input);
    loop {
        let literal_len = read_varint(&mut r)? as usize;
        if literal_len > r.remaining() || out.len() + literal_len > expected_len {
            return Err(WalError::Decode("lz literal overrun"));
        }
        for _ in 0..literal_len {
            out.push(r.u8().expect("length checked"));
        }
        let match_len = read_varint(&mut r)? as usize;
        if match_len == 0 {
            break;
        }
        let distance = read_varint(&mut r)? as usize;
        if distance == 0 || distance > out.len() || distance > MAX_DISTANCE {
            return Err(WalError::Decode("lz bad distance"));
        }
        if out.len() + match_len > expected_len {
            return Err(WalError::Decode("lz match overrun"));
        }
        // Byte-by-byte on purpose: overlapping matches (distance <
        // match_len) must read bytes this same copy just produced.
        let start = out.len() - distance;
        for i in 0..match_len {
            let b = out[start + i];
            out.push(b);
        }
    }
    if out.len() != expected_len || !r.is_empty() {
        return Err(WalError::Decode("lz length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) -> usize {
        let mut packed = Vec::new();
        compress(input, &mut packed);
        let back = decompress(&packed, input.len()).unwrap();
        assert_eq!(back, input);
        packed.len()
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repetitive_input_shrinks() {
        let input: Vec<u8> = b"time=1;arc=0.5;speed=0.7;"
            .iter()
            .copied()
            .cycle()
            .take(2_500)
            .collect();
        let packed = round_trip(&input);
        assert!(
            packed * 4 < input.len(),
            "repetitive input must shrink ≥4x, got {packed}/{}",
            input.len()
        );
    }

    #[test]
    fn runs_compress_via_overlap() {
        let input = vec![7u8; 10_000];
        let packed = round_trip(&input);
        assert!(packed < 32, "RLE-style overlap match, got {packed}");
    }

    #[test]
    fn incompressible_input_round_trips() {
        // A cheap PRNG stream: no 4-byte repeats to speak of.
        let mut x = 0x9e3779b97f4a7c15u64;
        let input: Vec<u8> = (0..4_096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        round_trip(&input);
    }

    #[test]
    fn corrupt_streams_are_rejected_not_unsound() {
        let input: Vec<u8> = b"abcdabcdabcdabcdabcd".to_vec();
        let mut packed = Vec::new();
        compress(&input, &mut packed);
        // Wrong expected length.
        assert!(decompress(&packed, input.len() + 1).is_err());
        assert!(decompress(&packed, input.len().saturating_sub(1)).is_err());
        // Truncations.
        for cut in 0..packed.len() {
            let _ = decompress(&packed[..cut], input.len()); // must not panic
        }
        // Bit flips.
        for i in 0..packed.len() {
            let mut bad = packed.clone();
            bad[i] ^= 0xff;
            let _ = decompress(&bad, input.len()); // must not panic
        }
        // A distance pointing before the start of output.
        let mut bad = Vec::new();
        put_varint(&mut bad, 1);
        bad.push(b'x');
        put_varint(&mut bad, 4);
        put_varint(&mut bad, 9);
        assert!(decompress(&bad, 5).is_err());
    }
}
