//! Log compaction: prune old snapshots to a retention count and delete
//! segments every retained snapshot already covers.
//!
//! A snapshot at LSN *s* makes every record with `lsn < s` dead weight
//! for recovery — but only if that snapshot is readable. Recovery
//! ([`crate::recover`]) deliberately falls back to *older* snapshots when
//! the newest is damaged, so compaction must preserve that ladder: a
//! segment is deletable only when it is covered by the **oldest
//! retained** snapshot, and snapshots are pruned to a retention count
//! before that cover point is computed. The newest segment is never
//! deleted — it is the writer's active tail (and after a rotation the
//! next segment's header is the only record of the current LSN).
//!
//! [`compact`] is safe to call while a [`crate::WalWriter`] holds the
//! directory open *if* the caller serialises with rotation — in practice
//! it runs inside `SharedWal::with_writer`, right after a snapshot is
//! written (see `DurableDatabase::snapshot`).

use std::fmt;
use std::fs;
use std::path::Path;

use crate::error::WalError;
use crate::segment::list_segments;
use crate::snapshot::list_snapshots;

/// Snapshots kept by default when compaction runs after
/// `DurableDatabase::snapshot`: the newest for fast recovery, two older
/// ones as the corruption-fallback ladder.
pub const DEFAULT_SNAPSHOT_RETENTION: usize = 3;

/// What one [`compact`] call removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Snapshot files deleted (oldest-first beyond the retention count).
    pub snapshots_removed: usize,
    /// Segment files deleted (fully covered by the oldest retained
    /// snapshot).
    pub segments_removed: usize,
    /// Bytes of log reclaimed by the deleted segments.
    pub segment_bytes_reclaimed: u64,
    /// The cover point: every deleted segment held only records with
    /// `lsn <` this (the oldest retained snapshot's LSN, further lowered
    /// to the ship barrier when one is in force).
    pub cover_lsn: u64,
}

impl fmt::Display for CompactionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "removed {} snapshot(s), {} segment(s) ({} bytes) below lsn {}",
            self.snapshots_removed,
            self.segments_removed,
            self.segment_bytes_reclaimed,
            self.cover_lsn,
        )
    }
}

/// Prunes `dir` to the newest `retention` snapshots (clamped to ≥ 1) and
/// deletes every log segment fully covered by the oldest snapshot that
/// remains. A directory with no snapshot is left untouched — without a
/// base state every record is still needed.
///
/// # Errors
///
/// I/O failures listing or deleting files; a partially applied pass
/// leaves the directory recoverable (deletion order is oldest-first, and
/// nothing recovery needs is ever deleted).
pub fn compact(dir: &Path, retention: usize) -> Result<CompactionReport, WalError> {
    compact_with_barrier(dir, retention, None)
}

/// [`compact`] with a **ship barrier**: when `barrier` is `Some(lsn)`, no
/// segment holding records at or above `lsn` is deleted, even if every
/// retained snapshot covers it. This is the replication horizon — a
/// leader streaming segments to a follower must not garbage-collect log
/// the follower has not acknowledged yet, or a slow-but-live follower
/// would be orphaned mid-stream and forced to re-bootstrap from a full
/// snapshot. Snapshot pruning is unaffected (followers bootstrap from
/// fresh snapshots; old ones are only the local corruption ladder).
///
/// # Errors
///
/// Same as [`compact`].
pub fn compact_with_barrier(
    dir: &Path,
    retention: usize,
    barrier: Option<u64>,
) -> Result<CompactionReport, WalError> {
    let retention = retention.max(1);
    let mut report = CompactionReport::default();
    let snapshots = list_snapshots(dir)?;
    if snapshots.is_empty() {
        return Ok(report);
    }
    let keep_from = snapshots.len().saturating_sub(retention);
    for (_, path) in &snapshots[..keep_from] {
        fs::remove_file(path)?;
        report.snapshots_removed += 1;
    }
    // Recovery may fall back past a damaged newest snapshot, so segments
    // survive until the *oldest retained* snapshot covers them — and a
    // ship barrier lowers the cover point further: an unshipped record is
    // live for replication even when recovery no longer needs it.
    report.cover_lsn = match barrier {
        Some(b) => snapshots[keep_from].0.min(b),
        None => snapshots[keep_from].0,
    };

    let segments = list_segments(dir)?;
    // A segment holds the records [start_lsn, next segment's start_lsn);
    // it is dead iff that end is at or below the cover point. The final
    // segment has no successor and is the active tail — never deleted.
    for pair in segments.windows(2) {
        let (_, path) = &pair[0];
        let (next_start, _) = &pair[1];
        if *next_start <= report.cover_lsn {
            report.segment_bytes_reclaimed += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(path)?;
            report.segments_removed += 1;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalRecord;
    use crate::segment::segment_file_name;
    use crate::snapshot::write_snapshot;
    use crate::writer::{WalOptions, WalWriter};
    use modb_core::{
        Database, DatabaseConfig, MovingObject, ObjectId, UpdateMessage, UpdatePosition,
    };
    use modb_core::{PolicyDescriptor, PositionAttribute};
    use modb_geom::Point;
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("modb-compact-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fresh_db() -> Database {
        let route = Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap();
        Database::new(
            RouteNetwork::from_routes([route]).unwrap(),
            DatabaseConfig::default(),
        )
    }

    fn vehicle(id: u64, arc: f64) -> MovingObject {
        MovingObject {
            id: ObjectId(id),
            name: format!("veh-{id}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: RouteId(1),
                start_position: Point::new(arc, 0.0),
                start_arc: arc,
                direction: Direction::Forward,
                speed: 1.0,
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: 5.0,
                },
            },
            max_speed: 1.5,
            trip_end: None,
        }
    }

    /// Tiny segments so a handful of records forces rotations.
    fn small_segments() -> WalOptions {
        WalOptions {
            max_segment_bytes: 256,
            ..WalOptions::default()
        }
    }

    /// Builds a directory with several segments and a snapshot per
    /// `snapshot_every` records; returns the final database state.
    fn populate(dir: &Path, rounds: u64, snapshot_every: u64) -> Database {
        let mut db = fresh_db();
        let mut wal = WalWriter::create(dir, small_segments()).unwrap();
        write_snapshot(dir, &db, wal.next_lsn()).unwrap();
        db.register_moving(vehicle(1, 10.0)).unwrap();
        wal.append(&WalRecord::RegisterMoving(vehicle(1, 10.0)))
            .unwrap();
        for round in 1..=rounds {
            let msg = UpdateMessage::basic(
                round as f64,
                UpdatePosition::Arc(10.0 + (round as f64 * 0.1) % 80.0),
                0.9,
            );
            wal.append(&WalRecord::Update {
                id: ObjectId(1),
                msg,
            })
            .unwrap();
            db.apply_update(ObjectId(1), &msg).unwrap();
            if round % snapshot_every == 0 {
                wal.sync().unwrap();
                write_snapshot(dir, &db, wal.next_lsn()).unwrap();
            }
        }
        wal.sync().unwrap();
        db
    }

    #[test]
    fn no_snapshot_is_a_noop() {
        let dir = tmp("noop");
        let mut wal = WalWriter::create(&dir, small_segments()).unwrap();
        for i in 0..50u64 {
            wal.append(&WalRecord::Update {
                id: ObjectId(1),
                msg: UpdateMessage::basic(i as f64, UpdatePosition::Arc(1.0), 1.0),
            })
            .unwrap();
        }
        let before = list_segments(&dir).unwrap().len();
        assert!(before > 1, "rotation expected");
        let report = compact(&dir, 1).unwrap();
        assert_eq!(report, CompactionReport::default());
        assert_eq!(list_segments(&dir).unwrap().len(), before);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prunes_snapshots_and_covered_segments_keeping_recovery_intact() {
        let dir = tmp("prune");
        let expected = populate(&dir, 60, 15);
        let snaps_before = list_snapshots(&dir).unwrap();
        let segs_before = list_segments(&dir).unwrap();
        assert!(snaps_before.len() >= 4, "{snaps_before:?}");
        assert!(segs_before.len() > 2, "{segs_before:?}");

        let report = compact(&dir, 2).unwrap();
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 2);
        assert_eq!(report.snapshots_removed, snaps_before.len() - 2);
        // The oldest retained snapshot is the cover point.
        assert_eq!(report.cover_lsn, snaps[0].0);
        assert!(report.segments_removed > 0, "covered segments deleted");
        assert!(report.segment_bytes_reclaimed > 0);
        assert!(report.to_string().contains("segment"));
        // Every surviving segment still holds records >= cover_lsn, save
        // the active tail which always survives.
        let segs = list_segments(&dir).unwrap();
        for pair in segs.windows(2) {
            assert!(pair[1].0 > report.cover_lsn, "uncovered segment deleted");
        }
        assert_eq!(
            segs.last().unwrap().0,
            segs_before.last().unwrap().0,
            "active tail untouched"
        );

        // Recovery after compaction reproduces the exact same state.
        let recovered = crate::recover(&dir).unwrap();
        assert_eq!(
            recovered.database.moving(ObjectId(1)).unwrap(),
            expected.moving(ObjectId(1)).unwrap()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fallback_ladder_survives_damaged_newest_snapshot() {
        let dir = tmp("ladder");
        let expected = populate(&dir, 40, 10);
        compact(&dir, 3).unwrap();
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 3);
        // Damage the newest snapshot: recovery must fall back to the
        // next-oldest and replay from there — which requires exactly the
        // segments compaction retained.
        let (_, newest) = snaps.last().unwrap();
        let bytes = fs::read(newest).unwrap();
        let mut damaged = bytes.clone();
        let mid = damaged.len() / 2;
        damaged[mid] ^= 0xFF;
        fs::write(newest, &damaged).unwrap();
        let recovered = crate::recover(&dir).unwrap();
        assert_eq!(
            recovered.database.moving(ObjectId(1)).unwrap(),
            expected.moving(ObjectId(1)).unwrap()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: a slow follower's unshipped horizon must pin segments.
    /// Without the barrier, the plain `compact` below deletes every
    /// segment the retained snapshot covers — including the ones a
    /// replication stream positioned at `horizon` still has to read —
    /// which is exactly the orphaned-follower bug the barrier fixes.
    #[test]
    fn ship_barrier_pins_unshipped_segments() {
        let dir = tmp("barrier");
        let expected = populate(&dir, 60, 15);
        let segs_before = list_segments(&dir).unwrap();
        assert!(segs_before.len() > 3, "{segs_before:?}");
        // A follower is still reading from early in the log.
        let horizon = segs_before[1].0;

        // Sanity (the bug this guards against): an unbarriered compaction
        // on an identical directory WOULD delete the follower's segment.
        let shadow = tmp("barrier-shadow");
        std::fs::create_dir_all(&shadow).unwrap();
        for entry in fs::read_dir(&dir).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), shadow.join(entry.file_name())).unwrap();
        }
        let unbarriered = compact(&shadow, 1).unwrap();
        assert!(unbarriered.cover_lsn > horizon, "scenario not exercised");
        assert!(
            !shadow.join(segment_file_name(horizon)).exists(),
            "without a barrier the follower's segment is GC'd"
        );
        fs::remove_dir_all(&shadow).unwrap();

        // With the barrier, every segment holding records >= horizon
        // survives, and the follower can keep streaming.
        let report = compact_with_barrier(&dir, 1, Some(horizon)).unwrap();
        assert_eq!(report.cover_lsn, horizon, "barrier lowers the cover");
        assert!(report.segments_removed > 0, "segments below it still go");
        let segs = list_segments(&dir).unwrap();
        assert!(
            segs.iter().any(|&(start, _)| start == horizon),
            "the follower's segment survived"
        );
        for pair in segs.windows(2) {
            assert!(pair[1].0 > horizon, "segment holding >= horizon deleted");
        }
        // Recovery still works (the barrier only ever keeps more).
        let recovered = crate::recover(&dir).unwrap();
        assert_eq!(
            recovered.database.moving(ObjectId(1)).unwrap(),
            expected.moving(ObjectId(1)).unwrap()
        );
        // Once the follower catches up (barrier past the tail), the
        // previously pinned segments become reclaimable again…
        let tail_lsn = list_segments(&dir).unwrap().last().unwrap().0;
        let caught_up = compact_with_barrier(&dir, 1, Some(tail_lsn + 1_000)).unwrap();
        assert!(caught_up.segments_removed > 0, "pinned segments released");
        assert!(caught_up.cover_lsn > horizon);
        // …and a further pass is idempotent.
        let again = compact_with_barrier(&dir, 1, Some(tail_lsn + 1_000)).unwrap();
        assert_eq!(again.segments_removed, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_clamps_to_one_and_single_segment_survives() {
        let dir = tmp("clamp");
        let expected = populate(&dir, 20, 5);
        let report = compact(&dir, 0).unwrap();
        assert_eq!(list_snapshots(&dir).unwrap().len(), 1, "clamped to 1");
        assert!(report.cover_lsn > 0);
        assert!(!list_segments(&dir).unwrap().is_empty(), "tail kept");
        let recovered = crate::recover(&dir).unwrap();
        assert_eq!(
            recovered.database.moving(ObjectId(1)).unwrap(),
            expected.moving(ObjectId(1)).unwrap()
        );
        // Idempotent: a second pass removes nothing further.
        let again = compact(&dir, 1).unwrap();
        assert_eq!(again.snapshots_removed, 0);
        assert_eq!(again.segments_removed, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
