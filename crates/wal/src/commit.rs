//! Group commit: collapse many concurrent durability requests into few
//! fsyncs.
//!
//! The ingest path's unit of durability is the fsync, and fsyncs are the
//! expensive part of logging — §2.3 of DESIGN.md measures the `Always`
//! policy at an order of magnitude below batched syncing. With many
//! ingest workers each wanting an acknowledged update to be durable
//! before the ack goes out, per-worker fsyncs serialize the whole ingest
//! tier on the disk's flush latency.
//!
//! A [`GroupCommitter`] replaces them with a *commit ticket* protocol:
//!
//! 1. A worker appends its records (taking the [`SharedWal`] lock only
//!    for the buffered write), reads the log frontier, and calls
//!    [`GroupCommitHandle::commit`] with it.
//! 2. `commit` enqueues a ticket — the highest LSN the caller needs
//!    durable — wakes the committer thread, and blocks on a condvar.
//! 3. The committer coalesces every ticket present at wake-up into **one**
//!    `fsync`, advances the shared durable-LSN watermark past all of
//!    them, and broadcasts. Tickets that arrive while the disk is busy
//!    simply ride the *next* sync — or discover on wake-up that the
//!    frontier read inside the sync already covered them and return
//!    without sleeping.
//!
//! Under load the batch size grows with concurrency and the fsync rate
//! stays pinned near the disk's flush rate regardless of worker count —
//! the classic group-commit shape. Under a single slow producer every
//! commit degenerates to one private fsync, which is exactly the old
//! behaviour.
//!
//! A sync failure is sticky: the committer parks, every current and
//! future waiter gets the error, and no ack can be issued for an LSN
//! that never became durable.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::error::WalError;
use crate::writer::SharedWal;

/// Counters describing the committer's coalescing behaviour. Snapshot via
/// [`GroupCommitHandle::stats`]; exported through the server stats scrape.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Commit tickets enqueued (one per [`GroupCommitHandle::commit`]
    /// call that was not already durable on arrival).
    pub tickets: u64,
    /// Fsyncs the committer issued. `tickets / commits` is the mean
    /// batch size; > 1 means collapsing is happening.
    pub commits: u64,
    /// Tickets credited to the most recent sync. Approximate under
    /// races (a ticket that arrives mid-sync is credited to the next
    /// one), exact in the steady state.
    pub last_batch: u64,
    /// Largest single-sync batch observed.
    pub max_batch: u64,
}

#[derive(Debug)]
struct State {
    /// Everything at or below this LSN frontier is known durable.
    durable_lsn: u64,
    /// Highest LSN any ticket has asked for.
    requested: u64,
    /// Tickets enqueued since the last sync captured its batch.
    pending: u64,
    stop: bool,
    /// A failed sync, verbatim; poisons all current and future commits.
    failed: Option<String>,
    stats: GroupCommitStats,
}

#[derive(Debug)]
struct Inner {
    state: Mutex<State>,
    /// Signalled by producers when a new ticket needs a sync.
    work: Condvar,
    /// Broadcast by the committer when `durable_lsn` advances (or the
    /// committer fails/stops).
    committed: Condvar,
}

impl Inner {
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state
            .lock()
            .expect("group-commit state poisoned: a committer panicked")
    }
}

/// Cheap cloneable handle producers use to request durability.
#[derive(Debug, Clone)]
pub struct GroupCommitHandle {
    inner: Arc<Inner>,
}

impl GroupCommitHandle {
    /// Blocks until every record below `lsn` (a log frontier, i.e. a
    /// `next_lsn` value) is durable, sharing the fsync with every other
    /// concurrent caller. Returns the durable frontier, which is ≥ `lsn`.
    ///
    /// # Errors
    ///
    /// The sync error, for every waiter, once any sync fails (sticky);
    /// an I/O error when the committer was shut down before `lsn`
    /// became durable.
    pub fn commit(&self, lsn: u64) -> Result<u64, WalError> {
        let mut st = self.inner.lock();
        if let Some(msg) = &st.failed {
            return Err(sticky(msg));
        }
        if st.durable_lsn >= lsn {
            return Ok(st.durable_lsn); // someone's sync already covered us
        }
        st.stats.tickets += 1;
        st.pending += 1;
        st.requested = st.requested.max(lsn);
        self.inner.work.notify_one();
        while st.durable_lsn < lsn {
            if let Some(msg) = &st.failed {
                return Err(sticky(msg));
            }
            if st.stop {
                return Err(WalError::Io(std::io::Error::other(
                    "group committer shut down before the commit became durable",
                )));
            }
            st = self
                .inner
                .committed
                .wait(st)
                .expect("group-commit state poisoned: a committer panicked");
        }
        Ok(st.durable_lsn)
    }

    /// The durable-LSN watermark: every record below it is on disk.
    pub fn durable_lsn(&self) -> u64 {
        self.inner.lock().durable_lsn
    }

    /// A snapshot of the coalescing counters.
    pub fn stats(&self) -> GroupCommitStats {
        self.inner.lock().stats
    }
}

/// Owns the committer thread; see the module docs for the protocol.
/// Producers hold [`GroupCommitHandle`] clones; dropping or
/// [`GroupCommitter::shutdown`]-ing the owner stops the thread after one
/// final drain of outstanding tickets.
#[derive(Debug)]
pub struct GroupCommitter {
    inner: Arc<Inner>,
    thread: Option<JoinHandle<()>>,
}

impl GroupCommitter {
    /// Spawns a committer thread over `wal`. The `durable_lsn` watermark
    /// starts at the current log frontier: a resumed log's existing
    /// records were synced at shutdown (or survived recovery), so they
    /// are durable by construction.
    pub fn spawn(wal: SharedWal) -> GroupCommitter {
        let frontier = wal.next_lsn();
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                durable_lsn: frontier,
                requested: frontier,
                pending: 0,
                stop: false,
                failed: None,
                stats: GroupCommitStats::default(),
            }),
            work: Condvar::new(),
            committed: Condvar::new(),
        });
        let thread = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("wal-group-commit".into())
                .spawn(move || committer_loop(&inner, &wal))
                .expect("spawn wal-group-commit thread")
        };
        GroupCommitter {
            inner,
            thread: Some(thread),
        }
    }

    /// A cheap handle for producers.
    pub fn handle(&self) -> GroupCommitHandle {
        GroupCommitHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// A snapshot of the coalescing counters.
    pub fn stats(&self) -> GroupCommitStats {
        self.inner.lock().stats
    }

    /// Stops the committer after one final drain of outstanding tickets.
    /// Join producers *first*: a producer blocked in
    /// [`GroupCommitHandle::commit`] at shutdown gets an error, not a
    /// silent success.
    ///
    /// # Errors
    ///
    /// The sticky sync failure, if the committer ever hit one.
    pub fn shutdown(mut self) -> Result<(), WalError> {
        self.stop_and_join();
        match &self.inner.lock().failed {
            Some(msg) => Err(sticky(msg)),
            None => Ok(()),
        }
    }

    fn stop_and_join(&mut self) {
        {
            let mut st = self.inner.lock();
            st.stop = true;
            self.inner.work.notify_one();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn sticky(msg: &str) -> WalError {
    WalError::Io(std::io::Error::other(format!("group commit failed: {msg}")))
}

fn committer_loop(inner: &Inner, wal: &SharedWal) {
    loop {
        // Wait for a ticket beyond the durable watermark (or shutdown).
        let batch = {
            let mut st = inner.lock();
            while !st.stop && st.requested <= st.durable_lsn {
                st = inner
                    .work
                    .wait(st)
                    .expect("group-commit state poisoned: a producer panicked");
            }
            if st.requested <= st.durable_lsn {
                // stop requested and nothing outstanding: clean exit.
                inner.committed.notify_all();
                return;
            }
            std::mem::take(&mut st.pending)
        };
        // One fsync serves the whole batch. The frontier is read first:
        // fsync flushes everything appended before the call, so records
        // appended between the frontier read and the sync are a bonus
        // the *next* batch will re-claim harmlessly.
        let frontier = wal.next_lsn();
        let result = wal.sync();
        let mut st = inner.lock();
        match result {
            Ok(()) => {
                st.durable_lsn = st.durable_lsn.max(frontier);
                st.stats.commits += 1;
                st.stats.last_batch = batch;
                st.stats.max_batch = st.stats.max_batch.max(batch);
                inner.committed.notify_all();
            }
            Err(e) => {
                // Sticky failure: wake everyone with the bad news and park.
                st.failed = Some(e.to_string());
                inner.committed.notify_all();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalRecord;
    use crate::writer::{FsyncPolicy, WalOptions, WalWriter};
    use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
    use std::path::PathBuf;
    use std::time::Duration;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("modb-wal-commit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn update(i: u64) -> WalRecord {
        WalRecord::Update {
            id: ObjectId(i),
            msg: UpdateMessage::basic(i as f64, UpdatePosition::Arc(0.0), 1.0),
        }
    }

    fn never_sync_wal(dir: &PathBuf) -> SharedWal {
        SharedWal::new(
            WalWriter::create(
                dir,
                WalOptions {
                    fsync: FsyncPolicy::Never,
                    ..WalOptions::default()
                },
            )
            .unwrap(),
        )
    }

    #[test]
    fn serial_commits_are_durable_and_idempotent() {
        let dir = tmp("serial");
        let wal = never_sync_wal(&dir);
        let committer = GroupCommitter::spawn(wal.clone());
        let handle = committer.handle();
        for i in 0..5u64 {
            wal.append(&update(i)).unwrap();
            let durable = handle.commit(wal.next_lsn()).unwrap();
            assert!(durable > i);
            assert_eq!(handle.durable_lsn(), durable);
        }
        // Re-committing an already-durable frontier is free: no new ticket.
        let before = handle.stats();
        assert_eq!(handle.commit(3).unwrap(), 5);
        assert_eq!(handle.stats().tickets, before.tickets);
        let (_, fsyncs) = wal.io_counters();
        assert_eq!(
            fsyncs,
            committer.stats().commits,
            "policy is Never: every fsync is the committer's"
        );
        committer.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_commits_collapse_into_one_fsync() {
        let dir = tmp("collapse");
        let wal = never_sync_wal(&dir);
        let committer = GroupCommitter::spawn(wal.clone());
        let workers = 4u64;
        // Records are appended up front; durability is what's pending.
        for i in 0..workers {
            wal.append(&update(i)).unwrap();
        }
        // Hold the WAL lock so the committer's frontier read stalls while
        // every producer enqueues its ticket behind it — a deterministic
        // pile-up.
        let producers = wal.with_writer(|_w| {
            let producers: Vec<_> = (1..=workers)
                .map(|lsn| {
                    let handle = committer.handle();
                    std::thread::spawn(move || handle.commit(lsn).unwrap())
                })
                .collect();
            // Tickets go through the committer's own state lock, not the
            // WAL lock we are holding, so we can watch them line up.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while committer.stats().tickets < workers {
                assert!(std::time::Instant::now() < deadline, "tickets never queued");
                std::thread::sleep(Duration::from_millis(1));
            }
            producers
        });
        // Lock released: one sync covers the whole pile.
        for p in producers {
            assert!(p.join().unwrap() >= workers);
        }
        let stats = committer.stats();
        assert_eq!(stats.tickets, workers);
        assert_eq!(
            stats.commits, 1,
            "all tickets must share one fsync: {stats:?}"
        );
        assert!(stats.max_batch >= 1);
        let (_, fsyncs) = wal.io_counters();
        assert_eq!(fsyncs, 1);
        committer.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn many_producers_all_get_durable_acks() {
        let dir = tmp("many");
        let wal = never_sync_wal(&dir);
        let committer = GroupCommitter::spawn(wal.clone());
        let per_thread = 25u64;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let wal = wal.clone();
                let handle = committer.handle();
                s.spawn(move || {
                    for i in 0..per_thread {
                        wal.append(&update(i)).unwrap();
                        let frontier = wal.next_lsn();
                        let durable = handle.commit(frontier).unwrap();
                        assert!(durable >= frontier);
                    }
                });
            }
        });
        let stats = committer.stats();
        assert!(stats.tickets <= 100, "at most one ticket per commit call");
        assert!(stats.commits >= 1);
        assert_eq!(committer.handle().durable_lsn(), 100);
        let (_, fsyncs) = wal.io_counters();
        assert_eq!(fsyncs, stats.commits);
        committer.shutdown().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shutdown_drains_outstanding_tickets() {
        let dir = tmp("drain");
        let wal = never_sync_wal(&dir);
        let committer = GroupCommitter::spawn(wal.clone());
        let handle = committer.handle();
        wal.append(&update(0)).unwrap();
        handle.commit(wal.next_lsn()).unwrap();
        committer.shutdown().unwrap();
        // After shutdown, new commits fail rather than hang…
        wal.append(&update(1)).unwrap();
        let err = handle.commit(wal.next_lsn()).unwrap_err();
        assert!(err.to_string().contains("shut down"), "{err}");
        // …unless already durable, which stays a cheap success.
        assert_eq!(handle.commit(1).unwrap(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
