//! The leadership-epoch history sidecar — the divergence guard of
//! promotion.
//!
//! A log directory carries, next to its segments and snapshots, a small
//! `epochs` file listing every leadership epoch the log has lived under
//! and the LSN at which each began (PostgreSQL's timeline-history file,
//! reduced to the essentials). A freshly created log is implicitly on
//! epoch 1 from LSN 0; the file only materializes at the first
//! promotion.
//!
//! The file is what lets a new leader refuse a revived old one: a peer
//! that connects claiming epoch `e` with a log frontier past the start
//! LSN of any epoch newer than `e` has written records the new timeline
//! never saw — its tail is *divergent*, and shipping it more records
//! would silently fork history. The check is
//! [`EpochHistory::check_follower`]; the refusal travels as a typed
//! replication message, never a bootstrap-and-overwrite.
//!
//! On-disk format (atomic tmp + fsync + rename, like snapshots):
//!
//! ```text
//! [magic: 8 bytes "MODBEPO1"] [len: u32 LE] [crc32(payload): u32 LE]
//! [payload: count u32 LE, then (epoch u64 LE, start_lsn u64 LE) * count]
//! ```

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::codec::{put_u32, put_u64, ByteReader};
use crate::crc32::crc32;
use crate::error::WalError;

/// File identification prefix.
pub const EPOCH_MAGIC: [u8; 8] = *b"MODBEPO1";

/// The sidecar's file name inside a log directory.
pub const EPOCH_FILE_NAME: &str = "epochs";

/// The epoch every log starts on before any promotion.
pub const GENESIS_EPOCH: u64 = 1;

/// One leadership span: `epoch` governs LSNs from `start_lsn` until the
/// next entry's `start_lsn` (or the log frontier for the last entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSpan {
    /// The epoch number (monotonically increasing across entries).
    pub epoch: u64,
    /// First LSN written under this epoch.
    pub start_lsn: u64,
}

/// Verdict of [`EpochHistory::check_follower`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochCheck {
    /// The peer's log is a prefix of (or equal to) this timeline — safe
    /// to resume shipping from its frontier.
    Clean,
    /// The peer holds records past the birth of an epoch it never saw:
    /// its tail from `boundary_lsn` onward belongs to a dead timeline.
    Diverged {
        /// Start LSN of the first epoch the peer is missing — everything
        /// the peer holds at or past this LSN is forked history.
        boundary_lsn: u64,
    },
    /// The peer claims a *newer* epoch than this node — this node is the
    /// stale one and must not serve (or wipe) the peer.
    PeerAhead {
        /// The epoch the peer announced.
        peer_epoch: u64,
    },
}

/// The ordered list of leadership spans for one log directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochHistory {
    entries: Vec<EpochSpan>,
}

impl Default for EpochHistory {
    fn default() -> Self {
        EpochHistory::new()
    }
}

impl EpochHistory {
    /// The implicit genesis history: epoch 1 from LSN 0.
    pub fn new() -> Self {
        EpochHistory {
            entries: vec![EpochSpan {
                epoch: GENESIS_EPOCH,
                start_lsn: 0,
            }],
        }
    }

    /// Builds a history from spans received over the wire (an upstream
    /// transferring its full history after admitting a follower).
    ///
    /// # Errors
    ///
    /// [`WalError::Decode`] when the list is empty or not strictly
    /// monotonic in both epoch and start LSN.
    pub fn from_spans(spans: Vec<EpochSpan>) -> Result<Self, WalError> {
        if spans.is_empty() {
            return Err(WalError::Decode("empty epoch history"));
        }
        for pair in spans.windows(2) {
            if pair[1].epoch <= pair[0].epoch || pair[1].start_lsn < pair[0].start_lsn {
                return Err(WalError::Decode("non-monotonic epoch history"));
            }
        }
        Ok(EpochHistory { entries: spans })
    }

    /// Loads the sidecar from `dir`, or the genesis history when the
    /// file does not exist (a log that never lived through a promotion).
    ///
    /// # Errors
    ///
    /// [`WalError::Decode`] for a present-but-corrupt file — corruption
    /// in the divergence guard must not be mistaken for genesis.
    pub fn load(dir: impl AsRef<Path>) -> Result<Self, WalError> {
        let path = dir.as_ref().join(EPOCH_FILE_NAME);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(EpochHistory::new());
            }
            Err(e) => return Err(WalError::Io(e)),
        };
        if bytes.len() < 16 || bytes[..8] != EPOCH_MAGIC {
            return Err(WalError::Decode("bad epoch-history magic"));
        }
        let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]) as usize;
        let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        let payload = bytes
            .get(16..16 + len)
            .ok_or(WalError::Decode("truncated epoch-history payload"))?;
        if crc32(payload) != crc {
            return Err(WalError::Decode("epoch-history crc mismatch"));
        }
        let mut r = ByteReader::new(payload);
        let count = r.u32()? as usize;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            entries.push(EpochSpan {
                epoch: r.u64()?,
                start_lsn: r.u64()?,
            });
        }
        if entries.is_empty() {
            return Err(WalError::Decode("empty epoch history"));
        }
        for pair in entries.windows(2) {
            if pair[1].epoch <= pair[0].epoch || pair[1].start_lsn < pair[0].start_lsn {
                return Err(WalError::Decode("non-monotonic epoch history"));
            }
        }
        Ok(EpochHistory { entries })
    }

    /// Persists the history atomically (tmp + fsync + rename + dir
    /// fsync), so a crash mid-write leaves the previous file intact.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn save(&self, dir: impl AsRef<Path>) -> Result<(), WalError> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut payload = Vec::with_capacity(4 + self.entries.len() * 16);
        put_u32(&mut payload, self.entries.len() as u32);
        for span in &self.entries {
            put_u64(&mut payload, span.epoch);
            put_u64(&mut payload, span.start_lsn);
        }
        let mut out = Vec::with_capacity(16 + payload.len());
        out.extend_from_slice(&EPOCH_MAGIC);
        put_u32(&mut out, payload.len() as u32);
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
        let tmp_path = tmp_file_path(dir);
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp_path)?;
        file.write_all(&out)?;
        file.sync_all()?;
        fs::rename(&tmp_path, dir.join(EPOCH_FILE_NAME))?;
        #[cfg(unix)]
        File::open(dir)?.sync_all()?;
        Ok(())
    }

    /// The current (newest) epoch.
    pub fn current(&self) -> u64 {
        self.entries.last().map_or(GENESIS_EPOCH, |s| s.epoch)
    }

    /// The LSN at which the current epoch began.
    pub fn current_start_lsn(&self) -> u64 {
        self.entries.last().map_or(0, |s| s.start_lsn)
    }

    /// All spans, oldest first.
    pub fn spans(&self) -> &[EpochSpan] {
        &self.entries
    }

    /// Opens a new epoch at `start_lsn` (a promotion). Returns the new
    /// epoch number.
    ///
    /// # Errors
    ///
    /// [`WalError::Decode`] when `start_lsn` precedes the current
    /// epoch's start — history must stay monotonic.
    pub fn begin(&mut self, start_lsn: u64) -> Result<u64, WalError> {
        if start_lsn < self.current_start_lsn() {
            return Err(WalError::Decode("epoch start_lsn would run backwards"));
        }
        let epoch = self.current() + 1;
        self.entries.push(EpochSpan { epoch, start_lsn });
        Ok(epoch)
    }

    /// Merges an epoch observed in the replication stream (a
    /// [`crate::WalRecord::LeaderEpoch`] applied at `lsn`). Idempotent;
    /// older epochs are ignored, gaps are recorded as announced.
    ///
    /// # Errors
    ///
    /// [`WalError::Decode`] when the observation contradicts recorded
    /// history (same epoch at a different start LSN).
    pub fn observe(&mut self, epoch: u64, start_lsn: u64) -> Result<bool, WalError> {
        if let Some(span) = self.entries.iter().find(|s| s.epoch == epoch) {
            if span.start_lsn != start_lsn {
                return Err(WalError::Decode("conflicting epoch start in stream"));
            }
            return Ok(false);
        }
        if epoch < self.current() || start_lsn < self.current_start_lsn() {
            return Err(WalError::Decode("epoch observation runs backwards"));
        }
        self.entries.push(EpochSpan { epoch, start_lsn });
        Ok(true)
    }

    /// The divergence check run at replication handshake: may a peer on
    /// `peer_epoch` whose log frontier is `peer_next_lsn` resume from
    /// this node's log?
    ///
    /// A `peer_epoch` of 0 means the peer predates epoch tracking
    /// (protocol v2 and older); it is treated as genesis, which makes
    /// any tail past the first promotion boundary divergent — the
    /// conservative reading.
    pub fn check_follower(&self, peer_epoch: u64, peer_next_lsn: u64) -> EpochCheck {
        let peer_epoch = peer_epoch.max(GENESIS_EPOCH);
        if peer_epoch > self.current() {
            return EpochCheck::PeerAhead { peer_epoch };
        }
        // The first epoch the peer has never heard of: records the peer
        // holds at or past its start were written on a different
        // timeline (the peer's own dead one).
        match self.entries.iter().find(|s| s.epoch > peer_epoch) {
            Some(span) if peer_next_lsn > span.start_lsn => EpochCheck::Diverged {
                boundary_lsn: span.start_lsn,
            },
            _ => EpochCheck::Clean,
        }
    }
}

fn tmp_file_path(dir: &Path) -> PathBuf {
    dir.join(format!("{EPOCH_FILE_NAME}.tmp"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("modb-wal-epoch-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn missing_file_is_genesis() {
        let dir = tmp("genesis");
        let h = EpochHistory::load(&dir).unwrap();
        assert_eq!(h.current(), GENESIS_EPOCH);
        assert_eq!(h.current_start_lsn(), 0);
        assert_eq!(h.spans().len(), 1);
    }

    #[test]
    fn begin_save_load_round_trip() {
        let dir = tmp("round-trip");
        let mut h = EpochHistory::new();
        assert_eq!(h.begin(40).unwrap(), 2);
        assert_eq!(h.begin(90).unwrap(), 3);
        h.save(&dir).unwrap();
        let loaded = EpochHistory::load(&dir).unwrap();
        assert_eq!(loaded, h);
        assert_eq!(loaded.current(), 3);
        assert_eq!(loaded.current_start_lsn(), 90);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn begin_refuses_backwards_lsn() {
        let mut h = EpochHistory::new();
        h.begin(50).unwrap();
        assert!(h.begin(49).is_err());
    }

    #[test]
    fn corrupt_file_is_an_error_not_genesis() {
        let dir = tmp("corrupt");
        let mut h = EpochHistory::new();
        h.begin(10).unwrap();
        h.save(&dir).unwrap();
        let path = dir.join(EPOCH_FILE_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(EpochHistory::load(&dir), Err(WalError::Decode(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn observe_is_idempotent_and_checks_conflicts() {
        let mut h = EpochHistory::new();
        assert!(h.observe(2, 40).unwrap());
        assert!(!h.observe(2, 40).unwrap(), "re-delivery is a no-op");
        assert!(h.observe(2, 41).is_err(), "conflicting start refused");
        assert!(h.observe(4, 60).unwrap(), "gaps recorded as announced");
        assert_eq!(h.current(), 4);
    }

    #[test]
    fn check_follower_verdicts() {
        let mut h = EpochHistory::new();
        h.begin(40).unwrap(); // epoch 2 from 40
        h.begin(90).unwrap(); // epoch 3 from 90

        // Same timeline, any frontier: clean.
        assert_eq!(h.check_follower(3, 120), EpochCheck::Clean);
        // Old epoch, at or before the next boundary: clean resume.
        assert_eq!(h.check_follower(1, 40), EpochCheck::Clean);
        assert_eq!(h.check_follower(2, 90), EpochCheck::Clean);
        // Old epoch, past the boundary: divergent tail.
        assert_eq!(
            h.check_follower(1, 41),
            EpochCheck::Diverged { boundary_lsn: 40 }
        );
        assert_eq!(
            h.check_follower(2, 91),
            EpochCheck::Diverged { boundary_lsn: 90 }
        );
        // Epoch 0 = epoch-unaware peer: treated as genesis.
        assert_eq!(
            h.check_follower(0, 50),
            EpochCheck::Diverged { boundary_lsn: 40 }
        );
        assert_eq!(h.check_follower(0, 12), EpochCheck::Clean);
        // A peer from the future outranks this node.
        assert_eq!(
            h.check_follower(4, 10),
            EpochCheck::PeerAhead { peer_epoch: 4 }
        );
    }
}
