//! Log records and their on-disk framing.
//!
//! Every mutation of the [`modb_core::Database`] has a record form — the
//! paper's observation that position attributes change rarely (§1, §6: the
//! DBMS sees ~15 % of the traditional update volume) is what makes logging
//! the *entire* mutation stream affordable. A replayed record stream is
//! also a complete workload trace for downstream indexing experiments.
//!
//! Framing: each record is stored as
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! The CRC makes torn tail writes detectable: a frame whose length runs
//! past the file, whose CRC mismatches, or whose payload fails to decode
//! marks the end of the valid prefix.

use modb_core::{MovingObject, ObjectId, StationaryObject, UpdateMessage};
use modb_routes::Route;

use crate::codec::{put_u32, put_u64, ByteReader, WalCodec};
use crate::crc32::crc32;
use crate::error::WalError;

/// Upper bound on one record's payload; a corrupt length field beyond this
/// is treated as a torn tail rather than allocated.
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// One logged database mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A moving object registered (trip start, §3.1's initial write of all
    /// sub-attributes).
    RegisterMoving(MovingObject),
    /// A stationary landmark inserted.
    InsertStationary(StationaryObject),
    /// A position-update message addressed to one object. Updates are
    /// logged *before* they are applied; acceptance (stale / off-route /
    /// unknown-object checks) is re-derived deterministically on replay,
    /// so the log doubles as the full update-stream trace.
    Update {
        /// The sending object.
        id: ObjectId,
        /// The update payload.
        msg: UpdateMessage,
    },
    /// A moving object removed (trip over).
    RemoveMoving(ObjectId),
    /// A route added to the route network.
    InsertRoute(Route),
    /// A leadership change sealed into the log at promotion time. The
    /// record is a state no-op on replay (no database mutation); its LSN
    /// marks the first position written under the new epoch, which is
    /// what divergence detection compares against — a revived old
    /// leader whose log extends past this LSN without containing the
    /// epoch record has forked history.
    LeaderEpoch {
        /// The epoch that begins at this record's LSN (monotonic,
        /// starts at 1 for a freshly created log).
        epoch: u64,
    },
}

const TAG_REGISTER_MOVING: u8 = 1;
const TAG_INSERT_STATIONARY: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_REMOVE_MOVING: u8 = 4;
const TAG_INSERT_ROUTE: u8 = 5;
const TAG_LEADER_EPOCH: u8 = 6;

impl WalRecord {
    /// Encodes the record payload (tag + body, no framing).
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::RegisterMoving(obj) => {
                out.push(TAG_REGISTER_MOVING);
                obj.encode(out);
            }
            WalRecord::InsertStationary(obj) => {
                out.push(TAG_INSERT_STATIONARY);
                obj.encode(out);
            }
            WalRecord::Update { id, msg } => {
                out.push(TAG_UPDATE);
                id.encode(out);
                msg.encode(out);
            }
            WalRecord::RemoveMoving(id) => {
                out.push(TAG_REMOVE_MOVING);
                id.encode(out);
            }
            WalRecord::InsertRoute(route) => {
                out.push(TAG_INSERT_ROUTE);
                route.encode(out);
            }
            WalRecord::LeaderEpoch { epoch } => {
                out.push(TAG_LEADER_EPOCH);
                put_u64(out, *epoch);
            }
        }
    }

    /// Decodes a record payload produced by
    /// [`WalRecord::encode_payload`]. The whole buffer must be consumed.
    pub fn decode_payload(buf: &[u8]) -> Result<Self, WalError> {
        let mut r = ByteReader::new(buf);
        let rec = match r.u8()? {
            TAG_REGISTER_MOVING => WalRecord::RegisterMoving(MovingObject::decode(&mut r)?),
            TAG_INSERT_STATIONARY => WalRecord::InsertStationary(StationaryObject::decode(&mut r)?),
            TAG_UPDATE => WalRecord::Update {
                id: ObjectId::decode(&mut r)?,
                msg: UpdateMessage::decode(&mut r)?,
            },
            TAG_REMOVE_MOVING => WalRecord::RemoveMoving(ObjectId::decode(&mut r)?),
            TAG_INSERT_ROUTE => WalRecord::InsertRoute(Route::decode(&mut r)?),
            TAG_LEADER_EPOCH => WalRecord::LeaderEpoch { epoch: r.u64()? },
            _ => return Err(WalError::Decode("unknown record tag")),
        };
        if !r.is_empty() {
            return Err(WalError::Decode("trailing bytes in record payload"));
        }
        Ok(rec)
    }

    /// Appends the framed form (`len + crc + payload`) to `out`.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        let start = out.len();
        put_u32(out, 0); // len placeholder
        put_u32(out, 0); // crc placeholder
        self.encode_payload(out);
        let payload_len = (out.len() - start - 8) as u32;
        let crc = crc32(&out[start + 8..]);
        out[start..start + 4].copy_from_slice(&payload_len.to_le_bytes());
        out[start + 4..start + 8].copy_from_slice(&crc.to_le_bytes());
    }
}

/// Why frame decoding stopped at a given offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameEnd {
    /// The buffer ended exactly on a frame boundary.
    Clean,
    /// The bytes from the reported offset onward are not a valid frame —
    /// a torn tail write (or corruption).
    Torn {
        /// What failed.
        reason: &'static str,
    },
}

/// Splits the first CRC frame off `buf`: `Ok(Some((payload, frame_len)))`
/// for a whole valid frame, `Ok(None)` at end of input, `Err(reason)`
/// when the prefix is not a complete valid frame (a torn tail). Shared by
/// the v1 record scan, the v2 block scan, and the tailer.
pub(crate) fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, &'static str> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() < 8 {
        return Err("truncated frame header");
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len == 0 || len > MAX_RECORD_BYTES {
        return Err("implausible frame length");
    }
    let len = len as usize;
    if buf.len() < 8 + len {
        return Err("truncated frame payload");
    }
    let payload = &buf[8..8 + len];
    if crc32(payload) != crc {
        return Err("crc mismatch");
    }
    Ok(Some((payload, 8 + len)))
}

/// Decodes consecutive frames from `buf`, returning the records, the byte
/// length of the valid prefix, and how decoding ended. Never fails: any
/// invalid frame terminates the scan.
pub fn decode_frames(buf: &[u8]) -> (Vec<WalRecord>, usize, FrameEnd) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        match split_frame(&buf[pos..]) {
            Ok(None) => return (records, pos, FrameEnd::Clean),
            Ok(Some((payload, frame_len))) => match WalRecord::decode_payload(payload) {
                Ok(rec) => {
                    records.push(rec);
                    pos += frame_len;
                }
                Err(_) => {
                    return (
                        records,
                        pos,
                        FrameEnd::Torn {
                            reason: "undecodable payload",
                        },
                    )
                }
            },
            Err(reason) => return (records, pos, FrameEnd::Torn { reason }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{PolicyDescriptor, PositionAttribute, UpdatePosition};
    use modb_geom::Point;
    use modb_routes::{Direction, RouteId};

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::RegisterMoving(MovingObject {
                id: ObjectId(1),
                name: "veh-1".into(),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(0.0, 0.0),
                    start_arc: 0.0,
                    direction: Direction::Forward,
                    speed: 1.0,
                    policy: PolicyDescriptor::Unbounded,
                },
                max_speed: 1.5,
                trip_end: None,
            }),
            WalRecord::InsertStationary(StationaryObject::new(
                ObjectId(100),
                "depot",
                Point::new(5.0, 5.0),
            )),
            WalRecord::Update {
                id: ObjectId(1),
                msg: UpdateMessage::basic(2.0, UpdatePosition::Arc(3.0), 0.9),
            },
            WalRecord::InsertRoute(
                Route::from_vertices(
                    RouteId(9),
                    "spur",
                    vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)],
                )
                .unwrap(),
            ),
            WalRecord::LeaderEpoch { epoch: 2 },
            WalRecord::RemoveMoving(ObjectId(1)),
        ]
    }

    #[test]
    fn frames_round_trip() {
        let records = sample_records();
        let mut buf = Vec::new();
        for rec in &records {
            rec.encode_frame(&mut buf);
        }
        let (decoded, clean, end) = decode_frames(&buf);
        assert_eq!(end, FrameEnd::Clean);
        assert_eq!(clean, buf.len());
        assert_eq!(decoded, records);
    }

    #[test]
    fn torn_tail_detected_at_every_truncation_point() {
        let records = sample_records();
        let mut buf = Vec::new();
        let mut boundaries = vec![0usize];
        for rec in &records {
            rec.encode_frame(&mut buf);
            boundaries.push(buf.len());
        }
        for cut in 0..buf.len() {
            let (decoded, clean, end) = decode_frames(&buf[..cut]);
            // The valid prefix is the largest frame boundary <= cut.
            let expect_n = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(decoded.len(), expect_n, "cut at {cut}");
            assert_eq!(clean, boundaries[expect_n], "cut at {cut}");
            if cut == boundaries[expect_n] {
                assert_eq!(end, FrameEnd::Clean);
            } else {
                assert!(matches!(end, FrameEnd::Torn { .. }), "cut at {cut}");
            }
        }
    }

    #[test]
    fn corrupt_byte_detected() {
        let records = sample_records();
        let mut buf = Vec::new();
        for rec in &records {
            rec.encode_frame(&mut buf);
        }
        // Flip one payload byte in the middle record: decoding stops there.
        let mut bad = buf.clone();
        let mid = buf.len() / 2;
        bad[mid] ^= 0x40;
        let (decoded, clean, end) = decode_frames(&bad);
        assert!(decoded.len() < records.len());
        assert!(clean <= mid);
        assert!(matches!(end, FrameEnd::Torn { .. }));
    }

    #[test]
    fn zero_filled_tail_is_torn() {
        let mut buf = Vec::new();
        sample_records()[2].encode_frame(&mut buf);
        let valid = buf.len();
        buf.extend_from_slice(&[0u8; 64]); // pre-allocated file tail
        let (decoded, clean, end) = decode_frames(&buf);
        assert_eq!(decoded.len(), 1);
        assert_eq!(clean, valid);
        assert_eq!(
            end,
            FrameEnd::Torn {
                reason: "implausible frame length"
            }
        );
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(WalRecord::decode_payload(&[99]).is_err());
        let mut buf = Vec::new();
        WalRecord::RemoveMoving(ObjectId(1)).encode_payload(&mut buf);
        buf.push(0); // trailing garbage
        assert!(WalRecord::decode_payload(&buf).is_err());
    }
}
