//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every log frame and snapshot payload.
//!
//! Hand-rolled (table-driven, one byte per step) so the crate stays
//! dependency-free; throughput is far above what the log's I/O path needs.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (the common `crc32(b"123456789") == 0xCBF43926`
/// parameterisation, matching zlib/PNG/Ethernet).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = b"position update".to_vec();
        let clean = crc32(&data);
        for i in 0..data.len() * 8 {
            data[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&data), clean, "flip at bit {i} undetected");
            data[i / 8] ^= 1 << (i % 8);
        }
        assert_eq!(crc32(&data), clean);
    }
}
