//! Property tests for the durability layer.
//!
//! - Codec round trips: random `UpdateMessage`s and `PositionAttribute`s
//!   survive encode → decode unchanged (including non-finite floats,
//!   which round-trip bit-exactly).
//! - Crash recovery: a random update stream is logged, the log is cut at
//!   an arbitrary byte (the torn tail a crash leaves), and the recovered
//!   database must equal a reference rebuild from the surviving whole
//!   frames — same objects, same attributes, same query answers.

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::Point;
use modb_policy::BoundKind;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_wal::{
    decode_block_frames, list_segments, recover, write_snapshot, ByteReader, WalCodec, WalOptions,
    WalRecord, WalWriter,
};
use proptest::prelude::*;

const ROUTE_LEN: f64 = 100.0;

fn direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Forward), Just(Direction::Backward)]
}

fn policy() -> impl Strategy<Value = PolicyDescriptor> {
    prop_oneof![
        (any::<bool>(), 0.1f64..100.0).prop_map(|(imm, c)| PolicyDescriptor::CostBased {
            kind: if imm {
                BoundKind::Immediate
            } else {
                BoundKind::Delayed
            },
            update_cost: c,
        }),
        (0.0f64..10.0).prop_map(|b| PolicyDescriptor::FixedBound { bound: b }),
        Just(PolicyDescriptor::Unbounded),
    ]
}

fn update_position() -> impl Strategy<Value = UpdatePosition> {
    prop_oneof![
        (0.0f64..ROUTE_LEN).prop_map(UpdatePosition::Arc),
        (-200.0f64..200.0, -200.0f64..200.0)
            .prop_map(|(x, y)| UpdatePosition::Coordinates(Point::new(x, y))),
    ]
}

fn update_message() -> impl Strategy<Value = UpdateMessage> {
    (
        -100.0f64..100.0,
        update_position(),
        0.0f64..5.0,
        proptest::option::of((1u64..100).prop_map(RouteId)),
        proptest::option::of(direction()),
        proptest::option::of(policy()),
    )
        .prop_map(
            |(time, position, speed, route, direction, policy)| UpdateMessage {
                time,
                position,
                speed,
                route,
                direction,
                policy,
            },
        )
}

fn position_attribute() -> impl Strategy<Value = PositionAttribute> {
    (
        -100.0f64..100.0,
        1u64..100,
        (-200.0f64..200.0, -200.0f64..200.0),
        0.0f64..ROUTE_LEN,
        direction(),
        0.0f64..5.0,
        policy(),
    )
        .prop_map(
            |(start_time, route, (x, y), start_arc, direction, speed, policy)| PositionAttribute {
                start_time,
                route: RouteId(route),
                start_position: Point::new(x, y),
                start_arc,
                direction,
                speed,
                policy,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn update_message_round_trips(msg in update_message()) {
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        let decoded = UpdateMessage::decode(&mut r).expect("decodes");
        prop_assert!(r.is_empty(), "decode must consume everything");
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn position_attribute_round_trips(attr in position_attribute()) {
        let mut buf = Vec::new();
        attr.encode(&mut buf);
        let mut r = ByteReader::new(&buf);
        let decoded = PositionAttribute::decode(&mut r).expect("decodes");
        prop_assert!(r.is_empty(), "decode must consume everything");
        prop_assert_eq!(decoded, attr);
    }

    #[test]
    fn floats_round_trip_bit_exactly(bits in any::<u64>()) {
        // NaNs and infinities included: the codec stores raw IEEE-754
        // bits, so re-encoding the decoded value reproduces the bytes.
        let msg = UpdateMessage::basic(
            f64::from_bits(bits),
            UpdatePosition::Arc(f64::from_bits(bits ^ 0x5555)),
            f64::from_bits(bits.rotate_left(17)),
        );
        let mut buf = Vec::new();
        msg.encode(&mut buf);
        let decoded = UpdateMessage::decode(&mut ByteReader::new(&buf)).expect("decodes");
        let mut buf2 = Vec::new();
        decoded.encode(&mut buf2);
        prop_assert_eq!(buf, buf2);
    }
}

// ---------------------------------------------------------------------
// Crash-recovery property
// ---------------------------------------------------------------------

fn network() -> RouteNetwork {
    RouteNetwork::from_routes([Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .unwrap()])
    .unwrap()
}

fn vehicle(id: u64, arc: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::CostBased {
                kind: BoundKind::Immediate,
                update_cost: 5.0,
            },
        },
        max_speed: 1.5,
        trip_end: None,
    }
}

fn apply(db: &mut Database, rec: &WalRecord) {
    match rec {
        WalRecord::RegisterMoving(obj) => {
            let _ = db.register_moving(obj.clone());
        }
        WalRecord::InsertStationary(obj) => {
            let _ = db.insert_stationary(obj.clone());
        }
        WalRecord::Update { id, msg } => {
            let _ = db.apply_update(*id, msg);
        }
        WalRecord::RemoveMoving(id) => {
            let _ = db.remove_moving(*id);
        }
        WalRecord::InsertRoute(route) => {
            let _ = db.insert_route(route.clone());
        }
        WalRecord::LeaderEpoch { .. } => {}
    }
}

fn assert_equivalent(a: &Database, b: &Database) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.moving_count(), b.moving_count());
    let mut ids: Vec<ObjectId> = a.moving_ids().collect();
    ids.sort_unstable();
    let mut b_ids: Vec<ObjectId> = b.moving_ids().collect();
    b_ids.sort_unstable();
    prop_assert_eq!(&ids, &b_ids);
    for &id in &ids {
        prop_assert_eq!(a.moving(id).unwrap(), b.moving(id).unwrap());
        prop_assert_eq!(a.history_of(id), b.history_of(id));
        for t in [0.0, 7.5, 20.0] {
            prop_assert_eq!(a.position_of(id, t).unwrap(), b.position_of(id, t).unwrap());
        }
    }
    // Range answers (the index path) must agree too.
    use modb_geom::{Polygon, Rect};
    use modb_index::QueryRegion;
    for t in [0.0, 10.0] {
        let g = Polygon::rectangle(&Rect::new(
            Point::new(0.0, -5.0),
            Point::new(ROUTE_LEN, 5.0),
        ))
        .unwrap();
        let ra = a
            .range_query(&QueryRegion::at_instant(g.clone(), t))
            .unwrap();
        let rb = b.range_query(&QueryRegion::at_instant(g, t)).unwrap();
        prop_assert_eq!(ra.must, rb.must);
        prop_assert_eq!(ra.may, rb.may);
    }
    Ok(())
}

#[derive(Debug, Clone)]
struct CrashSpec {
    n_objects: u64,
    // (object index offset, time, arc fraction, speed)
    updates: Vec<(u64, f64, f64, f64)>,
    // Where the crash cuts the log file, as a fraction of its length.
    cut_frac: f64,
}

fn crash_spec() -> impl Strategy<Value = CrashSpec> {
    (
        1u64..6,
        proptest::collection::vec((0u64..7, 0.0f64..30.0, 0.0f64..1.0, 0.0f64..1.4), 0..40),
        0.0f64..1.0,
    )
        .prop_map(|(n_objects, updates, cut_frac)| CrashSpec {
            n_objects,
            updates,
            cut_frac,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Log N random updates (some stale, some addressed to unknown
    /// objects), kill the process mid-write by truncating the log at an
    /// arbitrary byte, recover, and check the result equals a reference
    /// database rebuilt from the frames that survived the cut.
    #[test]
    fn recovery_after_torn_tail_matches_reference(spec in crash_spec(), case in 0u64..u64::MAX) {
        let dir = std::env::temp_dir().join(format!(
            "modb-wal-prop-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        // Build the log: registrations, then the random update stream.
        let config = DatabaseConfig::default();
        let empty = Database::new(network(), config);
        let mut writer = WalWriter::create(&dir, WalOptions::default()).unwrap();
        write_snapshot(&dir, &empty, 0).unwrap();
        let mut records: Vec<WalRecord> = (0..spec.n_objects)
            .map(|i| WalRecord::RegisterMoving(vehicle(i, i as f64 * 10.0)))
            .collect();
        records.extend(spec.updates.iter().map(|&(off, time, arc_frac, speed)| {
            WalRecord::Update {
                // off can exceed the fleet size: unknown-object updates
                // are logged and rejected, live and on replay alike.
                id: ObjectId(off),
                msg: UpdateMessage::basic(
                    time,
                    UpdatePosition::Arc(arc_frac * ROUTE_LEN),
                    speed,
                ),
            }
        }));
        for rec in &records {
            writer.append(rec).unwrap();
        }
        writer.sync().unwrap();
        drop(writer);

        // Crash: cut the (single) segment at an arbitrary byte.
        let segments = list_segments(&dir).unwrap();
        prop_assert_eq!(segments.len(), 1);
        let path = &segments[0].1;
        let full = std::fs::read(path).unwrap();
        let cut = (full.len() as f64 * spec.cut_frac) as usize;
        std::fs::write(path, &full[..cut]).unwrap();

        let recovered = recover(&dir).unwrap();

        // Reference: replay exactly the whole frames that survived (the
        // default format is v2, one block per frame — see wal_v2.rs for
        // the mixed-version variants of this property).
        const HEADER: usize = modb_wal::segment::SEGMENT_HEADER_BYTES as usize;
        let (surviving, _, _) = if cut > HEADER {
            decode_block_frames(&full[HEADER..cut])
        } else {
            // The cut ate the segment header: recovery deletes the file
            // and starts from the (empty) snapshot.
            (Vec::new(), 0, modb_wal::FrameEnd::Clean)
        };
        let mut reference = Database::new(network(), config);
        for rec in &surviving {
            apply(&mut reference, rec);
        }

        prop_assert_eq!(recovered.report.next_lsn, surviving.len() as u64);
        prop_assert_eq!(
            recovered.report.replayed + recovered.report.rejected,
            surviving.len() as u64
        );
        assert_equivalent(&recovered.database, &reference)?;

        // Recovery is idempotent: a second run sees a clean tail.
        let again = recover(&dir).unwrap();
        prop_assert_eq!(again.report.truncated_bytes, 0);
        prop_assert_eq!(again.report.next_lsn, recovered.report.next_lsn);
        assert_equivalent(&again.database, &reference)?;

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
