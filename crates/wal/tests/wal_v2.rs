//! Integration tests for the v2 WAL format: mixed-version logs, the
//! format boundary under compaction, the delta codec under adversarial
//! record streams, and crash cuts landing inside compressed blocks.
//!
//! The upgrade contract under test: a log written by the v1 code, then
//! continued by this code (v1 tail kept, v2 from the next rotation on),
//! must recover to exactly the state an all-v1 or all-v2 log of the same
//! records recovers to — and v1 segments must still be written
//! byte-for-byte as the v1 code wrote them.

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
    UpdateMessage, UpdatePosition,
};
use modb_geom::Point;
use modb_routes::{Direction, Route, RouteId, RouteNetwork};
use modb_wal::{
    compact, decode_block, encode_block, list_segments, recover, scan_segment, write_snapshot,
    FsyncPolicy, SegmentFormat, WalBatch, WalOptions, WalRecord, WalWriter, SEGMENT_VERSION,
    SEGMENT_VERSION_V2,
};
use proptest::prelude::*;
use std::path::PathBuf;

const ROUTE_LEN: f64 = 100.0;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modb-wal-v2-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn network() -> RouteNetwork {
    RouteNetwork::from_routes([Route::from_vertices(
        RouteId(1),
        "main",
        vec![Point::new(0.0, 0.0), Point::new(ROUTE_LEN, 0.0)],
    )
    .unwrap()])
    .unwrap()
}

fn vehicle(id: u64, arc: f64) -> MovingObject {
    MovingObject {
        id: ObjectId(id),
        name: format!("veh-{id}"),
        attr: PositionAttribute {
            start_time: 0.0,
            route: RouteId(1),
            start_position: Point::new(arc, 0.0),
            start_arc: arc,
            direction: Direction::Forward,
            speed: 1.0,
            policy: PolicyDescriptor::Unbounded,
        },
        max_speed: 2.0,
        trip_end: None,
    }
}

fn update(id: u64, time: f64, arc: f64) -> WalRecord {
    WalRecord::Update {
        id: ObjectId(id),
        msg: UpdateMessage::basic(time, UpdatePosition::Arc(arc % ROUTE_LEN), 1.0),
    }
}

/// The record stream both halves of the mixed-version tests use:
/// registrations, then interleaved updates across the fleet.
fn workload(fleet: u64, rounds: u64) -> Vec<WalRecord> {
    let mut records: Vec<WalRecord> = (0..fleet)
        .map(|i| WalRecord::RegisterMoving(vehicle(i, i as f64 * 5.0)))
        .collect();
    for r in 0..rounds {
        for id in 0..fleet {
            records.push(update(id, r as f64 + 1.0, id as f64 * 5.0 + r as f64));
        }
    }
    records
}

fn reference_db(records: &[WalRecord]) -> Database {
    let mut db = Database::new(network(), DatabaseConfig::default());
    for rec in records {
        modb_wal::apply_record(&mut db, rec.clone());
    }
    db
}

fn assert_same_state(a: &Database, b: &Database) {
    assert_eq!(a.moving_count(), b.moving_count());
    let mut ids: Vec<ObjectId> = a.moving_ids().collect();
    ids.sort_unstable();
    for id in ids {
        assert_eq!(
            a.moving(id).unwrap(),
            b.moving(id).unwrap(),
            "object {id:?}"
        );
        assert_eq!(a.history_of(id), b.history_of(id), "history {id:?}");
    }
}

fn opts(format: SegmentFormat, max_segment_bytes: u64) -> WalOptions {
    WalOptions {
        fsync: FsyncPolicy::Never,
        max_segment_bytes,
        format,
        ..WalOptions::default()
    }
}

#[test]
fn v1_segments_are_written_byte_for_byte_as_before() {
    // The v1 path must be bit-identical to the pre-v2 writer: header,
    // then one `encode_frame` per record, nothing else.
    let dir = tmp("v1-bytes");
    let records = workload(3, 4);
    let mut w = WalWriter::create(&dir, opts(SegmentFormat::V1, u64::MAX)).unwrap();
    for rec in &records {
        w.append(rec).unwrap();
    }
    w.sync().unwrap();
    drop(w);
    let segments = list_segments(&dir).unwrap();
    assert_eq!(segments.len(), 1);
    let on_disk = std::fs::read(&segments[0].1).unwrap();
    let mut expected = modb_wal::segment::encode_header(SEGMENT_VERSION, 0);
    for rec in &records {
        rec.encode_frame(&mut expected);
    }
    assert_eq!(on_disk, expected, "v1 writer output changed");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mixed_version_log_recovers_like_a_pure_one() {
    // First half written v1, log resumed with v2 configured (v1 tail
    // continues, rotations switch), second half lands in v2 segments.
    let records = workload(4, 30);
    let half = records.len() / 2;

    let dir = tmp("mixed-replay");
    let empty = Database::new(network(), DatabaseConfig::default());
    let mut w = WalWriter::create(&dir, opts(SegmentFormat::V1, 512)).unwrap();
    write_snapshot(&dir, &empty, 0).unwrap();
    for rec in &records[..half] {
        w.append(rec).unwrap();
    }
    w.sync().unwrap();
    drop(w);

    let mut w = WalWriter::resume(&dir, opts(SegmentFormat::V2, 512), half as u64).unwrap();
    assert_eq!(w.segment_version(), SEGMENT_VERSION, "tail stays v1");
    let mut batch = WalBatch::new();
    for rec in &records[half..] {
        batch.push(rec);
        if batch.records() == 8 {
            w.append_batch(&mut batch).unwrap();
        }
    }
    w.append_batch(&mut batch).unwrap();
    w.sync().unwrap();
    assert_eq!(w.segment_version(), SEGMENT_VERSION_V2, "rotations switch");
    drop(w);

    // Both formats must be present on disk.
    let versions: Vec<u32> = list_segments(&dir)
        .unwrap()
        .iter()
        .map(|(_, p)| scan_segment(p).unwrap().version)
        .collect();
    assert!(versions.contains(&SEGMENT_VERSION));
    assert!(versions.contains(&SEGMENT_VERSION_V2));

    let recovered = recover(&dir).unwrap();
    assert_eq!(recovered.report.next_lsn, records.len() as u64);
    assert_same_state(&recovered.database, &reference_db(&records));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_across_the_version_boundary_keeps_snapshots_consistent() {
    let records = workload(4, 40);
    let half = records.len() / 2;

    let dir = tmp("mixed-compact");
    let empty = Database::new(network(), DatabaseConfig::default());
    let mut w = WalWriter::create(&dir, opts(SegmentFormat::V1, 512)).unwrap();
    write_snapshot(&dir, &empty, 0).unwrap();
    for rec in &records[..half] {
        w.append(rec).unwrap();
    }
    drop(w);
    let mut w = WalWriter::resume(&dir, opts(SegmentFormat::V2, 512), half as u64).unwrap();
    for rec in &records[half..] {
        w.append(rec).unwrap();
    }
    w.sync().unwrap();

    // Snapshot the current state mid-log (as DurableDatabase would),
    // then compact with retention 1: every segment fully covered by the
    // snapshot goes, v1 and v2 alike.
    let state = reference_db(&records);
    write_snapshot(&dir, &state, w.next_lsn()).unwrap();
    let before = list_segments(&dir).unwrap().len();
    let report = compact(&dir, 1).unwrap();
    assert!(report.segments_removed > 0, "{report}");
    assert!(list_segments(&dir).unwrap().len() < before);

    // Post-compaction recovery must still reach the same state…
    let recovered = recover(&dir).unwrap();
    assert_eq!(recovered.report.next_lsn, records.len() as u64);
    assert_same_state(&recovered.database, &state);

    // …and the log must still be appendable-and-recoverable across the
    // compaction point.
    drop(w);
    let mut w = WalWriter::resume(
        &dir,
        opts(SegmentFormat::V2, 512),
        recovered.report.next_lsn,
    )
    .unwrap();
    let tail_update = update(0, 1000.0, 50.0);
    w.append(&tail_update).unwrap();
    w.sync().unwrap();
    drop(w);
    let mut all = records.clone();
    all.push(tail_update);
    let recovered = recover(&dir).unwrap();
    assert_eq!(recovered.report.next_lsn, all.len() as u64);
    assert_same_state(&recovered.database, &reference_db(&all));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_inside_a_compressed_block_truncates_to_the_block_boundary() {
    // Two batched (compressed) blocks; cut the file at every byte of the
    // second block's frame. Recovery must always land exactly at the
    // first block's boundary — never lose it, never deliver a partial
    // second block.
    let dir = tmp("torn-block");
    let empty = Database::new(network(), DatabaseConfig::default());
    let records = workload(4, 8);
    let half = records.len() / 2;
    let mut w = WalWriter::create(&dir, opts(SegmentFormat::V2, u64::MAX)).unwrap();
    write_snapshot(&dir, &empty, 0).unwrap();
    let mut batch = WalBatch::new();
    for rec in &records[..half] {
        batch.push(rec);
    }
    w.append_batch(&mut batch).unwrap();
    let boundary = {
        let segments = list_segments(&dir).unwrap();
        w.sync().unwrap();
        std::fs::metadata(&segments[0].1).unwrap().len() as usize
    };
    for rec in &records[half..] {
        batch.push(rec);
    }
    w.append_batch(&mut batch).unwrap();
    w.sync().unwrap();
    drop(w);

    let path = list_segments(&dir).unwrap().remove(0).1;
    let full = std::fs::read(&path).unwrap();
    assert!(full.len() > boundary);
    let first_half_state = reference_db(&records[..half]);
    for cut in boundary..full.len() {
        std::fs::write(&path, &full[..cut]).unwrap();
        let recovered = recover(&dir).unwrap();
        assert_eq!(
            recovered.report.next_lsn, half as u64,
            "cut at {cut}: partial second block must be dropped whole"
        );
        assert_eq!(recovered.report.truncated_bytes, (cut - boundary) as u64);
        assert_same_state(&recovered.database, &first_half_state);
    }
    // The untouched file recovers everything.
    std::fs::write(&path, &full).unwrap();
    let recovered = recover(&dir).unwrap();
    assert_eq!(recovered.report.next_lsn, records.len() as u64);
    assert_same_state(&recovered.database, &reference_db(&records));
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Delta-codec property: adversarial object interleavings and times
// ---------------------------------------------------------------------

/// An update whose shape stresses the per-object delta contexts: ids
/// collide across a small space (interleavings), times go backwards as
/// often as forwards, and some records carry options that force the
/// verbatim fallback.
fn arb_record() -> impl Strategy<Value = WalRecord> {
    (
        0u64..12,
        // Arbitrary bit patterns: NaNs, infinities, subnormals included.
        any::<u64>().prop_map(f64::from_bits),
        prop_oneof![
            (-1.0e6f64..1.0e6).prop_map(UpdatePosition::Arc),
            (any::<u64>(), any::<u64>()).prop_map(|(x, y)| UpdatePosition::Coordinates(
                Point::new(f64::from_bits(x), f64::from_bits(y))
            )),
        ],
        -10.0f64..10.0,
        proptest::option::of(1u64..5),
    )
        .prop_map(|(id, time, position, speed, route)| WalRecord::Update {
            id: ObjectId(id),
            msg: UpdateMessage {
                time,
                position,
                speed,
                route: route.map(RouteId), // Some ⇒ verbatim fallback
                direction: None,
                policy: None,
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random interleavings, out-of-order times, NaN/∞ payloads, and
    /// random block boundaries (= restart points, since every block is
    /// context-reset): the stream must round-trip bit-exactly through
    /// the delta codec, compressed and uncompressed alike.
    #[test]
    fn delta_codec_round_trips_across_restart_points(
        records in proptest::collection::vec(arb_record(), 1..120),
        splits in proptest::collection::vec(1usize..20, 0..8),
        compress in any::<bool>(),
    ) {
        // Carve the stream into blocks at the random split widths.
        let mut blocks: Vec<&[WalRecord]> = Vec::new();
        let mut rest: &[WalRecord] = &records;
        for w in splits {
            if rest.is_empty() { break; }
            let take = w.min(rest.len());
            blocks.push(&rest[..take]);
            rest = &rest[take..];
        }
        if !rest.is_empty() {
            blocks.push(rest);
        }
        let mut decoded = Vec::new();
        for block in blocks {
            let mut payload = Vec::new();
            encode_block(block, compress, &mut payload);
            prop_assert_eq!(
                modb_wal::peek_block_count(&payload).unwrap(),
                block.len() as u64
            );
            decoded.extend(decode_block(&payload).unwrap());
        }
        // PartialEq on f64 treats NaN ≠ NaN, so compare encoded bytes:
        // bit-exact round-trip is exactly what the codec promises.
        let mut want = Vec::new();
        let mut got = Vec::new();
        for r in &records { r.encode_payload(&mut want); }
        for r in &decoded { r.encode_payload(&mut got); }
        prop_assert_eq!(want, got);
    }
}
