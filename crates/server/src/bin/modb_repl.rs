//! An interactive query console over a demo fleet.
//!
//! Reads `RETRIEVE …` queries from stdin (one per line) and prints
//! answers; `\h` lists the grammar, `\q` quits. A seeded 50-vehicle fleet
//! on a 10×10 grid is loaded at startup so there is something to query.
//! `\save <dir>` snapshots the full database state to a durability
//! directory; `\load <dir>` replaces the session database with the state
//! recovered from one (snapshot + any write-ahead-log segments).
//!
//! Queries execute on a [`modb_server::QueryEngine`] — lock-free against
//! the latest published epoch snapshot. Several statements separated by
//! `;` on one line run as a batch fanned across the engine's worker pool.
//! `\epoch` publishes a fresh snapshot and prints the engine's counters
//! (per-epoch query counts, p50/p99 latency, candidate/refine ratio).
//! `\connect <addr>` points the console at a remote query front-end
//! ([`modb_server::DurableDatabase::serve_queries`]): queries and batches
//! then travel the wire, and `\stats` scrapes the server's combined
//! metrics frame (query counters, ingest, WAL I/O, replication horizon).
//!
//! Run with: `cargo run --release -p modb-server --bin modb_repl`
//! (pipe queries in for scripted use: `echo "..." | modb_repl`).

use std::io::{BufRead, Write};

use modb_core::{
    Database, DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute,
};
use modb_policy::BoundKind;
use modb_query::QueryResult;
use modb_routes::{generators, Direction};
use modb_server::{
    BatchOutcome, ClusterRouter, QueryClient, QueryEngine, QueryEngineConfig, QueryServer,
    QueryServerConfig, ReplicaConfig, ServerStatsSnapshot, ShardMap, SharedDatabase,
    StandbyReplica,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HELP: &str = "\
queries:
  RETRIEVE POSITION OF OBJECT <id|'name'> AT TIME t
  RETRIEVE OBJECTS INSIDE RECT (x0, y0, x1, y1) AT TIME t
  RETRIEVE OBJECTS INSIDE POLYGON ((x,y), (x,y), ...) DURING t0 TO t1
  RETRIEVE OBJECTS WITHIN r OF POINT (x, y) AT TIME t
  RETRIEVE OBJECTS WITHIN r OF OBJECT <id|'name'> AT TIME t
  RETRIEVE k NEAREST OBJECTS TO POINT (x, y) AT TIME t
  (separate several statements with `;` to run them as one batch)
commands:  \\h help   \\q quit   \\epoch publish snapshot + stats
           \\save <dir> snapshot state   \\load <dir> recover state
           \\replica <addr> <dir> follow a leader (queries move to the replica)
           \\replica show lag/watermark stats   \\replica stop detach
           \\replica serve <addr> answer remote queries from this replica
           (lag-widened, read-your-writes floors honoured or refused Stale)
           \\replica promote seal a new leadership epoch and lead from here
           (chained followers keep streaming; a diverged old leader is refused)
           \\session show this connection's read-your-writes token
           \\session <lsn> raise it (use a writer's token to read its writes)
           \\connect <addr> send queries to a remote front-end
           \\connect show connection   \\connect stop go local again
           \\cluster <addr> <addr> ... scatter-gather queries across shard
           servers (hash-of-id shard map; takes precedence over \\connect)
           \\cluster show shards   \\cluster stop disband
           \\cluster failover <shard> <addr> repoint one shard's writes at
           its promoted standby (read-your-writes token carries over)
           \\stats scrape the remote server/cluster (local stats otherwise)";

/// Derived WAL efficiency for `\stats`: how many log bytes each fsync
/// paid for, and the mean group-commit collapse factor. Group commit
/// drives both up under concurrent acked ingest.
fn print_wal_efficiency(stats: &ServerStatsSnapshot) {
    if let Some(per_fsync) = stats.wal_bytes_written.checked_div(stats.wal_fsyncs) {
        println!("  wal bytes/fsync: {per_fsync}");
    }
    if stats.wal_group_commits > 0 {
        println!(
            "  wal group-commit mean batch: {:.1} (last {})",
            stats.wal_group_tickets as f64 / stats.wal_group_commits as f64,
            stats.wal_group_last_batch
        );
    }
}

/// Index band layout for `\stats`: entries per speed band (slowest
/// first) plus the band-migration counter.
fn print_band_summary(stats: &ServerStatsSnapshot) {
    let bands = (stats.index_bands as usize).min(stats.index_band_entries.len());
    let entries: Vec<String> = stats.index_band_entries[..bands]
        .iter()
        .map(|e| e.to_string())
        .collect();
    println!(
        "  index bands: {bands} entries [{}] migrations: {}",
        entries.join(", "),
        stats.index_band_migrations
    );
}

fn demo_fleet() -> SharedDatabase {
    let network = generators::grid_network(10, 10, 1.0, 0).expect("valid grid");
    let route_ids = network.route_ids();
    let db = SharedDatabase::new(Database::new(network, DatabaseConfig::default()));
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..50u64 {
        let rid = route_ids[rng.gen_range(0..route_ids.len())];
        let (arc, point) = db.with_read(|inner| {
            let route = inner.network().get(rid).expect("route");
            let arc = rng.gen_range(0.0..route.length());
            (arc, route.point_at(arc))
        });
        db.register_moving(MovingObject {
            id: ObjectId(i),
            name: format!("veh-{i:02}"),
            attr: PositionAttribute {
                start_time: 0.0,
                route: rid,
                start_position: point,
                start_arc: arc,
                direction: if rng.gen_bool(0.5) {
                    Direction::Forward
                } else {
                    Direction::Backward
                },
                speed: rng.gen_range(0.2..1.0),
                policy: PolicyDescriptor::CostBased {
                    kind: BoundKind::Immediate,
                    update_cost: 5.0,
                },
            },
            max_speed: 1.5,
            trip_end: Some(240.0),
        })
        .expect("registered");
    }
    db
}

fn print_result(db: &SharedDatabase, result: &QueryResult) {
    match result {
        QueryResult::Position(p) => println!(
            "  ({:.3}, {:.3}) ± {:.3} mi  [interval miles {:.3}..{:.3}]",
            p.position.x, p.position.y, p.bound, p.interval.0, p.interval.1
        ),
        QueryResult::Range(r) => {
            let names = |ids: &[ObjectId]| -> String {
                ids.iter()
                    .map(|id| {
                        db.with_read(|inner| {
                            inner
                                .moving(*id)
                                .map(|o| o.name.clone())
                                .unwrap_or_else(|_| format!("{id:?}"))
                        })
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!("  must: [{}]", names(&r.must));
            println!("  may:  [{}]", names(&r.may));
            println!("  ({} candidates filtered)", r.candidates);
        }
        QueryResult::Nearest(n) => {
            for nb in &n.ranked {
                let name = db.with_read(|inner| {
                    inner
                        .moving(nb.id)
                        .map(|o| o.name.clone())
                        .unwrap_or_default()
                });
                println!(
                    "  {name}: {:.3} mi (±{:.3}) {}",
                    nb.distance,
                    nb.bound,
                    if nb.certain {
                        "[certain]"
                    } else {
                        "[possible]"
                    }
                );
            }
            println!("  ({} contenders outside the ranking)", n.contenders.len());
        }
    }
}

/// Snapshots the whole session state into `dir`. The REPL has no live
/// log, so the snapshot's LSN high-water mark is whatever the directory's
/// log already reached (0 for a fresh directory) — recovery will replay
/// nothing on top of it.
fn save(db: &SharedDatabase, dir: &str) {
    let path = std::path::Path::new(dir);
    let lsn = modb_wal::list_segments(path)
        .ok()
        .and_then(|segments| {
            let (_, last) = segments.into_iter().next_back()?;
            let scan = modb_wal::scan_segment(&last).ok()?;
            Some(scan.start_lsn + scan.records.len() as u64)
        })
        .unwrap_or(0);
    match db.with_read(|inner| modb_wal::write_snapshot(path, inner, lsn)) {
        Ok(file) => println!(
            "  saved {} objects to {}",
            db.moving_count(),
            file.display()
        ),
        Err(e) => println!("  error: {e}"),
    }
}

fn load(db: &mut SharedDatabase, dir: &str) {
    match SharedDatabase::recover(std::path::Path::new(dir)) {
        Ok((recovered, report)) => {
            println!("  {report}");
            println!("  loaded {} objects", recovered.moving_count());
            *db = recovered;
        }
        Err(e) => println!("  error: {e}"),
    }
}

/// Prints a verdict that came over the wire. Ids stay raw — the remote
/// database's names are not resolvable against the local demo fleet.
fn print_remote(result: &QueryResult) {
    match result {
        QueryResult::Position(p) => println!(
            "  ({:.3}, {:.3}) ± {:.3} mi  [interval miles {:.3}..{:.3}]",
            p.position.x, p.position.y, p.bound, p.interval.0, p.interval.1
        ),
        QueryResult::Range(r) => {
            let ids = |ids: &[ObjectId]| {
                ids.iter()
                    .map(|id| format!("#{}", id.0))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!("  must: [{}]", ids(&r.must));
            println!("  may:  [{}]", ids(&r.may));
            println!("  ({} candidates filtered)", r.candidates);
        }
        QueryResult::Nearest(n) => {
            for nb in &n.ranked {
                println!(
                    "  #{}: {:.3} mi (±{:.3}) {}",
                    nb.id.0,
                    nb.distance,
                    nb.bound,
                    if nb.certain {
                        "[certain]"
                    } else {
                        "[possible]"
                    }
                );
            }
            println!("  ({} contenders outside the ranking)", n.contenders.len());
        }
    }
}

/// Runs a script on the remote front-end, printing per-statement
/// verdicts. Returns `false` when the connection died (the caller then
/// drops it and the console goes local again). A typed `Stale` refusal
/// is not a dead connection: the session (and its token) stay up.
fn run_remote(client: &mut QueryClient, script: &str) -> bool {
    match client.batch_attempt(script, client.token()) {
        Ok(BatchOutcome::Stale { applied, required }) => {
            println!(
                "  stale: follower applied {applied} < session token {required} \
                 (retry once it catches up, or \\connect a fresher follower \
                 — tokens never lower on a live session)"
            );
            true
        }
        Ok(BatchOutcome::Done(verdicts)) => {
            let many = verdicts.len() > 1;
            for (i, verdict) in verdicts.iter().enumerate() {
                if many {
                    println!("  -- statement {}", i + 1);
                }
                match verdict {
                    Ok(result) => print_remote(result),
                    Err(e) => println!("  error: {e}"),
                }
            }
            true
        }
        Err(e) => {
            println!("  connection lost: {e}");
            false
        }
    }
}

/// Runs a script through the scatter-gather router, printing merged
/// per-statement verdicts. Returns `false` on a cluster-level failure
/// (a dead shard); the caller then disbands the cluster.
fn run_cluster(router: &mut ClusterRouter, script: &str) -> bool {
    match router.run_batch(script) {
        Ok(verdicts) => {
            let many = verdicts.len() > 1;
            for (i, verdict) in verdicts.iter().enumerate() {
                if many {
                    println!("  -- statement {}", i + 1);
                }
                match verdict {
                    Ok(result) => print_remote(result),
                    Err(e) => println!("  error: {e}"),
                }
            }
            true
        }
        Err(e) => {
            println!("  cluster failed: {e}");
            false
        }
    }
}

/// The console publishes snapshots explicitly (`\epoch`, and after
/// `\load`), so no background publisher thread is needed.
fn console_engine(db: &SharedDatabase) -> QueryEngine {
    db.query_engine(QueryEngineConfig {
        epoch_interval: None,
        ..QueryEngineConfig::default()
    })
}

fn main() {
    let mut db = demo_fleet();
    let mut engine = console_engine(&db);
    let mut replica: Option<StandbyReplica> = None;
    // Holds a `\replica promote`d leader: keeps its WAL writer (and any
    // still-running replication/query servers) alive for the session.
    let mut promoted: Option<modb_server::DurableDatabase> = None;
    let mut replica_server: Option<QueryServer> = None;
    let mut remote: Option<QueryClient> = None;
    let mut cluster: Option<ClusterRouter> = None;
    println!(
        "modb console — {} vehicles on a 10x10-mile grid. \\h for help.",
        db.moving_count()
    );
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("modb> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "quit" | "exit" => break,
            "\\h" | "help" => {
                println!("{HELP}");
                continue;
            }
            "\\epoch" => {
                let epoch = engine.publish_now();
                println!("  published epoch {epoch}");
                println!("  {}", engine.stats());
                continue;
            }
            cmd if cmd.starts_with("\\replica") => {
                let args: Vec<&str> = cmd
                    .strip_prefix("\\replica")
                    .unwrap_or("")
                    .split_whitespace()
                    .collect();
                match args.as_slice() {
                    [] => match (&replica, &promoted) {
                        (Some(r), _) => println!("  {}", r.stats()),
                        (None, Some(leader)) => println!(
                            "  promoted leader: epoch {} frontier lsn {}",
                            leader.epoch(),
                            leader.wal().next_lsn()
                        ),
                        (None, None) => println!("  no replica attached — \\replica <addr> <dir>"),
                    },
                    ["stop"] => match replica.take() {
                        Some(r) => {
                            if let Some(server) = replica_server.take() {
                                server.shutdown();
                                println!("  stopped serving follower reads");
                            }
                            println!("  detached: {}", r.shutdown());
                        }
                        None => println!("  no replica attached"),
                    },
                    ["promote"] => match replica.take() {
                        Some(r) => match r.promote() {
                            Ok(leader) => {
                                println!(
                                    "  promoted: leadership epoch {} sealed at lsn {} — this \
                                     node now leads. Chained followers keep streaming from it; \
                                     a revived old leader whose tail passed the promotion point \
                                     is refused (diverged).",
                                    leader.epoch(),
                                    leader.wal().next_lsn()
                                );
                                db = leader.database().clone();
                                engine = console_engine(&db);
                                promoted = Some(leader);
                            }
                            // promote() consumed the replica; its state is
                            // unusable to lead from, so nothing to restore.
                            Err(e) => println!("  error: promotion failed: {e}"),
                        },
                        None => println!("  no replica attached — \\replica <addr> <dir> first"),
                    },
                    ["serve", addr] => match &replica {
                        Some(r) => {
                            if let Some(server) = replica_server.take() {
                                server.shutdown();
                            }
                            let follower_engine = std::sync::Arc::new(
                                r.database().query_engine(QueryEngineConfig::default()),
                            );
                            match r.serve_queries(
                                follower_engine,
                                *addr,
                                QueryServerConfig::default(),
                            ) {
                                Ok(server) => {
                                    println!(
                                        "  serving follower reads on {} (lag-widened; \
                                         session floors honoured or refused Stale)",
                                        server.local_addr()
                                    );
                                    replica_server = Some(server);
                                }
                                Err(e) => println!("  error: {e}"),
                            }
                        }
                        None => println!("  no replica attached — \\replica <addr> <dir> first"),
                    },
                    [addr, dir] => {
                        if let Some(server) = replica_server.take() {
                            server.shutdown();
                            println!("  stopped serving follower reads");
                        }
                        if let Some(r) = replica.take() {
                            println!("  detached: {}", r.shutdown());
                        }
                        match StandbyReplica::open(
                            std::path::Path::new(dir),
                            addr.to_string(),
                            ReplicaConfig::default(),
                        ) {
                            Ok(r) => {
                                db = r.database().clone();
                                engine = console_engine(&db);
                                println!(
                                    "  following {addr} into {dir}; queries now run on the \
                                     replica (\\epoch publishes its latest applied state)"
                                );
                                replica = Some(r);
                            }
                            Err(e) => println!("  error: {e}"),
                        }
                    }
                    _ => println!(
                        "  usage: \\replica [<addr> <dir> | serve <addr> | promote | stop]"
                    ),
                }
                continue;
            }
            cmd if cmd.starts_with("\\session") => {
                let args: Vec<&str> = cmd
                    .strip_prefix("\\session")
                    .unwrap_or("")
                    .split_whitespace()
                    .collect();
                match (&mut remote, args.as_slice()) {
                    (None, _) => println!("  no remote connection — \\connect <addr> first"),
                    (Some(client), []) => println!(
                        "  read-your-writes token: {} (stamped on every batch)",
                        client.token()
                    ),
                    (Some(client), [lsn]) => match lsn.parse::<u64>() {
                        Ok(lsn) => {
                            client.set_token(lsn);
                            println!("  read-your-writes token now {}", client.token());
                        }
                        Err(_) => println!("  usage: \\session [<lsn>]"),
                    },
                    _ => println!("  usage: \\session [<lsn>]"),
                }
                continue;
            }
            "\\stats" => {
                if let Some(router) = &mut cluster {
                    match router.stats() {
                        Ok(snapshots) => {
                            for (shard, stats) in snapshots.iter().enumerate() {
                                println!("  -- shard {shard}");
                                for l in stats.prometheus_text().lines() {
                                    if !l.starts_with('#') {
                                        println!("  {l}");
                                    }
                                }
                                print_wal_efficiency(stats);
                                print_band_summary(stats);
                            }
                        }
                        Err(e) => {
                            println!("  cluster failed: {e}");
                            if let Some(router) = cluster.take() {
                                router.close();
                            }
                        }
                    }
                    continue;
                }
                match &mut remote {
                    Some(client) => match client.stats() {
                        Ok(stats) => {
                            for l in stats.prometheus_text().lines() {
                                if !l.starts_with('#') {
                                    println!("  {l}");
                                }
                            }
                            print_wal_efficiency(&stats);
                            print_band_summary(&stats);
                        }
                        Err(e) => {
                            println!("  connection lost: {e}");
                            remote = None;
                        }
                    },
                    None => {
                        println!("  {}", engine.stats());
                        let (bands, migrations) = engine
                            .database()
                            .with_read(|db| (db.index_band_stats(), db.index_band_migrations()));
                        let entries: Vec<String> =
                            bands.iter().map(|b| b.entries.to_string()).collect();
                        println!(
                            "  index bands: {} entries [{}] migrations: {migrations}",
                            bands.len(),
                            entries.join(", ")
                        );
                    }
                }
                continue;
            }
            cmd if cmd.starts_with("\\connect") => {
                let args: Vec<&str> = cmd
                    .strip_prefix("\\connect")
                    .unwrap_or("")
                    .split_whitespace()
                    .collect();
                match args.as_slice() {
                    [] => match &remote {
                        Some(client) => println!("  connected to {}", client.server_addr()),
                        None => println!("  not connected — \\connect <addr>"),
                    },
                    ["stop"] => match remote.take() {
                        Some(client) => {
                            println!("  disconnected from {}", client.server_addr());
                            client.close();
                        }
                        None => println!("  not connected"),
                    },
                    [addr] => match QueryClient::connect(addr) {
                        Ok(client) => {
                            println!(
                                "  connected to {}; queries now run remotely \
                                 (\\connect stop to go local)",
                                client.server_addr()
                            );
                            remote = Some(client);
                        }
                        Err(e) => println!("  error: {e}"),
                    },
                    _ => println!("  usage: \\connect [<addr> | stop]"),
                }
                continue;
            }
            cmd if cmd.starts_with("\\cluster") => {
                let args: Vec<&str> = cmd
                    .strip_prefix("\\cluster")
                    .unwrap_or("")
                    .split_whitespace()
                    .collect();
                match args.as_slice() {
                    [] => match &cluster {
                        Some(router) => {
                            println!("  scatter-gather across {} shards", router.shards())
                        }
                        None => println!("  no cluster — \\cluster <addr> <addr> ..."),
                    },
                    ["stop"] => match cluster.take() {
                        Some(router) => {
                            println!("  disbanded {}-shard cluster", router.shards());
                            router.close();
                        }
                        None => println!("  no cluster"),
                    },
                    ["failover", shard, addr] => match &mut cluster {
                        Some(router) => match shard.parse::<usize>() {
                            Ok(shard) => match router.fail_over_shard(shard, addr) {
                                Ok(()) => println!(
                                    "  shard {shard} writes now flow to {addr} \
                                     (read-your-writes token carried over)"
                                ),
                                Err(e) => println!("  error: {e}"),
                            },
                            Err(_) => println!("  usage: \\cluster failover <shard> <addr>"),
                        },
                        None => println!("  no cluster — \\cluster <addr> <addr> ... first"),
                    },
                    addrs => {
                        let parsed: Result<Vec<std::net::SocketAddr>, _> =
                            addrs.iter().map(|a| a.parse()).collect();
                        match parsed {
                            Err(e) => println!("  error: bad address: {e}"),
                            Ok(parsed) => {
                                match ClusterRouter::connect(&parsed, ShardMap::hash(parsed.len()))
                                {
                                    Ok(router) => {
                                        if let Some(old) = cluster.take() {
                                            println!("  disbanded {}-shard cluster", old.shards());
                                            old.close();
                                        }
                                        println!(
                                            "  scatter-gather across {} shards \
                                             (hash-of-id map; \\cluster stop to go local)",
                                            router.shards()
                                        );
                                        cluster = Some(router);
                                    }
                                    Err(e) => println!("  error: {e}"),
                                }
                            }
                        }
                    }
                }
                continue;
            }
            cmd if cmd.starts_with("\\save") => {
                match cmd.strip_prefix("\\save").map(str::trim) {
                    Some(dir) if !dir.is_empty() => save(&db, dir),
                    _ => println!("  usage: \\save <dir>"),
                }
                continue;
            }
            cmd if cmd.starts_with("\\load") => {
                match cmd.strip_prefix("\\load").map(str::trim) {
                    Some(dir) if !dir.is_empty() => {
                        load(&mut db, dir);
                        engine = console_engine(&db);
                    }
                    _ => println!("  usage: \\load <dir>"),
                }
                continue;
            }
            script if cluster.is_some() => {
                let router = cluster.as_mut().expect("checked above");
                if !run_cluster(router, script) {
                    if let Some(router) = cluster.take() {
                        router.close();
                    }
                }
            }
            script if remote.is_some() => {
                let client = remote.as_mut().expect("checked above");
                if !run_remote(client, script) {
                    remote = None;
                }
            }
            script if script.contains(';') => {
                for (i, result) in engine.run_batch(script).into_iter().enumerate() {
                    println!("  -- statement {}", i + 1);
                    match result {
                        Ok(result) => print_result(&db, &result),
                        Err(e) => println!("  error: {e}"),
                    }
                }
            }
            query => match engine.run_query(query) {
                Ok(result) => print_result(&db, &result),
                Err(e) => println!("  error: {e}"),
            },
        }
    }
}
