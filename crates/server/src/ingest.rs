//! Concurrent update ingestion: the server side of the wireless link.
//!
//! Position updates from thousands of vehicles arrive asynchronously; the
//! [`IngestService`] fans them across worker threads that apply them to a
//! [`SharedDatabase`], counting accepted and rejected messages.
//!
//! **Ordering.** The DBMS rejects stale timestamps, so updates from one
//! object must be applied in send order. The service therefore *shards*
//! by object id: each worker owns its own queue, and the
//! [`IngestHandle`] routes every envelope for a given object to the same
//! worker — per-object FIFO with cross-object parallelism.
//!
//! **Durability.** A service spawned with
//! [`IngestService::spawn_with_wal`] logs every envelope to the
//! write-ahead log. Each worker frames the record into a private
//! [`modb_wal::WalBatch`] (no lock, no I/O), applies the update, and
//! hands the batch to the shared writer every [`WAL_BATCH_RECORDS`]
//! envelopes and at drain, so the WAL mutex is touched once per batch,
//! not once per update. Apply-before-flush means a record never receives
//! an LSN ahead of the in-memory state — the watermark invariant behind
//! [`crate::DurableDatabase`]'s pause-free snapshots. Rejected updates
//! are logged too: replay re-derives the same verdicts, and the log
//! doubles as a complete update-stream trace.
//!
//! Acknowledged applies additionally promise durability: before the ack
//! is delivered, the worker waits on a shared
//! [`modb_wal::GroupCommitter`], which collapses every concurrently
//! waiting worker's fsync into one — the fsync rate stays pinned near
//! the disk's flush rate no matter how many workers are acking.
//!
//! Rejections (stale timestamps after a vehicle reboot, off-route fixes,
//! unknown objects) are normal radio-network operation — counted by
//! reason in [`IngestStats`], not fatal.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, SendError, Sender};
use modb_core::{CoreError, ObjectId, UpdateMessage};
use modb_wal::{
    GroupCommitHandle, GroupCommitStats, GroupCommitter, SharedWal, WalBatch, WalRecord,
};

/// Envelopes a worker buffers in its private WAL batch before taking the
/// shared writer lock once to flush them all.
pub const WAL_BATCH_RECORDS: u64 = 32;

/// What flows through a shard queue: an update to apply (fire-and-forget
/// or acknowledged), or the stop sentinel that ends the worker. The
/// sentinel (rather than relying on channel closure) makes
/// [`IngestService::shutdown`] safe even while producer handles are
/// still alive — without it, an outstanding [`IngestHandle`] clone would
/// keep the channel open and deadlock the worker join.
enum Job {
    Apply(UpdateEnvelope),
    /// Apply, flush the worker's WAL batch immediately, and reply with
    /// the [`UpdateOutcome`] — the remote-ingest path, where the caller
    /// is waiting to hand the client a read-your-writes token.
    ApplyAcked(UpdateEnvelope, Sender<UpdateOutcome>),
    Stop,
}

/// What an acknowledged apply reports back to the producer.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// The WAL frontier (next LSN) observed *after* this envelope's
    /// record was flushed — every record of this update stream with an
    /// LSN below `lsn` is already applied to the in-memory database
    /// (apply-before-log), so a query snapshot published at frontier
    /// ≥ `lsn` is guaranteed to cover this update. 0 when the service
    /// has no WAL.
    pub lsn: u64,
    /// The DBMS verdict (rejected updates are applied-and-logged as
    /// rejections, same as the fire-and-forget path).
    pub verdict: Result<(), CoreError>,
}

use crate::shared::SharedDatabase;

/// A position update addressed to one object.
#[derive(Debug, Clone)]
pub struct UpdateEnvelope {
    /// The sending object.
    pub id: ObjectId,
    /// The update payload.
    pub msg: UpdateMessage,
}

/// Counters published by the ingest workers. Rejections are broken down
/// by the DBMS verdict so operators can tell a fleet of rebooting
/// vehicles (stale timestamps) from a map-matching problem (off-route).
#[derive(Debug, Default)]
pub struct IngestStats {
    accepted: AtomicUsize,
    stale: AtomicUsize,
    off_route: AtomicUsize,
    unknown_object: AtomicUsize,
    other_rejected: AtomicUsize,
    wal_errors: AtomicUsize,
}

impl IngestStats {
    /// Updates applied successfully.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Total updates rejected by the DBMS, all reasons combined.
    pub fn rejected(&self) -> usize {
        self.stale.load(Ordering::Relaxed)
            + self.off_route.load(Ordering::Relaxed)
            + self.unknown_object.load(Ordering::Relaxed)
            + self.other_rejected.load(Ordering::Relaxed)
    }

    /// Updates rejected for a timestamp older than the stored one.
    pub fn stale(&self) -> usize {
        self.stale.load(Ordering::Relaxed)
    }

    /// Updates rejected because the reported position was too far from
    /// the route (map-matching tolerance exceeded).
    pub fn off_route(&self) -> usize {
        self.off_route.load(Ordering::Relaxed)
    }

    /// Updates addressed to an object the DBMS does not know.
    pub fn unknown_object(&self) -> usize {
        self.unknown_object.load(Ordering::Relaxed)
    }

    /// Updates rejected for any other reason (invalid fields, unknown
    /// routes, …).
    pub fn other_rejected(&self) -> usize {
        self.other_rejected.load(Ordering::Relaxed)
    }

    /// WAL append failures (the update was still applied; the log is
    /// missing records and a recovery would replay a shorter prefix).
    pub fn wal_errors(&self) -> usize {
        self.wal_errors.load(Ordering::Relaxed)
    }

    /// A coherent copy of all counters (each counter is read once; the
    /// snapshot is consistent to within concurrent increments).
    pub fn snapshot(&self) -> IngestStatsSnapshot {
        IngestStatsSnapshot {
            accepted: self.accepted(),
            stale: self.stale(),
            off_route: self.off_route(),
            unknown_object: self.unknown_object(),
            other_rejected: self.other_rejected(),
            wal_errors: self.wal_errors(),
        }
    }

    fn record(&self, outcome: &Result<(), CoreError>) {
        let counter = match outcome {
            Ok(()) => &self.accepted,
            Err(CoreError::StaleUpdate { .. }) => &self.stale,
            Err(CoreError::OffRoute { .. }) => &self.off_route,
            Err(CoreError::UnknownObject(_)) => &self.unknown_object,
            Err(_) => &self.other_rejected,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A plain-value copy of [`IngestStats`], printable for operator logs and
/// experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStatsSnapshot {
    /// Updates applied successfully.
    pub accepted: usize,
    /// Rejected: stale timestamp.
    pub stale: usize,
    /// Rejected: off-route position.
    pub off_route: usize,
    /// Rejected: unknown object.
    pub unknown_object: usize,
    /// Rejected: everything else.
    pub other_rejected: usize,
    /// WAL append failures.
    pub wal_errors: usize,
}

impl IngestStatsSnapshot {
    /// Total rejected, all reasons combined.
    pub fn rejected(&self) -> usize {
        self.stale + self.off_route + self.unknown_object + self.other_rejected
    }

    /// Total envelopes processed.
    pub fn total(&self) -> usize {
        self.accepted + self.rejected()
    }
}

impl fmt::Display for IngestStatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accepted, {} rejected ({} stale, {} off-route, {} unknown, {} other)",
            self.accepted,
            self.rejected(),
            self.stale,
            self.off_route,
            self.unknown_object,
            self.other_rejected,
        )?;
        if self.wal_errors > 0 {
            write!(f, ", {} wal errors", self.wal_errors)?;
        }
        Ok(())
    }
}

/// Producer-side handle: routes envelopes to the worker owning the
/// object's shard, preserving per-object order.
#[derive(Clone)]
pub struct IngestHandle {
    shards: Vec<Sender<Job>>,
}

impl fmt::Debug for IngestHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngestHandle")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl IngestHandle {
    /// Enqueues an update; blocks when the owning shard's queue is full
    /// (back-pressure).
    ///
    /// # Errors
    ///
    /// [`SendError`] when the service has shut down.
    pub fn send(&self, envelope: UpdateEnvelope) -> Result<(), SendError<UpdateEnvelope>> {
        let shard = (envelope.id.0 as usize) % self.shards.len();
        self.shards[shard].send(Job::Apply(envelope)).map_err(|e| {
            SendError(match e.0 {
                Job::Apply(env) => env,
                _ => unreachable!("send only enqueues Apply"),
            })
        })
    }

    /// Enqueues an update for an *acknowledged* apply: the worker
    /// applies it, flushes its WAL batch immediately (assigning the
    /// record an LSN), and delivers an [`UpdateOutcome`] on the returned
    /// receiver. Blocks when the owning shard's queue is full
    /// (back-pressure), like [`IngestHandle::send`]; per-object FIFO
    /// order with concurrent `send` calls is preserved (same shard
    /// queue).
    ///
    /// The receiver yields exactly one outcome; it errors instead if the
    /// service shuts down before the envelope is applied (only possible
    /// for envelopes racing in behind the stop sentinel).
    ///
    /// # Errors
    ///
    /// [`SendError`] when the service has shut down.
    pub fn send_acked(
        &self,
        envelope: UpdateEnvelope,
    ) -> Result<Receiver<UpdateOutcome>, SendError<UpdateEnvelope>> {
        let shard = (envelope.id.0 as usize) % self.shards.len();
        let (tx, rx) = bounded(1);
        self.shards[shard]
            .send(Job::ApplyAcked(envelope, tx))
            .map(|()| rx)
            .map_err(|e| {
                SendError(match e.0 {
                    Job::ApplyAcked(env, _) => env,
                    _ => unreachable!("send_acked only enqueues ApplyAcked"),
                })
            })
    }
}

/// Read-only observer over a running [`IngestService`]: counters plus the
/// instantaneous queue depth, detached from the service's lifetime (see
/// [`IngestService::monitor`]).
#[derive(Clone)]
pub struct IngestMonitor {
    stats: Arc<IngestStats>,
    shards: Vec<Sender<Job>>,
    commit: Option<GroupCommitHandle>,
}

impl fmt::Debug for IngestMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngestMonitor")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl IngestMonitor {
    /// Plain-value copy of the accept/reject counters.
    pub fn snapshot(&self) -> IngestStatsSnapshot {
        self.stats.snapshot()
    }

    /// Envelopes enqueued but not yet applied, summed across shards.
    /// Reads 0 once the workers have drained after a shutdown.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Group-commit coalescing counters (`None` for a WAL-less service).
    pub fn group_commit_stats(&self) -> Option<GroupCommitStats> {
        self.commit.as_ref().map(GroupCommitHandle::stats)
    }
}

/// What the query front-end needs to accept remote `Update` frames: a
/// producer [`IngestHandle`] for the acknowledged-apply path plus an
/// [`IngestMonitor`] for the stats scrape. Cloneable and detached from
/// the service's lifetime, like its parts.
#[derive(Clone, Debug)]
pub struct IngestFrontend {
    /// Producer handle the server routes remote updates through.
    pub handle: IngestHandle,
    /// Observer for the scrape's ingest counters and queue depth.
    pub monitor: IngestMonitor,
}

/// A pool of ingest workers draining sharded update queues into the
/// database.
pub struct IngestService {
    handle: Option<IngestHandle>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<IngestStats>,
    wal: Option<SharedWal>,
    committer: Option<GroupCommitter>,
}

impl IngestService {
    /// Spawns `n_workers` sharded workers, each with a queue of capacity
    /// `queue_depth` (both clamped to ≥ 1). No write-ahead logging.
    pub fn spawn(db: SharedDatabase, n_workers: usize, queue_depth: usize) -> Self {
        Self::spawn_inner(db, None, n_workers, queue_depth)
    }

    /// Like [`IngestService::spawn`], but every envelope is appended to
    /// `wal` (framed per worker before the update is applied, flushed to
    /// the shared writer every [`WAL_BATCH_RECORDS`] envelopes and at
    /// drain — always after application, preserving the snapshot
    /// watermark invariant).
    pub fn spawn_with_wal(
        db: SharedDatabase,
        wal: SharedWal,
        n_workers: usize,
        queue_depth: usize,
    ) -> Self {
        Self::spawn_inner(db, Some(wal), n_workers, queue_depth)
    }

    fn spawn_inner(
        db: SharedDatabase,
        wal: Option<SharedWal>,
        n_workers: usize,
        queue_depth: usize,
    ) -> Self {
        let stats = Arc::new(IngestStats::default());
        // One committer serves every worker: concurrent acked applies
        // share fsyncs instead of issuing their own.
        let committer = wal.as_ref().map(|w| GroupCommitter::spawn(w.clone()));
        let mut shards = Vec::with_capacity(n_workers.max(1));
        let mut workers = Vec::with_capacity(n_workers.max(1));
        for _ in 0..n_workers.max(1) {
            let (tx, rx) = bounded::<Job>(queue_depth.max(1));
            let db = db.clone();
            let stats = Arc::clone(&stats);
            let wal = wal.clone();
            let commit = committer.as_ref().map(GroupCommitter::handle);
            workers.push(std::thread::spawn(move || {
                let mut batch = WalBatch::new();
                let mut apply = |env: UpdateEnvelope, ack: Option<Sender<UpdateOutcome>>| {
                    if wal.is_some() {
                        // Frame first (no lock, no I/O) so the batch and
                        // the in-memory state stay in lockstep — a crash
                        // loses both together.
                        batch.push(&WalRecord::Update {
                            id: env.id,
                            msg: env.msg,
                        });
                    }
                    let verdict = db.apply_update(env.id, &env.msg);
                    stats.record(&verdict);
                    // Flush only after applying: a record never gets an
                    // LSN before its update is in the database, which is
                    // the watermark invariant the pause-free snapshot
                    // path relies on. An acknowledged apply flushes
                    // unconditionally — its LSN backs a read-your-writes
                    // token, so it cannot sit in the private batch.
                    if let Some(wal) = &wal {
                        if (ack.is_some() || batch.records() >= WAL_BATCH_RECORDS)
                            && wal.append_batch(&mut batch).is_err()
                        {
                            stats.wal_errors.fetch_add(1, Ordering::Relaxed);
                            batch.clear();
                        }
                    }
                    if let Some(ack) = ack {
                        let lsn = wal.as_ref().map(|w| w.next_lsn()).unwrap_or(0);
                        // The ack promises durability: wait on the shared
                        // committer, whose one fsync covers every worker
                        // acking concurrently (group commit). The token
                        // itself is unchanged — still the WAL frontier.
                        if let Some(commit) = &commit {
                            if commit.commit(lsn).is_err() {
                                stats.wal_errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // A dropped receiver (caller gave up) is fine.
                        let _ = ack.send(UpdateOutcome { lsn, verdict });
                    }
                };
                for job in rx.iter() {
                    match job {
                        Job::Apply(env) => apply(env, None),
                        Job::ApplyAcked(env, tx) => apply(env, Some(tx)),
                        Job::Stop => {
                            // Drain guarantee: everything enqueued before
                            // the sentinel has already been applied
                            // (FIFO); envelopes racing in behind it are
                            // drained best-effort before the worker
                            // exits, so a producer that saw `send` return
                            // Ok before `shutdown` returned is not
                            // silently dropped.
                            while let Ok(job) = rx.try_recv() {
                                match job {
                                    Job::Apply(env) => apply(env, None),
                                    Job::ApplyAcked(env, tx) => apply(env, Some(tx)),
                                    Job::Stop => {}
                                }
                            }
                            break;
                        }
                    }
                }
                if let Some(wal) = &wal {
                    if wal.append_batch(&mut batch).is_err() {
                        stats.wal_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
            shards.push(tx);
        }
        IngestService {
            handle: Some(IngestHandle { shards }),
            workers,
            stats,
            wal,
            committer,
        }
    }

    /// A producer handle (one per vehicle link, typically). Cloneable.
    ///
    /// # Panics
    ///
    /// Panics if called after [`IngestService::shutdown`].
    pub fn handle(&self) -> IngestHandle {
        self.handle
            .as_ref()
            .expect("ingest service already shut down")
            .clone()
    }

    /// Shared counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Envelopes currently queued across all shards (enqueued but not
    /// yet picked up by a worker). An instantaneous gauge for the stats
    /// scrape: sustained non-zero depth means ingest is running behind
    /// the offered load. Returns 0 after shutdown.
    pub fn queue_depth(&self) -> usize {
        self.handle
            .as_ref()
            .map(|h| h.shards.iter().map(|s| s.len()).sum())
            .unwrap_or(0)
    }

    /// An observer handle for the stats scrape: owns clones of the
    /// counters and shard senders, so the query front-end can read
    /// accept/reject totals and the instantaneous queue depth without
    /// borrowing the service. Holding a monitor does not keep the workers
    /// alive — shutdown stops them via the stop sentinel, not channel
    /// closure.
    ///
    /// # Panics
    ///
    /// Panics if called after [`IngestService::shutdown`].
    pub fn monitor(&self) -> IngestMonitor {
        IngestMonitor {
            stats: Arc::clone(&self.stats),
            shards: self
                .handle
                .as_ref()
                .expect("ingest service already shut down")
                .shards
                .clone(),
            commit: self.committer.as_ref().map(GroupCommitter::handle),
        }
    }

    /// Group-commit coalescing counters (`None` for a WAL-less service,
    /// or after shutdown).
    pub fn group_commit_stats(&self) -> Option<GroupCommitStats> {
        self.committer.as_ref().map(GroupCommitter::stats)
    }

    /// Bundles [`IngestService::handle`] and [`IngestService::monitor`]
    /// for [`crate::DurableDatabase::serve_queries`], which needs both:
    /// the handle to route remote `Update` frames through the shard
    /// queues, the monitor for the stats scrape.
    ///
    /// # Panics
    ///
    /// Panics if called after [`IngestService::shutdown`].
    pub fn frontend(&self) -> IngestFrontend {
        IngestFrontend {
            handle: self.handle(),
            monitor: self.monitor(),
        }
    }

    /// Drains the queues and stops the workers, even if producer handles
    /// are still alive (a stop sentinel is enqueued behind any pending
    /// updates). Returns the final counters.
    ///
    /// **Drain guarantee.** Every envelope whose [`IngestHandle::send`]
    /// returned `Ok` before this call is applied to the database — and,
    /// for a WAL-backed service, flushed from the per-worker batches and
    /// fsynced — before the workers stop. Envelopes sent concurrently
    /// with the shutdown are drained best-effort.
    pub fn shutdown(mut self) -> IngestStatsSnapshot {
        self.stop_workers();
        self.stats.snapshot()
    }

    fn stop_workers(&mut self) {
        if let Some(handle) = self.handle.take() {
            for shard in &handle.shards {
                // Queued behind pending updates: the worker drains them
                // first, then exits. A full queue blocks briefly; a
                // disconnected one means the worker is already gone.
                let _ = shard.send(Job::Stop);
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Workers are joined (none can be blocked in a commit wait
        // anymore); now the committer can drain its last tickets and
        // stop.
        if let Some(committer) = self.committer.take() {
            if committer.shutdown().is_err() {
                self.stats.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Workers have flushed their batches into the writer; one final
        // sync makes the drained log durable regardless of fsync policy.
        if let Some(wal) = &self.wal {
            if wal.sync().is_err() {
                self.stats.wal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for IngestService {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{
        Database, DatabaseConfig, MovingObject, PolicyDescriptor, PositionAttribute, UpdatePosition,
    };
    use modb_geom::Point;
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};
    use modb_wal::{FsyncPolicy, WalOptions, WalWriter};

    fn shared(n_objects: u64) -> SharedDatabase {
        let route = Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)],
        )
        .unwrap();
        let network = RouteNetwork::from_routes([route]).unwrap();
        let db = SharedDatabase::new(Database::new(network, DatabaseConfig::default()));
        for i in 0..n_objects {
            db.register_moving(MovingObject {
                id: ObjectId(i),
                name: format!("veh-{i}"),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(i as f64, 0.0),
                    start_arc: i as f64,
                    direction: Direction::Forward,
                    speed: 1.0,
                    policy: PolicyDescriptor::CostBased {
                        kind: BoundKind::Immediate,
                        update_cost: 5.0,
                    },
                },
                max_speed: 1.5,
                trip_end: None,
            })
            .unwrap();
        }
        db
    }

    #[test]
    fn ingest_applies_all_valid_updates_in_order() {
        let db = shared(50);
        let service = IngestService::spawn(db.clone(), 4, 64);
        let handle = service.handle();
        // 10 producers; each owns 5 objects and sends monotone updates.
        // Sharding by id keeps per-object order even across workers.
        std::thread::scope(|s| {
            for p in 0..10u64 {
                let handle = handle.clone();
                s.spawn(move || {
                    for round in 1..=5u64 {
                        for i in 0..50u64 {
                            if i % 10 != p {
                                continue;
                            }
                            handle
                                .send(UpdateEnvelope {
                                    id: ObjectId(i),
                                    msg: UpdateMessage::basic(
                                        round as f64,
                                        UpdatePosition::Arc(i as f64 + round as f64),
                                        0.9,
                                    ),
                                })
                                .unwrap();
                        }
                    }
                });
            }
        });
        drop(handle);
        let stats = service.shutdown();
        assert_eq!(stats.accepted, 250);
        assert_eq!(stats.rejected(), 0);
        db.with_read(|inner| {
            for i in 0..50u64 {
                assert_eq!(inner.moving(ObjectId(i)).unwrap().attr.start_time, 5.0);
            }
        });
    }

    #[test]
    fn rejections_are_counted_by_reason() {
        let db = shared(2);
        let service = IngestService::spawn(db.clone(), 2, 8);
        let handle = service.handle();
        let send = |id: u64, msg: UpdateMessage| {
            handle
                .send(UpdateEnvelope {
                    id: ObjectId(id),
                    msg,
                })
                .unwrap();
        };
        send(0, UpdateMessage::basic(5.0, UpdatePosition::Arc(10.0), 1.0)); // ok
        send(0, UpdateMessage::basic(4.0, UpdatePosition::Arc(11.0), 1.0)); // stale
        send(99, UpdateMessage::basic(5.0, UpdatePosition::Arc(1.0), 1.0)); // unknown
        send(
            1,
            UpdateMessage::basic(
                5.0,
                UpdatePosition::Coordinates(Point::new(10.0, 50.0)),
                1.0,
            ),
        ); // off-route
        send(1, UpdateMessage::basic(5.0, UpdatePosition::Arc(-3.0), 1.0)); // invalid
        drop(handle);
        let stats = service.shutdown();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.stale, 1);
        assert_eq!(stats.unknown_object, 1);
        assert_eq!(stats.off_route, 1);
        assert_eq!(stats.other_rejected, 1);
        assert_eq!(stats.rejected(), 4);
        assert_eq!(stats.total(), 5);
        let line = stats.to_string();
        assert!(line.contains("1 accepted"), "{line}");
        assert!(line.contains("4 rejected"), "{line}");
        assert!(line.contains("1 stale"), "{line}");
        assert!(!line.contains("wal errors"), "{line}");
    }

    #[test]
    fn queries_run_while_ingesting() {
        let db = shared(100);
        let service = IngestService::spawn(db.clone(), 4, 128);
        let handle = service.handle();
        let producer = std::thread::spawn(move || {
            for round in 1..=20u64 {
                for i in 0..100u64 {
                    handle
                        .send(UpdateEnvelope {
                            id: ObjectId(i),
                            msg: UpdateMessage::basic(
                                round as f64 * 0.1,
                                UpdatePosition::Arc(i as f64 + round as f64 * 0.1),
                                1.0,
                            ),
                        })
                        .unwrap();
                }
            }
        });
        for _ in 0..50 {
            let r = db
                .within_distance_of_point(Point::new(50.0, 0.0), 25.0, 2.0)
                .unwrap();
            assert!(r.candidates <= 100);
        }
        producer.join().unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.total(), 2000);
        assert_eq!(
            stats.rejected(),
            0,
            "sharded routing preserves per-object order"
        );
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let db = shared(1);
        let service = IngestService::spawn(db, 2, 4);
        let handle = service.handle();
        handle
            .send(UpdateEnvelope {
                id: ObjectId(0),
                msg: UpdateMessage::basic(1.0, UpdatePosition::Arc(1.0), 1.0),
            })
            .unwrap();
        drop(handle);
        drop(service); // must not hang or leak
    }

    #[test]
    fn send_after_shutdown_errors() {
        let db = shared(1);
        let service = IngestService::spawn(db, 1, 4);
        let handle = service.handle();
        let stats = service.shutdown();
        assert_eq!(stats.total(), 0);
        assert!(handle
            .send(UpdateEnvelope {
                id: ObjectId(0),
                msg: UpdateMessage::basic(1.0, UpdatePosition::Arc(1.0), 1.0),
            })
            .is_err());
    }

    #[test]
    fn acked_apply_flushes_immediately_and_reports_the_frontier() {
        let dir = std::env::temp_dir().join(format!("modb-ingest-ack-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = shared(4);
        let wal = SharedWal::new(
            WalWriter::create(
                &dir,
                WalOptions {
                    fsync: FsyncPolicy::Never,
                    ..WalOptions::default()
                },
            )
            .unwrap(),
        );
        let service = IngestService::spawn_with_wal(db.clone(), wal.clone(), 2, 8);
        let handle = service.handle();
        let mut last_lsn = 0;
        for round in 1..=5u64 {
            let rx = handle
                .send_acked(UpdateEnvelope {
                    id: ObjectId(round % 4),
                    msg: UpdateMessage::basic(round as f64, UpdatePosition::Arc(round as f64), 1.0),
                })
                .unwrap();
            let outcome = rx.recv().unwrap();
            assert!(outcome.verdict.is_ok());
            // Acked applies bypass the 32-record batch threshold: every
            // ack sees its own record already flushed, so the reported
            // frontier strictly advances.
            assert!(outcome.lsn > last_lsn, "{} !> {last_lsn}", outcome.lsn);
            last_lsn = outcome.lsn;
        }
        assert_eq!(wal.next_lsn(), 5);
        // A rejected update is applied-and-logged too: the frontier
        // still advances and the verdict carries the DBMS error.
        let rx = handle
            .send_acked(UpdateEnvelope {
                id: ObjectId(1),
                msg: UpdateMessage::basic(0.5, UpdatePosition::Arc(9.0), 1.0),
            })
            .unwrap();
        let outcome = rx.recv().unwrap();
        assert!(matches!(
            outcome.verdict,
            Err(CoreError::StaleUpdate { .. })
        ));
        assert_eq!(outcome.lsn, 6);
        drop(handle);
        let stats = service.shutdown();
        assert_eq!(stats.total(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_acked_ingest_group_commits() {
        let dir = std::env::temp_dir().join(format!("modb-ingest-gc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = shared(16);
        let wal = SharedWal::new(
            WalWriter::create(
                &dir,
                WalOptions {
                    // Every fsync in this test is the group committer's.
                    fsync: FsyncPolicy::Never,
                    ..WalOptions::default()
                },
            )
            .unwrap(),
        );
        let service = IngestService::spawn_with_wal(db, wal.clone(), 4, 32);
        let handle = service.handle();
        let per_producer = 20u64;
        std::thread::scope(|s| {
            for p in 0..8u64 {
                let handle = handle.clone();
                s.spawn(move || {
                    for round in 1..=per_producer {
                        let rx = handle
                            .send_acked(UpdateEnvelope {
                                id: ObjectId((p * 2) % 16),
                                msg: UpdateMessage::basic(
                                    (p * per_producer + round) as f64,
                                    UpdatePosition::Arc(round as f64),
                                    1.0,
                                ),
                            })
                            .unwrap();
                        let outcome = rx.recv().unwrap();
                        assert!(outcome.lsn > 0, "acked applies carry a frontier");
                    }
                });
            }
        });
        let gc = service.group_commit_stats().expect("wal-backed service");
        assert!(gc.commits >= 1);
        assert!(
            gc.commits <= gc.tickets,
            "never more fsyncs than tickets: {gc:?}"
        );
        assert_eq!(service.monitor().group_commit_stats(), Some(gc));
        let (_, fsyncs) = wal.io_counters();
        assert_eq!(
            fsyncs, gc.commits,
            "policy is Never: the committer owns every fsync"
        );
        drop(handle);
        let stats = service.shutdown();
        assert_eq!(stats.total() as u64, 8 * per_producer);
        assert_eq!(stats.wal_errors, 0);
        assert_eq!(wal.next_lsn(), 8 * per_producer);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_backed_ingest_logs_every_envelope_before_stopping() {
        let dir = std::env::temp_dir().join(format!("modb-ingest-wal-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = shared(10);
        let wal = SharedWal::new(
            WalWriter::create(
                &dir,
                WalOptions {
                    fsync: FsyncPolicy::Never,
                    ..WalOptions::default()
                },
            )
            .unwrap(),
        );
        let service = IngestService::spawn_with_wal(db.clone(), wal.clone(), 4, 32);
        let handle = service.handle();
        std::thread::scope(|s| {
            for p in 0..4u64 {
                let handle = handle.clone();
                s.spawn(move || {
                    for round in 1..=25u64 {
                        for i in 0..10u64 {
                            if i % 4 != p {
                                continue;
                            }
                            handle
                                .send(UpdateEnvelope {
                                    id: ObjectId(i),
                                    // Every other round is stale: rejected
                                    // but still logged.
                                    msg: UpdateMessage::basic(
                                        if round % 2 == 0 { 0.0 } else { round as f64 },
                                        UpdatePosition::Arc(i as f64 + round as f64),
                                        0.9,
                                    ),
                                })
                                .unwrap();
                        }
                    }
                });
            }
        });
        drop(handle);
        let stats = service.shutdown();
        assert_eq!(stats.total(), 250);
        assert!(stats.stale > 0, "even-round updates are stale");
        assert_eq!(stats.wal_errors, 0);
        // The drain flushed every worker batch: the log holds all 250
        // envelopes, accepted and rejected alike.
        assert_eq!(wal.next_lsn(), 250);
        let mut logged = 0;
        for (_, path) in modb_wal::list_segments(&dir).unwrap() {
            let scan = modb_wal::scan_segment(&path).unwrap();
            assert!(scan.torn.is_none());
            logged += scan.records.len();
        }
        assert_eq!(logged, 250);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
