//! Concurrent update ingestion: the server side of the wireless link.
//!
//! Position updates from thousands of vehicles arrive asynchronously; the
//! [`IngestService`] fans them across worker threads that apply them to a
//! [`SharedDatabase`], counting accepted and rejected messages.
//!
//! **Ordering.** The DBMS rejects stale timestamps, so updates from one
//! object must be applied in send order. The service therefore *shards*
//! by object id: each worker owns its own queue, and the
//! [`IngestHandle`] routes every envelope for a given object to the same
//! worker — per-object FIFO with cross-object parallelism.
//!
//! Rejections (stale timestamps after a vehicle reboot, off-route fixes,
//! unknown objects) are normal radio-network operation — counted, not
//! fatal.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, SendError, Sender};
use modb_core::{ObjectId, UpdateMessage};

/// What flows through a shard queue: an update to apply, or the stop
/// sentinel that ends the worker. The sentinel (rather than relying on
/// channel closure) makes [`IngestService::shutdown`] safe even while
/// producer handles are still alive — without it, an outstanding
/// [`IngestHandle`] clone would keep the channel open and deadlock the
/// worker join.
enum Job {
    Apply(UpdateEnvelope),
    Stop,
}

use crate::shared::SharedDatabase;

/// A position update addressed to one object.
#[derive(Debug, Clone)]
pub struct UpdateEnvelope {
    /// The sending object.
    pub id: ObjectId,
    /// The update payload.
    pub msg: UpdateMessage,
}

/// Counters published by the ingest workers.
#[derive(Debug, Default)]
pub struct IngestStats {
    accepted: AtomicUsize,
    rejected: AtomicUsize,
}

impl IngestStats {
    /// Updates applied successfully.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Updates rejected by the DBMS (stale, off-route, unknown object…).
    pub fn rejected(&self) -> usize {
        self.rejected.load(Ordering::Relaxed)
    }
}

/// Producer-side handle: routes envelopes to the worker owning the
/// object's shard, preserving per-object order.
#[derive(Clone)]
pub struct IngestHandle {
    shards: Vec<Sender<Job>>,
}

impl std::fmt::Debug for IngestHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestHandle")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl IngestHandle {
    /// Enqueues an update; blocks when the owning shard's queue is full
    /// (back-pressure).
    ///
    /// # Errors
    ///
    /// [`SendError`] when the service has shut down.
    pub fn send(&self, envelope: UpdateEnvelope) -> Result<(), SendError<UpdateEnvelope>> {
        let shard = (envelope.id.0 as usize) % self.shards.len();
        self.shards[shard].send(Job::Apply(envelope)).map_err(|e| {
            SendError(match e.0 {
                Job::Apply(env) => env,
                Job::Stop => unreachable!("handles only send Apply"),
            })
        })
    }
}

/// A pool of ingest workers draining sharded update queues into the
/// database.
pub struct IngestService {
    handle: Option<IngestHandle>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<IngestStats>,
}

impl IngestService {
    /// Spawns `n_workers` sharded workers, each with a queue of capacity
    /// `queue_depth` (both clamped to ≥ 1).
    pub fn spawn(db: SharedDatabase, n_workers: usize, queue_depth: usize) -> Self {
        let stats = Arc::new(IngestStats::default());
        let mut shards = Vec::with_capacity(n_workers.max(1));
        let mut workers = Vec::with_capacity(n_workers.max(1));
        for _ in 0..n_workers.max(1) {
            let (tx, rx) = bounded::<Job>(queue_depth.max(1));
            let db = db.clone();
            let stats = Arc::clone(&stats);
            workers.push(std::thread::spawn(move || {
                for job in rx.iter() {
                    let envelope = match job {
                        Job::Apply(env) => env,
                        Job::Stop => break,
                    };
                    match db.apply_update(envelope.id, &envelope.msg) {
                        Ok(()) => {
                            stats.accepted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            stats.rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }));
            shards.push(tx);
        }
        IngestService {
            handle: Some(IngestHandle { shards }),
            workers,
            stats,
        }
    }

    /// A producer handle (one per vehicle link, typically). Cloneable.
    ///
    /// # Panics
    ///
    /// Panics if called after [`IngestService::shutdown`].
    pub fn handle(&self) -> IngestHandle {
        self.handle
            .as_ref()
            .expect("ingest service already shut down")
            .clone()
    }

    /// Shared counters.
    pub fn stats(&self) -> &IngestStats {
        &self.stats
    }

    /// Drains the queues and stops the workers, even if producer handles
    /// are still alive (a stop sentinel is enqueued behind any pending
    /// updates). Returns `(accepted, rejected)`.
    pub fn shutdown(mut self) -> (usize, usize) {
        self.stop_workers();
        (self.stats.accepted(), self.stats.rejected())
    }

    fn stop_workers(&mut self) {
        if let Some(handle) = self.handle.take() {
            for shard in &handle.shards {
                // Queued behind pending updates: the worker drains them
                // first, then exits. A full queue blocks briefly; a
                // disconnected one means the worker is already gone.
                let _ = shard.send(Job::Stop);
            }
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for IngestService {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{
        Database, DatabaseConfig, MovingObject, PolicyDescriptor, PositionAttribute,
        UpdatePosition,
    };
    use modb_geom::Point;
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};

    fn shared(n_objects: u64) -> SharedDatabase {
        let route = Route::from_vertices(
            RouteId(1),
            "r",
            vec![Point::new(0.0, 0.0), Point::new(1_000.0, 0.0)],
        )
        .unwrap();
        let network = RouteNetwork::from_routes([route]).unwrap();
        let db = SharedDatabase::new(Database::new(network, DatabaseConfig::default()));
        for i in 0..n_objects {
            db.register_moving(MovingObject {
                id: ObjectId(i),
                name: format!("veh-{i}"),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(i as f64, 0.0),
                    start_arc: i as f64,
                    direction: Direction::Forward,
                    speed: 1.0,
                    policy: PolicyDescriptor::CostBased {
                        kind: BoundKind::Immediate,
                        update_cost: 5.0,
                    },
                },
                max_speed: 1.5,
                trip_end: None,
            })
            .unwrap();
        }
        db
    }

    #[test]
    fn ingest_applies_all_valid_updates_in_order() {
        let db = shared(50);
        let service = IngestService::spawn(db.clone(), 4, 64);
        let handle = service.handle();
        // 10 producers; each owns 5 objects and sends monotone updates.
        // Sharding by id keeps per-object order even across workers.
        std::thread::scope(|s| {
            for p in 0..10u64 {
                let handle = handle.clone();
                s.spawn(move || {
                    for round in 1..=5u64 {
                        for i in 0..50u64 {
                            if i % 10 != p {
                                continue;
                            }
                            handle
                                .send(UpdateEnvelope {
                                    id: ObjectId(i),
                                    msg: UpdateMessage::basic(
                                        round as f64,
                                        UpdatePosition::Arc(i as f64 + round as f64),
                                        0.9,
                                    ),
                                })
                                .unwrap();
                        }
                    }
                });
            }
        });
        drop(handle);
        let (accepted, rejected) = service.shutdown();
        assert_eq!(accepted, 250);
        assert_eq!(rejected, 0);
        db.with_read(|inner| {
            for i in 0..50u64 {
                assert_eq!(inner.moving(ObjectId(i)).unwrap().attr.start_time, 5.0);
            }
        });
    }

    #[test]
    fn rejections_are_counted_not_fatal() {
        let db = shared(2);
        let service = IngestService::spawn(db.clone(), 2, 8);
        let handle = service.handle();
        handle
            .send(UpdateEnvelope {
                id: ObjectId(0),
                msg: UpdateMessage::basic(5.0, UpdatePosition::Arc(10.0), 1.0),
            })
            .unwrap();
        handle
            .send(UpdateEnvelope {
                id: ObjectId(99), // unknown
                msg: UpdateMessage::basic(5.0, UpdatePosition::Arc(1.0), 1.0),
            })
            .unwrap();
        handle
            .send(UpdateEnvelope {
                id: ObjectId(1),
                msg: UpdateMessage::basic(5.0, UpdatePosition::Arc(-3.0), 1.0), // invalid
            })
            .unwrap();
        drop(handle);
        let (accepted, rejected) = service.shutdown();
        assert_eq!(accepted, 1);
        assert_eq!(rejected, 2);
    }

    #[test]
    fn queries_run_while_ingesting() {
        let db = shared(100);
        let service = IngestService::spawn(db.clone(), 4, 128);
        let handle = service.handle();
        let producer = std::thread::spawn(move || {
            for round in 1..=20u64 {
                for i in 0..100u64 {
                    handle
                        .send(UpdateEnvelope {
                            id: ObjectId(i),
                            msg: UpdateMessage::basic(
                                round as f64 * 0.1,
                                UpdatePosition::Arc(i as f64 + round as f64 * 0.1),
                                1.0,
                            ),
                        })
                        .unwrap();
                }
            }
        });
        for _ in 0..50 {
            let r = db
                .within_distance_of_point(Point::new(50.0, 0.0), 25.0, 2.0)
                .unwrap();
            assert!(r.candidates <= 100);
        }
        producer.join().unwrap();
        let (accepted, rejected) = service.shutdown();
        assert_eq!(accepted + rejected, 2000);
        assert_eq!(rejected, 0, "sharded routing preserves per-object order");
    }

    #[test]
    fn drop_without_shutdown_joins_workers() {
        let db = shared(1);
        let service = IngestService::spawn(db, 2, 4);
        let handle = service.handle();
        handle
            .send(UpdateEnvelope {
                id: ObjectId(0),
                msg: UpdateMessage::basic(1.0, UpdatePosition::Arc(1.0), 1.0),
            })
            .unwrap();
        drop(handle);
        drop(service); // must not hang or leak
    }

    #[test]
    fn send_after_shutdown_errors() {
        let db = shared(1);
        let service = IngestService::spawn(db, 1, 4);
        let handle = service.handle();
        let (a, r) = service.shutdown();
        assert_eq!((a, r), (0, 0));
        assert!(handle
            .send(UpdateEnvelope {
                id: ObjectId(0),
                msg: UpdateMessage::basic(1.0, UpdatePosition::Arc(1.0), 1.0),
            })
            .is_err());
    }
}
