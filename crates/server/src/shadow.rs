//! Delta-maintained shadow copies of a [`Database`] — the consumer side
//! of `modb-core`'s change-log subscription.
//!
//! A [`ShadowBuffer`] owns (at most) one `Arc<Database>` copy plus the
//! [`ChangeCursor`] describing how far it lags the live database. On
//! [`ShadowBuffer::refresh`] the copy is pulled forward in O(changes)
//! via [`Database::sync_from`] and handed out; once the caller is done
//! publishing/serializing it, [`ShadowBuffer::store`] returns an arc to
//! the buffer so the *next* refresh can mutate it in place again
//! (`Arc::make_mut` — a full clone happens only if some straggler still
//! holds the arc, or the cursor fell out of the source's bounded log).
//!
//! Both the epoch publisher ([`QueryEngine`](crate::QueryEngine)) and
//! the pause-free WAL snapshot path
//! ([`DurableDatabase`](crate::DurableDatabase)) drive one of these; a
//! replication follower would too.

use std::sync::Arc;

use modb_core::{ChangeCursor, Database, SyncReport};

/// A reusable delta-applied shadow of a live [`Database`].
///
/// Not synchronized itself — callers serialize access (the engine's
/// publisher holds it behind a mutex).
#[derive(Debug, Default)]
pub struct ShadowBuffer {
    slot: Option<(Arc<Database>, ChangeCursor)>,
    /// A buffer set aside by [`ShadowBuffer::refresh`]'s full-clone
    /// path. Dropping a whole database is itself O(fleet) and need not
    /// happen inside the caller's lock window, so the replaced copy is
    /// parked here until [`ShadowBuffer::reap`] (or the next cutover,
    /// for callers that never reap) frees it.
    discard: Option<Arc<Database>>,
}

impl ShadowBuffer {
    /// An empty buffer; the first refresh takes a full clone.
    pub fn new() -> Self {
        ShadowBuffer::default()
    }

    /// Brings the buffered copy up to date with `src` and hands it out
    /// together with the report describing the sync. The caller must
    /// hold whatever lock keeps `src` stable for the duration — the
    /// point of the mechanism is that this critical section costs
    /// O(changes since the last refresh), not O(fleet).
    pub fn refresh(&mut self, src: &Database) -> (Arc<Database>, SyncReport) {
        match self.slot.take() {
            Some((mut arc, cursor)) if src.delta_affordable(cursor) => {
                // If a straggler still pins the arc (a long query on a
                // two-epochs-old snapshot), make_mut clones — slower,
                // never wrong.
                let report = Arc::make_mut(&mut arc).sync_from(src, cursor);
                (arc, report)
            }
            stale => {
                // Cold buffer, truncated log, or a delta past the clone
                // break-even point: start over from a fresh clone and
                // park the replaced copy for an out-of-lock drop.
                self.discard = stale.map(|(arc, _)| arc);
                let report = SyncReport {
                    cursor: src.change_cursor(),
                    full_resync: true,
                    applied: 0,
                };
                (Arc::new(src.clone()), report)
            }
        }
    }

    /// Frees any buffer parked by [`ShadowBuffer::refresh`]'s
    /// full-clone path. Call it outside the critical section — the
    /// epoch publisher does so right after the snapshot swap — so the
    /// O(fleet) drop never extends a lock window.
    pub fn reap(&mut self) {
        self.discard = None;
    }

    /// Returns a previously refreshed copy (typically the snapshot
    /// being retired) to the buffer, to be delta-advanced next time.
    /// `cursor` must be the [`SyncReport::cursor`] from the refresh that
    /// produced `db`.
    pub fn store(&mut self, db: Arc<Database>, cursor: ChangeCursor) {
        self.slot = Some((db, cursor));
    }

    /// Opportunistically pulls the stored copy forward to `src` right
    /// after it was stored. The double-buffered publisher calls this
    /// *after* swapping the new epoch in, so by the next publish the
    /// buffer lags by one inter-epoch round of changes instead of two —
    /// the pre-swap critical section (what readers wait on for a fresh
    /// epoch) halves, while total work per publish is unchanged.
    ///
    /// Returns `false` without touching the buffer when the catch-up
    /// would not pay: a straggling reader still pins the arc (mutating
    /// would force a clone — the next refresh deals with it), or the
    /// pending delta is unservable/too large (the next refresh will
    /// full-resync anyway, superseding anything done here).
    pub fn catch_up(&mut self, src: &Database) -> bool {
        let Some((arc, cursor)) = self.slot.as_mut() else {
            return false;
        };
        if !src.delta_affordable(*cursor) {
            return false;
        }
        let Some(db) = Arc::get_mut(arc) else {
            return false;
        };
        *cursor = db.sync_from(src, *cursor).cursor;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{
        DatabaseConfig, MovingObject, ObjectId, PolicyDescriptor, PositionAttribute, UpdateMessage,
        UpdatePosition,
    };
    use modb_geom::Point;
    use modb_policy::BoundKind;
    use modb_routes::{Direction, Route, RouteId, RouteNetwork};

    fn live() -> Database {
        let network = RouteNetwork::from_routes([Route::from_vertices(
            RouteId(1),
            "main",
            vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)],
        )
        .unwrap()])
        .unwrap();
        let mut db = Database::new(network, DatabaseConfig::default());
        for id in 1..=5u64 {
            db.register_moving(MovingObject {
                id: ObjectId(id),
                name: format!("veh-{id}"),
                attr: PositionAttribute {
                    start_time: 0.0,
                    route: RouteId(1),
                    start_position: Point::new(10.0 * id as f64, 0.0),
                    start_arc: 10.0 * id as f64,
                    direction: Direction::Forward,
                    speed: 1.0,
                    policy: PolicyDescriptor::CostBased {
                        kind: BoundKind::Immediate,
                        update_cost: 5.0,
                    },
                },
                max_speed: 1.5,
                trip_end: None,
            })
            .unwrap();
        }
        db
    }

    #[test]
    fn refresh_store_cycle_tracks_the_source() {
        let mut src = live();
        let mut buf = ShadowBuffer::new();
        let (first, report) = buf.refresh(&src);
        assert!(report.full_resync, "first refresh is a full clone");
        assert_eq!(first.moving_count(), 5);
        buf.store(first, report.cursor);

        src.apply_update(
            ObjectId(2),
            &UpdateMessage::basic(4.0, UpdatePosition::Arc(33.0), 0.9),
        )
        .unwrap();
        src.remove_moving(ObjectId(5)).unwrap();
        let (second, report) = buf.refresh(&src);
        assert!(!report.full_resync, "delta path taken");
        assert_eq!(report.applied, 2);
        assert_eq!(second.moving_count(), 4);
        assert_eq!(second.moving(ObjectId(2)).unwrap().attr.start_arc, 33.0);
        assert!(second.moving(ObjectId(5)).is_err());
        buf.store(second, report.cursor);

        // No changes: the delta is empty and the state already agrees.
        let (third, report) = buf.refresh(&src);
        assert!(!report.full_resync);
        assert_eq!(report.applied, 0);
        assert_eq!(third.moving_count(), 4);
    }

    #[test]
    fn catch_up_advances_the_stored_copy_unless_pinned() {
        let mut src = live();
        let mut buf = ShadowBuffer::new();
        let (first, report) = buf.refresh(&src);
        buf.store(first, report.cursor);

        src.apply_update(
            ObjectId(2),
            &UpdateMessage::basic(4.0, UpdatePosition::Arc(33.0), 0.9),
        )
        .unwrap();
        assert!(buf.catch_up(&src), "unpinned buffer catches up");
        // The change was already applied: the next refresh is a no-op
        // delta, and the state agrees with the source.
        let (copy, report) = buf.refresh(&src);
        assert!(!report.full_resync);
        assert_eq!(report.applied, 0);
        assert_eq!(copy.moving(ObjectId(2)).unwrap().attr.start_arc, 33.0);

        let pin = Arc::clone(&copy); // straggler
        buf.store(copy, report.cursor);
        src.apply_update(
            ObjectId(3),
            &UpdateMessage::basic(5.0, UpdatePosition::Arc(44.0), 0.9),
        )
        .unwrap();
        assert!(!buf.catch_up(&src), "pinned arc skips the catch-up");
        // The skipped work lands on the next refresh instead.
        let (after, report) = buf.refresh(&src);
        assert!(!report.full_resync);
        assert_eq!(report.applied, 1);
        assert_eq!(after.moving(ObjectId(3)).unwrap().attr.start_arc, 44.0);
        assert_eq!(pin.moving(ObjectId(3)).unwrap().attr.start_arc, 30.0);
    }

    #[test]
    fn pinned_arc_forces_a_clone_but_stays_correct() {
        let mut src = live();
        let mut buf = ShadowBuffer::new();
        let (first, report) = buf.refresh(&src);
        let pin = Arc::clone(&first); // straggler keeps the old epoch
        buf.store(first, report.cursor);

        src.apply_update(
            ObjectId(1),
            &UpdateMessage::basic(2.0, UpdatePosition::Arc(12.0), 1.0),
        )
        .unwrap();
        let (second, _) = buf.refresh(&src);
        assert_eq!(second.moving(ObjectId(1)).unwrap().attr.start_arc, 12.0);
        // The pinned copy still shows the old state.
        assert_eq!(pin.moving(ObjectId(1)).unwrap().attr.start_arc, 10.0);
    }
}
