//! Server side of the query front-end: accept clients, run their
//! `;`-batches on the [`QueryEngine`], and answer stats scrapes.
//!
//! One thread accepts connections (same shape as the replication
//! leader); each client gets a session thread that handshakes, then
//! loops over `Batch` / `StatsRequest` messages. Robustness is fail-fast
//! per connection and fail-safe for the server:
//!
//! - **Connection cap**: past [`QueryServerConfig::max_connections`]
//!   live sessions, a new client is sent `Refused` and closed — the
//!   accept loop never blocks on a slow client.
//! - **Frame cap**: a frame above
//!   [`QueryServerConfig::max_frame_bytes`] is stream corruption; the
//!   session ends without reading the body.
//! - **Request deadline**: a client that starts a frame and stalls
//!   (bytes buffered, no complete message) past
//!   [`QueryServerConfig::request_deadline`] is disconnected; its slot
//!   is released. Idle connections with *no* partial frame are fine —
//!   consoles sit at prompts for minutes.
//! - **Drained shutdown**: [`QueryServer::shutdown`] stops accepting and
//!   joins every session; a batch already delivered or executing finishes
//!   and its results are written out before the session exits, so a
//!   client never sees a half-answered batch from a clean shutdown.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_wal::{SharedWal, WalError};

use crate::durable::DurableDatabase;
use crate::ingest::{IngestFrontend, UpdateEnvelope};
use crate::net::protocol::{
    send_message, FrameReader, Message, ReadEvent, RemoteUpdateVerdict, ServerStatsSnapshot,
    DEFAULT_MAX_FRAME_BYTES, NET_PROTOCOL_VERSION,
};
use crate::query_engine::QueryEngine;
use crate::replication::ShipHorizon;

/// Tuning for [`DurableDatabase::serve_queries`].
#[derive(Debug, Clone)]
pub struct QueryServerConfig {
    /// Live sessions beyond this are refused at accept.
    pub max_connections: usize,
    /// Per-message payload ceiling; a larger frame ends the session.
    pub max_frame_bytes: u32,
    /// How long a partially received request may sit before the client
    /// is declared stalled and disconnected.
    pub request_deadline: Duration,
    /// Socket write timeout; a client not draining its results is
    /// disconnected.
    pub write_timeout: Option<Duration>,
    /// This node's shard number when it serves as one cluster member;
    /// stamped on every stats scrape (and thence every Prometheus
    /// sample) so per-shard series stay distinguishable.
    pub shard: Option<u64>,
}

impl Default for QueryServerConfig {
    fn default() -> Self {
        QueryServerConfig {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            request_deadline: Duration::from_secs(10),
            write_timeout: Some(Duration::from_secs(10)),
            shard: None,
        }
    }
}

/// Everything a session needs, shared across connection threads.
struct ServeContext {
    engine: Arc<QueryEngine>,
    wal: SharedWal,
    horizon: Arc<ShipHorizon>,
    ingest: Option<IngestFrontend>,
    config: QueryServerConfig,
    /// WAL frontier known to be covered by a published engine snapshot —
    /// the server side of the read-your-writes token. Monotone;
    /// sessions race it up with `fetch_max`.
    published_frontier: AtomicU64,
}

impl ServeContext {
    /// One consistent scrape: every gauge and counter read back to back.
    fn scrape(&self) -> ServerStatsSnapshot {
        let (wal_bytes_written, wal_fsyncs) = self.wal.io_counters();
        let group = self
            .ingest
            .as_ref()
            .and_then(|f| f.monitor.group_commit_stats())
            .unwrap_or_default();
        // Band gauges come from the live database (one brief read lock)
        // so entry counts and the migration counter are from the same
        // instant; the published epoch snapshot may trail by a tick.
        let (index_bands, index_band_entries, index_band_migrations) =
            self.engine.database().with_read(|db| {
                let stats = db.index_band_stats();
                let mut entries = [0u64; modb_core::MAX_BANDS];
                for (slot, band) in entries.iter_mut().zip(&stats) {
                    *slot = band.entries as u64;
                }
                (stats.len() as u64, entries, db.index_band_migrations())
            });
        ServerStatsSnapshot {
            query: self.engine.stats(),
            ingest: self
                .ingest
                .as_ref()
                .map(|f| f.monitor.snapshot())
                .unwrap_or_default(),
            wal_bytes_written,
            wal_fsyncs,
            wal_group_tickets: group.tickets,
            wal_group_commits: group.commits,
            wal_group_last_batch: group.last_batch,
            wal_next_lsn: self.wal.next_lsn(),
            ingest_queue_depth: self
                .ingest
                .as_ref()
                .map(|f| f.monitor.queue_depth() as u64)
                .unwrap_or(0),
            followers: self.horizon.followers() as u64,
            min_acked_lsn: self.horizon.min(),
            shard: self.config.shard,
            index_bands,
            index_band_entries,
            index_band_migrations,
        }
    }

    /// Honors a batch's read-your-writes floor: when no published
    /// snapshot is known to cover WAL frontier `min_lsn`, publish one
    /// now. Apply-before-log makes this sound — every record below the
    /// frontier read here was applied to the in-memory database before
    /// it got its LSN, so the snapshot published after covers them all.
    fn ensure_covers(&self, min_lsn: u64) {
        if min_lsn == 0 || self.published_frontier.load(Ordering::Acquire) >= min_lsn {
            return;
        }
        let frontier = self.wal.next_lsn();
        self.engine.publish_now();
        self.published_frontier
            .fetch_max(frontier, Ordering::AcqRel);
    }
}

/// Refuses non-finite numeric fields at the protocol boundary. The local
/// ingest path logs an envelope before the DBMS judges it; accepting a
/// NaN here would poison the shard's WAL with a record replay can only
/// reject — so it never reaches the ingest queue at all.
fn validate_update(msg: &UpdateMessage) -> Result<(), String> {
    if !msg.time.is_finite() {
        return Err(format!("non-finite time {}", msg.time));
    }
    if !msg.speed.is_finite() {
        return Err(format!("non-finite speed {}", msg.speed));
    }
    match &msg.position {
        UpdatePosition::Arc(a) if !a.is_finite() => Err(format!("non-finite arc {a}")),
        UpdatePosition::Coordinates(p) if !p.is_finite() => {
            Err(format!("non-finite coordinates ({}, {})", p.x, p.y))
        }
        _ => Ok(()),
    }
}

/// Routes one frame's envelopes through the ingest shards and gathers
/// the ack: every valid envelope is dispatched before any outcome is
/// awaited (preserving per-object FIFO and letting the shard workers run
/// in parallel), and the reported LSN is the highest flushed frontier —
/// a token covering every accepted envelope of the frame.
fn apply_updates(
    ctx: &ServeContext,
    updates: Vec<(ObjectId, UpdateMessage)>,
) -> (u64, Vec<RemoteUpdateVerdict>) {
    let Some(frontend) = &ctx.ingest else {
        let verdicts = updates
            .iter()
            .map(|_| RemoteUpdateVerdict::Invalid("no ingest service attached".into()))
            .collect();
        return (0, verdicts);
    };
    let mut verdicts: Vec<Option<RemoteUpdateVerdict>> = vec![None; updates.len()];
    let mut pending = Vec::with_capacity(updates.len());
    for (i, (id, msg)) in updates.into_iter().enumerate() {
        if let Err(reason) = validate_update(&msg) {
            verdicts[i] = Some(RemoteUpdateVerdict::Invalid(reason));
            continue;
        }
        match frontend.handle.send_acked(UpdateEnvelope { id, msg }) {
            Ok(rx) => pending.push((i, rx)),
            Err(_) => {
                verdicts[i] = Some(RemoteUpdateVerdict::Invalid(
                    "ingest service shut down".into(),
                ));
            }
        }
    }
    let mut lsn = 0;
    for (i, rx) in pending {
        verdicts[i] = Some(match rx.recv() {
            Ok(outcome) => {
                lsn = lsn.max(outcome.lsn);
                match outcome.verdict {
                    Ok(()) => RemoteUpdateVerdict::Accepted,
                    Err(e) => RemoteUpdateVerdict::Rejected(e.to_string()),
                }
            }
            Err(_) => RemoteUpdateVerdict::Invalid("ingest service shut down".into()),
        });
    }
    let verdicts = verdicts
        .into_iter()
        .map(|v| v.expect("every envelope got a verdict"))
        .collect();
    (lsn, verdicts)
}

/// Handle to a running query front-end listener. Dropping (or
/// [`QueryServer::shutdown`]) stops the accept loop and joins every
/// session after its in-flight batch drains.
#[derive(Debug)]
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl QueryServer {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently holding a connection slot. Drops back to 0
    /// once every client has disconnected — the fault tests use this to
    /// prove no slot leaks.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins all sessions (draining their in-flight
    /// batches).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl DurableDatabase {
    /// Starts serving queries and stats scrapes on `addr` (use port 0
    /// for an ephemeral port, then [`QueryServer::local_addr`]). Batches
    /// run on `engine` exactly as a local
    /// [`QueryEngine::run_batch`] call would; pass an
    /// [`IngestFrontend`] to accept remote `Update` frames through the
    /// ingest shards and to include ingest counters and queue depth in
    /// the scrape (without one, updates are refused with a typed verdict
    /// and the ingest counters read as zero).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn serve_queries(
        &self,
        engine: Arc<QueryEngine>,
        ingest: Option<IngestFrontend>,
        addr: impl ToSocketAddrs,
        config: QueryServerConfig,
    ) -> Result<QueryServer, WalError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let ctx = Arc::new(ServeContext {
            engine,
            wal: self.wal().clone(),
            horizon: Arc::clone(self.ship_horizon()),
            ingest,
            config,
            published_frontier: AtomicU64::new(0),
        });
        let accept = {
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            std::thread::spawn(move || accept_loop(listener, ctx, active, stop))
        };
        Ok(QueryServer {
            addr: local,
            stop,
            accept: Some(accept),
            active,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServeContext>,
    active: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if active.load(Ordering::SeqCst) >= ctx.config.max_connections {
                    // Refuse inline: a capacity rejection is one small
                    // write and must not consume a thread or a slot.
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                    let _ = send_message(
                        &mut stream,
                        &Message::Refused {
                            reason: "server at connection capacity".into(),
                        },
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let ctx = Arc::clone(&ctx);
                let active = Arc::clone(&active);
                let stop = Arc::clone(&stop);
                sessions.push(std::thread::spawn(move || {
                    handle_client(stream, &ctx, &stop);
                    active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        sessions.retain(|h| !h.is_finished());
    }
    for h in sessions {
        let _ = h.join();
    }
}

/// One client session: handshake, then serve batches and scrapes until
/// the peer closes, violates the protocol, stalls past the deadline, or
/// the server shuts down.
fn handle_client(mut stream: TcpStream, ctx: &ServeContext, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let _ = stream.set_write_timeout(ctx.config.write_timeout);
    let _ = run_session(&mut stream, ctx, stop);
    let _ = stream.shutdown(Shutdown::Both);
}

fn run_session(
    stream: &mut TcpStream,
    ctx: &ServeContext,
    stop: &AtomicBool,
) -> Result<(), WalError> {
    let reader_stream = stream.try_clone()?;
    let mut reader = FrameReader::new(reader_stream, ctx.config.max_frame_bytes);

    // ---- Handshake: wait (bounded) for the client's Hello.
    let deadline = Instant::now() + ctx.config.request_deadline;
    loop {
        if stop.load(Ordering::SeqCst) || Instant::now() > deadline {
            return Ok(());
        }
        match reader.poll()? {
            ReadEvent::Message(Message::Hello { version }) => {
                if version != NET_PROTOCOL_VERSION {
                    let _ = send_message(
                        stream,
                        &Message::Refused {
                            reason: format!(
                                "protocol version mismatch: client {version}, \
                                 server {NET_PROTOCOL_VERSION}"
                            ),
                        },
                    );
                    return Ok(());
                }
                send_message(
                    stream,
                    &Message::HelloAck {
                        version: NET_PROTOCOL_VERSION,
                    },
                )?;
                break;
            }
            ReadEvent::Message(_) => {
                return Err(WalError::Decode("expected Hello"));
            }
            ReadEvent::Idle => continue,
            ReadEvent::Closed => return Ok(()),
        }
    }

    // ---- Serve loop. Shutdown is observed on Idle, not up front: a
    // request already delivered when the stop flag flips is still
    // answered in full (the drain guarantee), and only then does the
    // session exit.
    let mut partial_since: Option<Instant> = None;
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        match reader.poll()? {
            ReadEvent::Message(Message::Batch { script, min_lsn }) => {
                partial_since = None;
                // Read-your-writes: republish first if no published
                // snapshot covers the client's token.
                ctx.ensure_covers(min_lsn);
                // Synchronous execution: shutdown observed after this
                // point still lets the full response stream out (the
                // drain guarantee).
                let verdicts = ctx.engine.run_batch(&script);
                let count = verdicts.len() as u32;
                for (index, verdict) in verdicts.into_iter().enumerate() {
                    send_message(
                        stream,
                        &Message::Statement {
                            index: index as u32,
                            verdict: verdict.map_err(|e| e.to_string()),
                        },
                    )?;
                }
                send_message(stream, &Message::BatchDone { count })?;
            }
            ReadEvent::Message(Message::StatsRequest) => {
                partial_since = None;
                send_message(stream, &Message::StatsReply(Box::new(ctx.scrape())))?;
            }
            ReadEvent::Message(Message::Update { id, msg }) => {
                partial_since = None;
                let (lsn, verdicts) = apply_updates(ctx, vec![(id, msg)]);
                send_message(stream, &Message::UpdateAck { lsn, verdicts })?;
            }
            ReadEvent::Message(Message::UpdateBatch { updates }) => {
                partial_since = None;
                let (lsn, verdicts) = apply_updates(ctx, updates);
                send_message(stream, &Message::UpdateAck { lsn, verdicts })?;
            }
            ReadEvent::Message(_) => {
                // A server-only message from a client is a protocol
                // violation.
                return Err(WalError::Decode("unexpected client message"));
            }
            ReadEvent::Idle => {
                if stopping {
                    return Ok(());
                }
                if reader.has_partial() {
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > ctx.config.request_deadline {
                        return Err(WalError::Decode("client stalled mid-request"));
                    }
                } else {
                    partial_since = None;
                }
            }
            ReadEvent::Closed => return Ok(()),
        }
    }
}
