//! Server side of the query front-end: accept clients, run their
//! `;`-batches on the [`QueryEngine`], and answer stats scrapes.
//!
//! One thread accepts connections (same shape as the replication
//! leader); each client gets a session thread that handshakes, then
//! loops over `Batch` / `StatsRequest` messages. Robustness is fail-fast
//! per connection and fail-safe for the server:
//!
//! - **Connection cap**: past [`QueryServerConfig::max_connections`]
//!   live sessions, a new client is sent `Refused` and closed — the
//!   accept loop never blocks on a slow client.
//! - **Frame cap**: a frame above
//!   [`QueryServerConfig::max_frame_bytes`] is stream corruption; the
//!   session ends without reading the body.
//! - **Request deadline**: a client that starts a frame and stalls
//!   (bytes buffered, no complete message) past
//!   [`QueryServerConfig::request_deadline`] is disconnected; its slot
//!   is released. Idle connections with *no* partial frame are fine —
//!   consoles sit at prompts for minutes.
//! - **Drained shutdown**: [`QueryServer::shutdown`] stops accepting and
//!   joins every session; a batch already delivered or executing finishes
//!   and its results are written out before the session exits, so a
//!   client never sees a half-answered batch from a clean shutdown.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modb_core::{ObjectId, UpdateMessage, UpdatePosition};
use modb_query::QueryResult;
use modb_wal::{SharedWal, WalError};

use crate::durable::DurableDatabase;
use crate::ingest::{IngestFrontend, UpdateEnvelope};
use crate::net::protocol::{
    send_message, FrameReader, Message, ReadEvent, RemoteUpdateVerdict, ServerStatsSnapshot,
    DEFAULT_MAX_FRAME_BYTES, NET_PROTOCOL_VERSION,
};
use crate::query_engine::QueryEngine;
use crate::replication::{ReplicaWatch, ShipHorizon};

/// Tuning for [`DurableDatabase::serve_queries`].
#[derive(Debug, Clone)]
pub struct QueryServerConfig {
    /// Live sessions beyond this are refused at accept.
    pub max_connections: usize,
    /// Per-message payload ceiling; a larger frame ends the session.
    pub max_frame_bytes: u32,
    /// How long a partially received request may sit before the client
    /// is declared stalled and disconnected.
    pub request_deadline: Duration,
    /// Socket write timeout; a client not draining its results is
    /// disconnected.
    pub write_timeout: Option<Duration>,
    /// This node's shard number when it serves as one cluster member;
    /// stamped on every stats scrape (and thence every Prometheus
    /// sample) so per-shard series stay distinguishable.
    pub shard: Option<u64>,
    /// Follower-served reads only: how long a `Batch` whose
    /// read-your-writes token outruns the applied watermark may wait for
    /// replication to catch up before the typed `Stale` answer goes
    /// back. Ignored on a leader (its own tokens never outrun its WAL).
    pub stale_deadline: Duration,
}

impl Default for QueryServerConfig {
    fn default() -> Self {
        QueryServerConfig {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            request_deadline: Duration::from_secs(10),
            write_timeout: Some(Duration::from_secs(10)),
            shard: None,
            stale_deadline: Duration::from_secs(2),
        }
    }
}

/// What the serving node's coverage frontier is anchored to: the leader
/// reads its own WAL frontier, a standby replica reads its applied
/// watermark (and prices its lag into every answer).
enum Backend {
    Leader { wal: SharedWal },
    Follower { watch: ReplicaWatch },
}

impl Backend {
    /// The LSN every record applied to the serving database is below —
    /// what a snapshot published *after* reading this value covers.
    fn frontier_now(&self) -> u64 {
        match self {
            Backend::Leader { wal } => wal.next_lsn(),
            Backend::Follower { watch } => watch.applied_lsn(),
        }
    }
}

/// Everything a session needs, shared across connection threads.
struct ServeContext {
    engine: Arc<QueryEngine>,
    backend: Backend,
    horizon: Arc<ShipHorizon>,
    ingest: Option<IngestFrontend>,
    config: QueryServerConfig,
    /// Frontier known to be covered by a published engine snapshot —
    /// the server side of the read-your-writes token. Monotone;
    /// sessions race it up with `fetch_max`.
    published_frontier: AtomicU64,
}

impl ServeContext {
    /// One consistent scrape: every gauge and counter read back to back.
    fn scrape(&self) -> ServerStatsSnapshot {
        // Follower-served nodes report no WAL I/O here: their local log
        // is the replication worker's (its counters live in the replica
        // stats), and what a reader cares about is the watermark + lag.
        let (wal_bytes_written, wal_fsyncs) = match &self.backend {
            Backend::Leader { wal } => wal.io_counters(),
            Backend::Follower { .. } => (0, 0),
        };
        let (replica_applied_lsn, replica_lag) = match &self.backend {
            Backend::Leader { .. } => (None, None),
            Backend::Follower { watch } => (Some(watch.applied_lsn()), Some(watch.lag())),
        };
        let group = self
            .ingest
            .as_ref()
            .and_then(|f| f.monitor.group_commit_stats())
            .unwrap_or_default();
        // Band gauges come from the live database (one brief read lock)
        // so entry counts and the migration counter are from the same
        // instant; the published epoch snapshot may trail by a tick.
        let (index_bands, index_band_entries, index_band_migrations) =
            self.engine.database().with_read(|db| {
                let stats = db.index_band_stats();
                let mut entries = [0u64; modb_core::MAX_BANDS];
                for (slot, band) in entries.iter_mut().zip(&stats) {
                    *slot = band.entries as u64;
                }
                (stats.len() as u64, entries, db.index_band_migrations())
            });
        ServerStatsSnapshot {
            query: self.engine.stats(),
            ingest: self
                .ingest
                .as_ref()
                .map(|f| f.monitor.snapshot())
                .unwrap_or_default(),
            wal_bytes_written,
            wal_fsyncs,
            wal_group_tickets: group.tickets,
            wal_group_commits: group.commits,
            wal_group_last_batch: group.last_batch,
            wal_next_lsn: self.backend.frontier_now(),
            ingest_queue_depth: self
                .ingest
                .as_ref()
                .map(|f| f.monitor.queue_depth() as u64)
                .unwrap_or(0),
            followers: self.horizon.followers() as u64,
            min_acked_lsn: self.horizon.min(),
            shard: self.config.shard,
            index_bands,
            index_band_entries,
            index_band_migrations,
            replica_applied_lsn,
            replica_lag,
        }
    }

    /// Honors a batch's read-your-writes floor: when no published
    /// snapshot is known to cover frontier `min_lsn`, publish one now.
    fn ensure_covers(&self, min_lsn: u64) {
        advance_covered(
            &self.published_frontier,
            min_lsn,
            || self.backend.frontier_now(),
            || {
                self.engine.publish_now();
            },
        );
    }

    /// Follower-only gate ahead of a batch: when the token outruns the
    /// applied watermark, wait up to the stale deadline for replication
    /// to deliver; `Some((applied, required))` means it didn't and the
    /// caller must answer `Stale`. A leader's tokens are its own acked
    /// frontiers, so the floor is satisfiable by definition there.
    fn await_floor(&self, min_lsn: u64) -> Option<(u64, u64)> {
        let Backend::Follower { watch } = &self.backend else {
            return None;
        };
        if min_lsn <= watch.applied_lsn() || watch.wait_for_lsn(min_lsn, self.config.stale_deadline)
        {
            return None;
        }
        Some((watch.applied_lsn(), min_lsn))
    }

    /// The `2·v_max·Δ` staleness term priced into every follower-served
    /// answer (0.0 on a leader, and on a caught-up follower where the
    /// lag clock reads zero). `v_max` is the fleet-wide speed cap — the
    /// worst-case drift any object can accumulate while the answer's
    /// snapshot trails the leader by wall-clock `Δ`.
    fn staleness_slack(&self) -> f64 {
        let Backend::Follower { watch } = &self.backend else {
            return 0.0;
        };
        let lag = watch.lag().as_secs_f64();
        if lag == 0.0 {
            return 0.0;
        }
        let v_max = self
            .engine
            .database()
            .with_read(|db| db.moving_objects().map(|o| o.max_speed).fold(0.0, f64::max));
        2.0 * v_max * lag
    }
}

/// The covered-frontier advance behind the read-your-writes token,
/// ordered so a racing reader can never observe a token above the
/// snapshot it will read: the frontier is sampled **before** the epoch
/// publish (the shadow swap), and the watermark advances only to that
/// pre-publish sample. Apply-before-log makes the sample sound — every
/// record below the frontier read here was applied to the in-memory
/// database before it got its LSN, so the snapshot published after
/// covers them all. Sampling *after* the publish instead would claim
/// coverage for records applied between the shadow swap and the sample —
/// records the just-published snapshot does not contain (the regression
/// test below pins the ordering).
fn advance_covered(
    covered: &AtomicU64,
    min_lsn: u64,
    frontier_now: impl Fn() -> u64,
    publish: impl FnOnce(),
) {
    if min_lsn == 0 || covered.load(Ordering::Acquire) >= min_lsn {
        return;
    }
    let frontier = frontier_now();
    publish();
    covered.fetch_max(frontier, Ordering::AcqRel);
}

/// Widens one served verdict by the staleness slack: position answers
/// grow their deviation bound and uncertainty interval, range answers
/// demote every certain member to possible (a `2·v_max·Δ` halo around
/// the query region could move any of them across the boundary), and
/// nearest answers grow each neighbour's bound and drop certainty.
/// `slack == 0` (a leader, or a caught-up follower) leaves the verdict
/// bit-identical.
fn widen_result(result: &mut QueryResult, slack: f64) {
    if slack <= 0.0 {
        return;
    }
    match result {
        QueryResult::Position(p) => {
            p.bound += slack;
            p.interval.0 -= slack;
            p.interval.1 += slack;
        }
        QueryResult::Range(a) => {
            let must = std::mem::take(&mut a.must);
            a.may.extend(must);
        }
        QueryResult::Nearest(a) => {
            for n in a.ranked.iter_mut().chain(a.contenders.iter_mut()) {
                n.bound += slack;
                n.certain = false;
            }
        }
    }
}

/// Refuses non-finite numeric fields at the protocol boundary. The local
/// ingest path logs an envelope before the DBMS judges it; accepting a
/// NaN here would poison the shard's WAL with a record replay can only
/// reject — so it never reaches the ingest queue at all.
fn validate_update(msg: &UpdateMessage) -> Result<(), String> {
    if !msg.time.is_finite() {
        return Err(format!("non-finite time {}", msg.time));
    }
    if !msg.speed.is_finite() {
        return Err(format!("non-finite speed {}", msg.speed));
    }
    match &msg.position {
        UpdatePosition::Arc(a) if !a.is_finite() => Err(format!("non-finite arc {a}")),
        UpdatePosition::Coordinates(p) if !p.is_finite() => {
            Err(format!("non-finite coordinates ({}, {})", p.x, p.y))
        }
        _ => Ok(()),
    }
}

/// Routes one frame's envelopes through the ingest shards and gathers
/// the ack: every valid envelope is dispatched before any outcome is
/// awaited (preserving per-object FIFO and letting the shard workers run
/// in parallel), and the reported LSN is the highest flushed frontier —
/// a token covering every accepted envelope of the frame.
fn apply_updates(
    ctx: &ServeContext,
    updates: Vec<(ObjectId, UpdateMessage)>,
) -> (u64, Vec<RemoteUpdateVerdict>) {
    let Some(frontend) = &ctx.ingest else {
        let verdicts = updates
            .iter()
            .map(|_| RemoteUpdateVerdict::Invalid("no ingest service attached".into()))
            .collect();
        return (0, verdicts);
    };
    let mut verdicts: Vec<Option<RemoteUpdateVerdict>> = vec![None; updates.len()];
    let mut pending = Vec::with_capacity(updates.len());
    for (i, (id, msg)) in updates.into_iter().enumerate() {
        if let Err(reason) = validate_update(&msg) {
            verdicts[i] = Some(RemoteUpdateVerdict::Invalid(reason));
            continue;
        }
        match frontend.handle.send_acked(UpdateEnvelope { id, msg }) {
            Ok(rx) => pending.push((i, rx)),
            Err(_) => {
                verdicts[i] = Some(RemoteUpdateVerdict::Invalid(
                    "ingest service shut down".into(),
                ));
            }
        }
    }
    let mut lsn = 0;
    for (i, rx) in pending {
        verdicts[i] = Some(match rx.recv() {
            Ok(outcome) => {
                lsn = lsn.max(outcome.lsn);
                match outcome.verdict {
                    Ok(()) => RemoteUpdateVerdict::Accepted,
                    Err(e) => RemoteUpdateVerdict::Rejected(e.to_string()),
                }
            }
            Err(_) => RemoteUpdateVerdict::Invalid("ingest service shut down".into()),
        });
    }
    let verdicts = verdicts
        .into_iter()
        .map(|v| v.expect("every envelope got a verdict"))
        .collect();
    (lsn, verdicts)
}

/// Handle to a running query front-end listener. Dropping (or
/// [`QueryServer::shutdown`]) stops the accept loop and joins every
/// session after its in-flight batch drains.
#[derive(Debug)]
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl QueryServer {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently holding a connection slot. Drops back to 0
    /// once every client has disconnected — the fault tests use this to
    /// prove no slot leaks.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins all sessions (draining their in-flight
    /// batches).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl DurableDatabase {
    /// Starts serving queries and stats scrapes on `addr` (use port 0
    /// for an ephemeral port, then [`QueryServer::local_addr`]). Batches
    /// run on `engine` exactly as a local
    /// [`QueryEngine::run_batch`] call would; pass an
    /// [`IngestFrontend`] to accept remote `Update` frames through the
    /// ingest shards and to include ingest counters and queue depth in
    /// the scrape (without one, updates are refused with a typed verdict
    /// and the ingest counters read as zero).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn serve_queries(
        &self,
        engine: Arc<QueryEngine>,
        ingest: Option<IngestFrontend>,
        addr: impl ToSocketAddrs,
        config: QueryServerConfig,
    ) -> Result<QueryServer, WalError> {
        serve_with_backend(
            engine,
            Backend::Leader {
                wal: self.wal().clone(),
            },
            Arc::clone(self.ship_horizon()),
            ingest,
            addr,
            config,
        )
    }
}

/// Follower-side query front-end constructor — the seam
/// [`crate::StandbyReplica::serve_queries`] goes through. Followers take
/// no remote ingest (they are read-only; `Update` frames get the typed
/// `Invalid` verdict the no-ingest path already produces), and their
/// scrape carries the applied watermark and lag instead of WAL I/O.
pub(crate) fn serve_follower_queries(
    engine: Arc<QueryEngine>,
    watch: ReplicaWatch,
    horizon: Arc<ShipHorizon>,
    addr: impl ToSocketAddrs,
    config: QueryServerConfig,
) -> Result<QueryServer, WalError> {
    serve_with_backend(
        engine,
        Backend::Follower { watch },
        horizon,
        None,
        addr,
        config,
    )
}

fn serve_with_backend(
    engine: Arc<QueryEngine>,
    backend: Backend,
    horizon: Arc<ShipHorizon>,
    ingest: Option<IngestFrontend>,
    addr: impl ToSocketAddrs,
    config: QueryServerConfig,
) -> Result<QueryServer, WalError> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let ctx = Arc::new(ServeContext {
        engine,
        backend,
        horizon,
        ingest,
        config,
        published_frontier: AtomicU64::new(0),
    });
    let accept = {
        let stop = Arc::clone(&stop);
        let active = Arc::clone(&active);
        std::thread::spawn(move || accept_loop(listener, ctx, active, stop))
    };
    Ok(QueryServer {
        addr: local,
        stop,
        accept: Some(accept),
        active,
    })
}

fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServeContext>,
    active: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if active.load(Ordering::SeqCst) >= ctx.config.max_connections {
                    // Refuse inline: a capacity rejection is one small
                    // write and must not consume a thread or a slot.
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                    let _ = send_message(
                        &mut stream,
                        &Message::Refused {
                            reason: "server at connection capacity".into(),
                        },
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let ctx = Arc::clone(&ctx);
                let active = Arc::clone(&active);
                let stop = Arc::clone(&stop);
                sessions.push(std::thread::spawn(move || {
                    handle_client(stream, &ctx, &stop);
                    active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        sessions.retain(|h| !h.is_finished());
    }
    for h in sessions {
        let _ = h.join();
    }
}

/// One client session: handshake, then serve batches and scrapes until
/// the peer closes, violates the protocol, stalls past the deadline, or
/// the server shuts down.
fn handle_client(mut stream: TcpStream, ctx: &ServeContext, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let _ = stream.set_write_timeout(ctx.config.write_timeout);
    let _ = run_session(&mut stream, ctx, stop);
    let _ = stream.shutdown(Shutdown::Both);
}

fn run_session(
    stream: &mut TcpStream,
    ctx: &ServeContext,
    stop: &AtomicBool,
) -> Result<(), WalError> {
    let reader_stream = stream.try_clone()?;
    let mut reader = FrameReader::new(reader_stream, ctx.config.max_frame_bytes);

    // ---- Handshake: wait (bounded) for the client's Hello.
    let deadline = Instant::now() + ctx.config.request_deadline;
    loop {
        if stop.load(Ordering::SeqCst) || Instant::now() > deadline {
            return Ok(());
        }
        match reader.poll()? {
            ReadEvent::Message(Message::Hello { version }) => {
                if version != NET_PROTOCOL_VERSION {
                    let _ = send_message(
                        stream,
                        &Message::Refused {
                            reason: format!(
                                "protocol version mismatch: client {version}, \
                                 server {NET_PROTOCOL_VERSION}"
                            ),
                        },
                    );
                    return Ok(());
                }
                send_message(
                    stream,
                    &Message::HelloAck {
                        version: NET_PROTOCOL_VERSION,
                    },
                )?;
                break;
            }
            ReadEvent::Message(_) => {
                return Err(WalError::Decode("expected Hello"));
            }
            ReadEvent::Idle => continue,
            ReadEvent::Closed => return Ok(()),
        }
    }

    // ---- Serve loop. Shutdown is observed on Idle, not up front: a
    // request already delivered when the stop flag flips is still
    // answered in full (the drain guarantee), and only then does the
    // session exit.
    let mut partial_since: Option<Instant> = None;
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        match reader.poll()? {
            ReadEvent::Message(Message::Batch { script, min_lsn }) => {
                partial_since = None;
                // Follower-served reads: a token the watermark cannot
                // satisfy within the deadline gets a typed Stale, never
                // a hang — and the session stays open for a retry.
                if let Some((applied, required)) = ctx.await_floor(min_lsn) {
                    send_message(stream, &Message::Stale { applied, required })?;
                    continue;
                }
                // Read-your-writes: republish first if no published
                // snapshot covers the client's token.
                ctx.ensure_covers(min_lsn);
                // Synchronous execution: shutdown observed after this
                // point still lets the full response stream out (the
                // drain guarantee).
                let mut verdicts = ctx.engine.run_batch(&script);
                // Price the staleness of a lagging follower's snapshot
                // into every answer (no-op on a leader or when caught
                // up — served verdicts are then bit-identical to local).
                let slack = ctx.staleness_slack();
                for result in verdicts.iter_mut().flatten() {
                    widen_result(result, slack);
                }
                let count = verdicts.len() as u32;
                for (index, verdict) in verdicts.into_iter().enumerate() {
                    send_message(
                        stream,
                        &Message::Statement {
                            index: index as u32,
                            verdict: verdict.map_err(|e| e.to_string()),
                        },
                    )?;
                }
                send_message(stream, &Message::BatchDone { count })?;
            }
            ReadEvent::Message(Message::StatsRequest) => {
                partial_since = None;
                send_message(stream, &Message::StatsReply(Box::new(ctx.scrape())))?;
            }
            ReadEvent::Message(Message::Update { id, msg }) => {
                partial_since = None;
                let (lsn, verdicts) = apply_updates(ctx, vec![(id, msg)]);
                send_message(stream, &Message::UpdateAck { lsn, verdicts })?;
            }
            ReadEvent::Message(Message::UpdateBatch { updates }) => {
                partial_since = None;
                let (lsn, verdicts) = apply_updates(ctx, updates);
                send_message(stream, &Message::UpdateAck { lsn, verdicts })?;
            }
            ReadEvent::Message(_) => {
                // A server-only message from a client is a protocol
                // violation.
                return Err(WalError::Decode("unexpected client message"));
            }
            ReadEvent::Idle => {
                if stopping {
                    return Ok(());
                }
                if reader.has_partial() {
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > ctx.config.request_deadline {
                        return Err(WalError::Decode("client stalled mid-request"));
                    }
                } else {
                    partial_since = None;
                }
            }
            ReadEvent::Closed => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modb_core::{NearestAnswer, Neighbour, ObjectId, PositionAnswer, RangeAnswer};
    use modb_geom::Point;
    use modb_index::SearchStats;

    /// Regression (the applied-watermark / shadow-swap race): the
    /// covered watermark must advance only to a frontier sampled
    /// *before* the epoch publish. The injected publish simulates a
    /// replication worker applying records while the shadow swap is in
    /// flight — the buggy order (publish, then sample) would claim
    /// coverage for LSN 50 with a snapshot that stopped at 10, and a
    /// session-token read at 11..50 would be served pre-write state.
    #[test]
    fn covered_watermark_samples_frontier_before_the_shadow_swap() {
        let applied = AtomicU64::new(10);
        let covered = AtomicU64::new(0);
        advance_covered(
            &covered,
            5,
            || applied.load(Ordering::SeqCst),
            || {
                // Records land between the swap and any later sample.
                applied.store(50, Ordering::SeqCst);
            },
        );
        assert_eq!(
            covered.load(Ordering::SeqCst),
            10,
            "watermark claimed records the published snapshot cannot contain"
        );
        // An already-covered floor publishes nothing (and samples
        // nothing — the closures must not run).
        advance_covered(
            &covered,
            10,
            || panic!("needless sample"),
            || panic!("needless publish"),
        );
        // min_lsn 0 is "no floor".
        advance_covered(
            &covered,
            0,
            || panic!("needless sample"),
            || panic!("needless publish"),
        );
        assert_eq!(covered.load(Ordering::SeqCst), 10);
    }

    fn sample_verdicts() -> Vec<QueryResult> {
        vec![
            QueryResult::Position(PositionAnswer {
                position: Point::new(3.0, 4.0),
                arc: 12.0,
                bound: 0.5,
                interval: (11.0, 13.0),
                interval_path: vec![Point::new(11.0, 0.0)],
            }),
            QueryResult::Range(RangeAnswer {
                must: vec![ObjectId(1), ObjectId(2)],
                may: vec![ObjectId(3)],
                candidates: 3,
                stats: SearchStats::default(),
            }),
            QueryResult::Nearest(NearestAnswer {
                ranked: vec![Neighbour {
                    id: ObjectId(1),
                    distance: 2.0,
                    bound: 0.25,
                    certain: true,
                }],
                contenders: vec![],
            }),
        ]
    }

    /// Zero slack must leave verdicts bit-identical (the equal-LSN parity
    /// guarantee); positive slack must only ever enlarge uncertainty.
    #[test]
    fn widening_is_identity_at_zero_and_containment_above() {
        for mut v in sample_verdicts() {
            let before = v.clone();
            widen_result(&mut v, 0.0);
            assert_eq!(v, before);
        }
        let slack = 1.5;
        for (mut v, before) in sample_verdicts().into_iter().zip(sample_verdicts()) {
            widen_result(&mut v, slack);
            match (&v, &before) {
                (QueryResult::Position(w), QueryResult::Position(b)) => {
                    assert_eq!(w.position, b.position);
                    assert_eq!(w.arc, b.arc);
                    assert!(w.bound >= b.bound + slack);
                    assert!(w.interval.0 <= b.interval.0 - slack);
                    assert!(w.interval.1 >= b.interval.1 + slack);
                }
                (QueryResult::Range(w), QueryResult::Range(b)) => {
                    // Every certain member is demoted, none is dropped.
                    assert!(w.must.is_empty());
                    for id in b.must.iter().chain(&b.may) {
                        assert!(w.may.contains(id), "{id:?} lost in widening");
                    }
                }
                (QueryResult::Nearest(w), QueryResult::Nearest(b)) => {
                    assert_eq!(w.ranked[0].id, b.ranked[0].id);
                    assert!(w.ranked[0].bound >= b.ranked[0].bound + slack);
                    assert!(!w.ranked[0].certain);
                }
                _ => panic!("verdict kind changed under widening"),
            }
        }
    }
}
