//! Server side of the query front-end: accept clients, run their
//! `;`-batches on the [`QueryEngine`], and answer stats scrapes.
//!
//! One thread accepts connections (same shape as the replication
//! leader); each client gets a session thread that handshakes, then
//! loops over `Batch` / `StatsRequest` messages. Robustness is fail-fast
//! per connection and fail-safe for the server:
//!
//! - **Connection cap**: past [`QueryServerConfig::max_connections`]
//!   live sessions, a new client is sent `Refused` and closed — the
//!   accept loop never blocks on a slow client.
//! - **Frame cap**: a frame above
//!   [`QueryServerConfig::max_frame_bytes`] is stream corruption; the
//!   session ends without reading the body.
//! - **Request deadline**: a client that starts a frame and stalls
//!   (bytes buffered, no complete message) past
//!   [`QueryServerConfig::request_deadline`] is disconnected; its slot
//!   is released. Idle connections with *no* partial frame are fine —
//!   consoles sit at prompts for minutes.
//! - **Drained shutdown**: [`QueryServer::shutdown`] stops accepting and
//!   joins every session; a batch already delivered or executing finishes
//!   and its results are written out before the session exits, so a
//!   client never sees a half-answered batch from a clean shutdown.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modb_wal::{SharedWal, WalError};

use crate::durable::DurableDatabase;
use crate::ingest::IngestMonitor;
use crate::net::protocol::{
    send_message, FrameReader, Message, ReadEvent, ServerStatsSnapshot, DEFAULT_MAX_FRAME_BYTES,
    NET_PROTOCOL_VERSION,
};
use crate::query_engine::QueryEngine;
use crate::replication::ShipHorizon;

/// Tuning for [`DurableDatabase::serve_queries`].
#[derive(Debug, Clone)]
pub struct QueryServerConfig {
    /// Live sessions beyond this are refused at accept.
    pub max_connections: usize,
    /// Per-message payload ceiling; a larger frame ends the session.
    pub max_frame_bytes: u32,
    /// How long a partially received request may sit before the client
    /// is declared stalled and disconnected.
    pub request_deadline: Duration,
    /// Socket write timeout; a client not draining its results is
    /// disconnected.
    pub write_timeout: Option<Duration>,
}

impl Default for QueryServerConfig {
    fn default() -> Self {
        QueryServerConfig {
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            request_deadline: Duration::from_secs(10),
            write_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// Everything a session needs, shared across connection threads.
struct ServeContext {
    engine: Arc<QueryEngine>,
    wal: SharedWal,
    horizon: Arc<ShipHorizon>,
    ingest: Option<IngestMonitor>,
    config: QueryServerConfig,
}

impl ServeContext {
    /// One consistent scrape: every gauge and counter read back to back.
    fn scrape(&self) -> ServerStatsSnapshot {
        let (wal_bytes_appended, wal_fsyncs) = self.wal.io_counters();
        ServerStatsSnapshot {
            query: self.engine.stats(),
            ingest: self
                .ingest
                .as_ref()
                .map(|m| m.snapshot())
                .unwrap_or_default(),
            wal_bytes_appended,
            wal_fsyncs,
            wal_next_lsn: self.wal.next_lsn(),
            ingest_queue_depth: self
                .ingest
                .as_ref()
                .map(|m| m.queue_depth() as u64)
                .unwrap_or(0),
            followers: self.horizon.followers() as u64,
            min_acked_lsn: self.horizon.min(),
        }
    }
}

/// Handle to a running query front-end listener. Dropping (or
/// [`QueryServer::shutdown`]) stops the accept loop and joins every
/// session after its in-flight batch drains.
#[derive(Debug)]
pub struct QueryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    active: Arc<AtomicUsize>,
}

impl QueryServer {
    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Sessions currently holding a connection slot. Drops back to 0
    /// once every client has disconnected — the fault tests use this to
    /// prove no slot leaks.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins all sessions (draining their in-flight
    /// batches).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for QueryServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl DurableDatabase {
    /// Starts serving queries and stats scrapes on `addr` (use port 0
    /// for an ephemeral port, then [`QueryServer::local_addr`]). Batches
    /// run on `engine` exactly as a local
    /// [`QueryEngine::run_batch`] call would; pass an
    /// [`IngestMonitor`] to include ingest counters and queue depth in
    /// the scrape (they read as zero without one).
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn serve_queries(
        &self,
        engine: Arc<QueryEngine>,
        ingest: Option<IngestMonitor>,
        addr: impl ToSocketAddrs,
        config: QueryServerConfig,
    ) -> Result<QueryServer, WalError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let ctx = Arc::new(ServeContext {
            engine,
            wal: self.wal().clone(),
            horizon: Arc::clone(self.ship_horizon()),
            ingest,
            config,
        });
        let accept = {
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            std::thread::spawn(move || accept_loop(listener, ctx, active, stop))
        };
        Ok(QueryServer {
            addr: local,
            stop,
            accept: Some(accept),
            active,
        })
    }
}

fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServeContext>,
    active: Arc<AtomicUsize>,
    stop: Arc<AtomicBool>,
) {
    let mut sessions: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                if active.load(Ordering::SeqCst) >= ctx.config.max_connections {
                    // Refuse inline: a capacity rejection is one small
                    // write and must not consume a thread or a slot.
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
                    let _ = send_message(
                        &mut stream,
                        &Message::Refused {
                            reason: "server at connection capacity".into(),
                        },
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                active.fetch_add(1, Ordering::SeqCst);
                let ctx = Arc::clone(&ctx);
                let active = Arc::clone(&active);
                let stop = Arc::clone(&stop);
                sessions.push(std::thread::spawn(move || {
                    handle_client(stream, &ctx, &stop);
                    active.fetch_sub(1, Ordering::SeqCst);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
        sessions.retain(|h| !h.is_finished());
    }
    for h in sessions {
        let _ = h.join();
    }
}

/// One client session: handshake, then serve batches and scrapes until
/// the peer closes, violates the protocol, stalls past the deadline, or
/// the server shuts down.
fn handle_client(mut stream: TcpStream, ctx: &ServeContext, stop: &AtomicBool) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(10)));
    let _ = stream.set_write_timeout(ctx.config.write_timeout);
    let _ = run_session(&mut stream, ctx, stop);
    let _ = stream.shutdown(Shutdown::Both);
}

fn run_session(
    stream: &mut TcpStream,
    ctx: &ServeContext,
    stop: &AtomicBool,
) -> Result<(), WalError> {
    let reader_stream = stream.try_clone()?;
    let mut reader = FrameReader::new(reader_stream, ctx.config.max_frame_bytes);

    // ---- Handshake: wait (bounded) for the client's Hello.
    let deadline = Instant::now() + ctx.config.request_deadline;
    loop {
        if stop.load(Ordering::SeqCst) || Instant::now() > deadline {
            return Ok(());
        }
        match reader.poll()? {
            ReadEvent::Message(Message::Hello { version }) => {
                if version != NET_PROTOCOL_VERSION {
                    let _ = send_message(
                        stream,
                        &Message::Refused {
                            reason: format!(
                                "protocol version mismatch: client {version}, \
                                 server {NET_PROTOCOL_VERSION}"
                            ),
                        },
                    );
                    return Ok(());
                }
                send_message(
                    stream,
                    &Message::HelloAck {
                        version: NET_PROTOCOL_VERSION,
                    },
                )?;
                break;
            }
            ReadEvent::Message(_) => {
                return Err(WalError::Decode("expected Hello"));
            }
            ReadEvent::Idle => continue,
            ReadEvent::Closed => return Ok(()),
        }
    }

    // ---- Serve loop. Shutdown is observed on Idle, not up front: a
    // request already delivered when the stop flag flips is still
    // answered in full (the drain guarantee), and only then does the
    // session exit.
    let mut partial_since: Option<Instant> = None;
    loop {
        let stopping = stop.load(Ordering::SeqCst);
        match reader.poll()? {
            ReadEvent::Message(Message::Batch { script }) => {
                partial_since = None;
                // Synchronous execution: shutdown observed after this
                // point still lets the full response stream out (the
                // drain guarantee).
                let verdicts = ctx.engine.run_batch(&script);
                let count = verdicts.len() as u32;
                for (index, verdict) in verdicts.into_iter().enumerate() {
                    send_message(
                        stream,
                        &Message::Statement {
                            index: index as u32,
                            verdict: verdict.map_err(|e| e.to_string()),
                        },
                    )?;
                }
                send_message(stream, &Message::BatchDone { count })?;
            }
            ReadEvent::Message(Message::StatsRequest) => {
                partial_since = None;
                send_message(stream, &Message::StatsReply(ctx.scrape()))?;
            }
            ReadEvent::Message(_) => {
                // A server-only message from a client is a protocol
                // violation.
                return Err(WalError::Decode("unexpected client message"));
            }
            ReadEvent::Idle => {
                if stopping {
                    return Ok(());
                }
                if reader.has_partial() {
                    let since = *partial_since.get_or_insert_with(Instant::now);
                    if since.elapsed() > ctx.config.request_deadline {
                        return Err(WalError::Decode("client stalled mid-request"));
                    }
                } else {
                    partial_since = None;
                }
            }
            ReadEvent::Closed => return Ok(()),
        }
    }
}
