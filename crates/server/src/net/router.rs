//! Lag-aware read routing across a fleet of follower-served query
//! front-ends.
//!
//! A [`ReadRouter`] holds one [`QueryClient`] per follower endpoint,
//! periodically polls each one's stats frame for its applied watermark
//! (`modb_replica_applied_lsn`, or the WAL frontier when the endpoint is
//! a leader) and lag clock, and sends each batch to the freshest
//! follower that can satisfy the batch's read-your-writes token:
//!
//! - candidates whose last-known watermark covers the token are tried
//!   first, least-lagged first — they answer without waiting;
//! - a typed `Stale` refusal updates the endpoint's watermark and fails
//!   over to the next candidate (the session survives);
//! - a transport error drops the connection (it is re-dialed on the next
//!   refresh) and fails over likewise.
//!
//! Only when *every* endpoint refuses or fails does the batch error out.
//! This is the client half of the read-fan-out story (DESIGN.md §15):
//! one write leader, N chained followers, readers spread by staleness.

use std::time::{Duration, Instant};

use modb_wal::WalError;

use crate::net::client::{BatchOutcome, QueryClient, QueryClientConfig};
use crate::net::protocol::RemoteVerdict;

/// Tuning for [`ReadRouter`].
#[derive(Debug, Clone)]
pub struct ReadRouterConfig {
    /// How stale the router's view of follower watermarks may grow
    /// before the next batch triggers a re-poll (and re-dials dead
    /// endpoints).
    pub refresh_interval: Duration,
    /// Per-connection tuning for the underlying [`QueryClient`]s.
    pub client: QueryClientConfig,
}

impl Default for ReadRouterConfig {
    fn default() -> Self {
        ReadRouterConfig {
            refresh_interval: Duration::from_millis(250),
            client: QueryClientConfig::default(),
        }
    }
}

/// The router's last-known view of one follower endpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowerStatus {
    /// The endpoint address as given to [`ReadRouter::connect`].
    pub addr: String,
    /// Whether a live connection is currently held.
    pub connected: bool,
    /// Applied watermark from the last stats poll (0 before the first).
    pub applied_lsn: u64,
    /// Lag clock from the last stats poll (zero for a leader endpoint).
    pub lag: Duration,
}

struct Endpoint {
    addr: String,
    client: Option<QueryClient>,
    applied_lsn: u64,
    lag: Duration,
}

/// Routes read batches to the least-lagged follower satisfying each
/// batch's session token, failing over on staleness and connection loss.
/// See the module docs for the policy.
pub struct ReadRouter {
    endpoints: Vec<Endpoint>,
    config: ReadRouterConfig,
    last_refresh: Option<Instant>,
}

impl ReadRouter {
    /// Connects to a fleet of follower (or leader) query front-ends and
    /// takes an initial watermark poll. Endpoints that cannot be reached
    /// yet are kept and re-dialed on later refreshes — the router comes
    /// up as long as *one* endpoint answers.
    ///
    /// # Errors
    ///
    /// An empty endpoint list, or every endpoint unreachable.
    pub fn connect<S: Into<String>>(
        addrs: impl IntoIterator<Item = S>,
        config: ReadRouterConfig,
    ) -> Result<Self, WalError> {
        let endpoints: Vec<Endpoint> = addrs
            .into_iter()
            .map(|a| Endpoint {
                addr: a.into(),
                client: None,
                applied_lsn: 0,
                lag: Duration::ZERO,
            })
            .collect();
        if endpoints.is_empty() {
            return Err(WalError::Decode("read router needs at least one endpoint"));
        }
        let mut router = ReadRouter {
            endpoints,
            config,
            last_refresh: None,
        };
        router.refresh();
        if router.endpoints.iter().all(|e| e.client.is_none()) {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "no read endpoint reachable",
            )));
        }
        Ok(router)
    }

    /// Re-dials dead endpoints and re-polls every live one's watermark
    /// and lag. Called automatically when the last poll is older than
    /// [`ReadRouterConfig::refresh_interval`]; call it directly to force
    /// a fresh view.
    pub fn refresh(&mut self) {
        for ep in &mut self.endpoints {
            if ep.client.is_none() {
                ep.client = QueryClient::connect_with(&ep.addr, self.config.client.clone()).ok();
            }
            let Some(client) = ep.client.as_mut() else {
                continue;
            };
            match client.stats() {
                Ok(stats) => {
                    // A leader endpoint has no replica watermark; its WAL
                    // frontier plays the same role (it is never stale).
                    ep.applied_lsn = stats.replica_applied_lsn.unwrap_or(stats.wal_next_lsn);
                    ep.lag = stats.replica_lag.unwrap_or(Duration::ZERO);
                }
                Err(_) => ep.client = None,
            }
        }
        self.last_refresh = Some(Instant::now());
    }

    fn maybe_refresh(&mut self) {
        let due = self
            .last_refresh
            .is_none_or(|t| t.elapsed() >= self.config.refresh_interval);
        if due {
            self.refresh();
        }
    }

    /// The router's current view of its fleet, in endpoint order.
    pub fn statuses(&self) -> Vec<FollowerStatus> {
        self.endpoints
            .iter()
            .map(|ep| FollowerStatus {
                addr: ep.addr.clone(),
                connected: ep.client.is_some(),
                applied_lsn: ep.applied_lsn,
                lag: ep.lag,
            })
            .collect()
    }

    /// Runs a `;`-script with no read-your-writes floor on the freshest
    /// follower.
    ///
    /// # Errors
    ///
    /// As [`ReadRouter::batch_with_token`].
    pub fn batch(&mut self, script: &str) -> Result<Vec<RemoteVerdict>, WalError> {
        self.batch_with_token(script, 0)
    }

    /// Runs a `;`-script with read-your-writes floor `token`, routing to
    /// the least-lagged follower whose last-known watermark satisfies it
    /// and failing over — through `Stale` refusals and connection
    /// losses — until some follower answers.
    ///
    /// # Errors
    ///
    /// Every endpoint stale past its deadline or unreachable.
    pub fn batch_with_token(
        &mut self,
        script: &str,
        token: u64,
    ) -> Result<Vec<RemoteVerdict>, WalError> {
        self.maybe_refresh();
        // Candidate order: watermark-satisfying endpoints first (least
        // lag first — they answer without waiting), then the rest by
        // freshest watermark (they may catch up within the server-side
        // wait); dead endpoints are skipped.
        let mut order: Vec<usize> = (0..self.endpoints.len())
            .filter(|&i| self.endpoints[i].client.is_some())
            .collect();
        order.sort_by(|&a, &b| {
            let (ea, eb) = (&self.endpoints[a], &self.endpoints[b]);
            let (sa, sb) = (ea.applied_lsn >= token, eb.applied_lsn >= token);
            sb.cmp(&sa)
                .then_with(|| ea.lag.cmp(&eb.lag))
                .then_with(|| eb.applied_lsn.cmp(&ea.applied_lsn))
        });
        let mut last_err: Option<WalError> = None;
        let mut best_stale: Option<(u64, u64)> = None;
        for i in order {
            let ep = &mut self.endpoints[i];
            let client = ep.client.as_mut().expect("dead endpoints filtered");
            match client.batch_attempt(script, token) {
                Ok(BatchOutcome::Done(verdicts)) => return Ok(verdicts),
                Ok(BatchOutcome::Stale { applied, required }) => {
                    // The refusal carries a fresher watermark than our
                    // last poll — keep it for the next routing decision.
                    ep.applied_lsn = ep.applied_lsn.max(applied);
                    best_stale = Some(match best_stale {
                        Some((a, r)) => (a.max(applied), r.max(required)),
                        None => (applied, required),
                    });
                }
                Err(e) => {
                    ep.client = None;
                    last_err = Some(e);
                }
            }
        }
        if let Some((applied, required)) = best_stale {
            return Err(WalError::Io(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                format!("every follower stale: freshest applied {applied} < required {required}"),
            )));
        }
        Err(last_err.unwrap_or_else(|| {
            WalError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "no read endpoint reachable",
            ))
        }))
    }

    /// Closes every connection.
    pub fn close(mut self) {
        for ep in &mut self.endpoints {
            if let Some(client) = ep.client.take() {
                client.close();
            }
        }
    }
}
